#include "flocks/cq_eval.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/check.h"
#include "common/flat_hash.h"
#include "common/thread_pool.h"
#include "datalog/acyclic.h"
#include "relational/ops.h"
#include "relational/spill.h"

namespace qf {

std::string TermColumn(const Term& term) {
  QF_CHECK_MSG(!term.is_constant(), "constants have no binding column");
  return term.is_parameter() ? "$" + term.name() : term.name();
}

Result<const Relation*> PredicateResolver::Resolve(
    const std::string& name) const {
  if (extra_ != nullptr) {
    auto it = extra_->find(name);
    if (it != extra_->end()) return it->second;
  }
  if (db_->Has(name)) return &db_->Get(name);
  return NotFoundError("unknown predicate: " + name);
}

Relation SubgoalBindings(const Subgoal& subgoal, const Relation& base,
                         unsigned threads, OpMetrics* metrics,
                         QueryContext* ctx) {
  const std::vector<Term>& args = subgoal.args();
  QF_CHECK_MSG(args.size() == base.arity(),
               ("arity mismatch for predicate " + subgoal.predicate()).c_str());

  // First occurrence position of each distinct column, plus the checks a
  // row must pass: constant positions and repeated-term equalities.
  std::vector<std::string> columns;
  std::vector<std::size_t> keep;            // positions projected
  std::vector<std::pair<std::size_t, Value>> constant_checks;
  std::vector<std::pair<std::size_t, std::size_t>> equal_checks;
  std::map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Term& t = args[i];
    if (t.is_constant()) {
      constant_checks.emplace_back(i, t.constant());
      continue;
    }
    std::string col = TermColumn(t);
    auto [it, inserted] = first_seen.emplace(col, i);
    if (inserted) {
      columns.push_back(std::move(col));
      keep.push_back(i);
    } else {
      equal_checks.emplace_back(it->second, i);
    }
  }

  auto matches = [&constant_checks, &equal_checks](const Tuple& row) {
    for (const auto& [pos, value] : constant_checks) {
      if (!(row[pos] == value)) return false;
    }
    for (const auto& [a, b] : equal_checks) {
      if (!(row[a] == row[b])) return false;
    }
    return true;
  };

  Relation out{Schema(columns)};
  std::uint64_t mem = 0;
  constexpr std::size_t kMorselRows = 4096;
  if (threads <= 1 || base.size() < 2 * kMorselRows) {
    OpGovernor gov(ctx, ApproxTupleBytes(columns.size()));
    for (const Tuple& row : base.rows()) {
      if (!gov.TickInput()) break;
      if (matches(row)) {
        if (!gov.Admit()) break;
        out.Add(ProjectTuple(row, keep));
      }
    }
    gov.Flush();
    mem = gov.total_bytes();
  } else {
    if (metrics != nullptr) {
      metrics->morsels += MorselCount(base.size(), kMorselRows);
    }
    // Morsel-parallel scan; concatenating the per-morsel buffers in
    // morsel order reproduces the serial row order exactly. Workers test
    // the governor latch at morsel start and bail per stride within.
    std::vector<std::vector<Tuple>> buffers(
        MorselCount(base.size(), kMorselRows));
    std::vector<std::uint64_t> morsel_bytes(buffers.size(), 0);
    ParallelFor(threads, base.size(), kMorselRows,
                [&](std::size_t begin, std::size_t end) {
                  if (ctx != nullptr && !ctx->Poll()) return;
                  std::vector<Tuple>& buf = buffers[begin / kMorselRows];
                  OpGovernor gov(ctx, ApproxTupleBytes(columns.size()));
                  for (std::size_t r = begin; r < end; ++r) {
                    if (!gov.TickInput()) break;
                    const Tuple& row = base.rows()[r];
                    if (matches(row)) {
                      if (!gov.Admit()) break;
                      buf.push_back(ProjectTuple(row, keep));
                    }
                  }
                  gov.Flush();
                  morsel_bytes[begin / kMorselRows] = gov.total_bytes();
                });
    std::size_t total = 0;
    for (const auto& buf : buffers) total += buf.size();
    out.mutable_rows().reserve(total);
    for (auto& buf : buffers) {
      for (Tuple& t : buf) out.mutable_rows().push_back(std::move(t));
    }
    for (std::uint64_t mb : morsel_bytes) mem += mb;
  }
  // Dropping constant-checked positions cannot merge distinct base rows,
  // but a subgoal with *no* variables (all constants) produces arity-0
  // tuples that must collapse to at most one.
  if (columns.empty()) out.Dedup();
  if (metrics != nullptr) {
    metrics->rows_in += base.size();
    metrics->rows_out += out.size();
    metrics->mem_bytes += mem;
  }
  return out;
}

namespace {

// A comparison applied as a row predicate once its columns are bound.
struct PendingComparison {
  const Subgoal* subgoal;
  bool applied = false;
};

struct PendingNegation {
  const Subgoal* subgoal;
  Relation bindings;  // binding relation of the negated atom
  bool applied = false;
};

// Resolves the value of a term in a row of `schema` (column or constant).
const Value& TermValue(const Term& t, const Schema& schema, const Tuple& row) {
  if (t.is_constant()) return t.constant();
  std::optional<std::size_t> idx = schema.IndexOf(TermColumn(t));
  QF_CHECK(idx.has_value());
  return row[*idx];
}

bool ColumnsBound(const std::vector<Term>& terms, const Schema& schema) {
  for (const Term& t : terms) {
    if (t.is_constant()) continue;
    if (!schema.Contains(TermColumn(t))) return false;
  }
  return true;
}

}  // namespace

Result<Relation> EvaluateConjunctiveBindings(
    const ConjunctiveQuery& cq, const PredicateResolver& resolver,
    const std::vector<std::string>& output_columns,
    const CqEvalOptions& options, std::size_t* peak_rows) {
  // Partition subgoals.
  std::vector<const Subgoal*> positives;
  std::vector<PendingComparison> comparisons;
  std::vector<PendingNegation> negations;
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) {
      positives.push_back(&s);
    } else if (s.is_comparison()) {
      comparisons.push_back({&s});
    } else {
      negations.push_back({&s, Relation()});
    }
  }
  if (positives.empty()) {
    return FailedPreconditionError(
        "cannot evaluate a query with no positive subgoals (unsafe)");
  }

  // Constant-only comparisons decide emptiness up front.
  for (PendingComparison& pc : comparisons) {
    const Subgoal& s = *pc.subgoal;
    if (s.lhs().is_constant() && s.rhs().is_constant()) {
      pc.applied = true;
      if (!EvalCompare(s.op(), s.lhs().constant(), s.rhs().constant())) {
        return Relation{Schema(output_columns)};
      }
    }
  }

  // Observability: `m` roots this query's operator tree; the trace sink
  // is only consulted when metrics are on (ScopedOp enforces this too).
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  // Governance: check the context after every operator (truncated output
  // from a tripped operator must never be mistaken for a result), and
  // return accounted bytes of dropped intermediates to the pool.
  QueryContext* ctx = options.ctx;
  auto governed = [ctx]() {
    return ctx != nullptr ? ctx->Check() : Status::Ok();
  };
  auto release = [ctx](const Relation& r) {
    if (ctx != nullptr) {
      ctx->Release(static_cast<std::uint64_t>(r.size()) *
                   ApproxTupleBytes(r.arity()));
    }
  };

  // Resolve bases and precompute binding relations.
  std::vector<Relation> positive_bindings;
  positive_bindings.reserve(positives.size());
  for (const Subgoal* s : positives) {
    Result<const Relation*> base = resolver.Resolve(s->predicate());
    if (!base.ok()) return base.status();
    if ((*base)->arity() != s->args().size()) {
      return InvalidArgumentError("arity mismatch for predicate " +
                                  s->predicate());
    }
    OpMetrics* node = m != nullptr ? m->AddChild("scan", s->predicate())
                                   : nullptr;
    ScopedOp span(node, tr);
    positive_bindings.push_back(
        SubgoalBindings(*s, **base, options.threads, node, ctx));
    if (Status s2 = governed(); !s2.ok()) return s2;
  }
  for (PendingNegation& pn : negations) {
    Result<const Relation*> base = resolver.Resolve(pn.subgoal->predicate());
    if (!base.ok()) return base.status();
    if ((*base)->arity() != pn.subgoal->args().size()) {
      return InvalidArgumentError("arity mismatch for predicate " +
                                  pn.subgoal->predicate());
    }
    OpMetrics* node =
        m != nullptr ? m->AddChild("scan", "NOT " + pn.subgoal->predicate())
                     : nullptr;
    ScopedOp span(node, tr);
    pn.bindings =
        SubgoalBindings(*pn.subgoal, **base, options.threads, node, ctx);
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  // Optional Yannakakis full-reducer pass (acyclic queries only).
  std::optional<JoinTree> tree;
  if (options.full_reducer) {
    tree = BuildJoinTree(cq);
    if (tree.has_value()) {
      auto reduce = [&](std::size_t target, std::size_t with) {
        OpMetrics* node =
            m != nullptr
                ? m->AddChild("semi_join",
                              "reduce " + positives[target]->predicate() +
                                  " by " + positives[with]->predicate())
                : nullptr;
        ScopedOp span(node, tr);
        std::uint64_t dropped = 0;
        if (ctx != nullptr) {
          dropped = static_cast<std::uint64_t>(
                        positive_bindings[target].size()) *
                    ApproxTupleBytes(positive_bindings[target].arity());
        }
        positive_bindings[target] = SemiJoin(positive_bindings[target],
                                             positive_bindings[with], node,
                                             ctx);
        if (ctx != nullptr) ctx->Release(dropped);
      };
      // Bottom-up: parents lose tuples with no match in their ears.
      for (std::size_t k = 0; k < tree->ears.size(); ++k) {
        reduce(tree->parents[k], tree->ears[k]);
        if (Status s2 = governed(); !s2.ok()) return s2;
      }
      // Top-down: ears lose tuples with no match in their (reduced)
      // parents. After both sweeps the bindings are globally consistent.
      for (std::size_t k = tree->ears.size(); k-- > 0;) {
        reduce(tree->ears[k], tree->parents[k]);
        if (Status s2 = governed(); !s2.ok()) return s2;
      }
    }
  }

  // Join order.
  std::vector<std::size_t> order = options.join_order;
  if (tree.has_value()) {
    // Tree order: root first, then ears innermost-out, so every join
    // touches its already-present parent (no cross products).
    order.clear();
    order.push_back(tree->root);
    for (std::size_t k = tree->ears.size(); k-- > 0;) {
      order.push_back(tree->ears[k]);
    }
  }
  if (order.empty()) {
    order.resize(positives.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else {
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i >= positives.size() || sorted[i] != i) {
        return InvalidArgumentError(
            "join_order must be a permutation of the positive subgoals");
      }
    }
    if (sorted.size() != positives.size()) {
      return InvalidArgumentError(
          "join_order must be a permutation of the positive subgoals");
    }
  }

  // Fold joins, applying comparisons and negations as soon as bound.
  Relation current = std::move(positive_bindings[order[0]]);
  std::size_t peak = current.size();
  auto apply_ready = [&]() {
    for (PendingComparison& pc : comparisons) {
      if (pc.applied) continue;
      const Subgoal& s = *pc.subgoal;
      if (!ColumnsBound(s.terms(), current.schema())) continue;
      pc.applied = true;
      const Schema& schema = current.schema();
      OpMetrics* node =
          m != nullptr ? m->AddChild("select", s.ToString()) : nullptr;
      ScopedOp span(node, tr);
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current = Select(
          current,
          [&s, &schema](const Tuple& row) {
            return EvalCompare(s.op(), TermValue(s.lhs(), schema, row),
                               TermValue(s.rhs(), schema, row));
          },
          node, ctx);
      if (ctx != nullptr) ctx->Release(dropped);
    }
    for (PendingNegation& pn : negations) {
      if (pn.applied) continue;
      if (!ColumnsBound(pn.subgoal->terms(), current.schema())) continue;
      pn.applied = true;
      OpMetrics* node =
          m != nullptr ? m->AddChild("anti_join", pn.subgoal->predicate())
                       : nullptr;
      ScopedOp span(node, tr);
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current = AntiJoin(current, pn.bindings, node, ctx);
      if (ctx != nullptr) {
        ctx->Release(dropped);
        release(pn.bindings);
        pn.bindings = Relation();
      }
    }
  };
  apply_ready();
  if (Status s2 = governed(); !s2.ok()) return s2;
  for (std::size_t k = 1; k < order.size(); ++k) {
    // Out-of-core streaming of the FINAL join (options.sink set): instead
    // of materializing the widest relation of the fold, each joined row is
    // built in a scratch tuple, run through every still-pending
    // comparison/negation, projected onto output_columns, and Pushed into
    // the sink (which grace-hash-spills it). Taken only when the
    // governor's spill-activation rule fires AND every pending predicate
    // and output column is bound by the prospective joined schema — so
    // the conventional path, including its unsafe-query errors, is
    // untouched whenever streaming does not strictly apply. The stream is
    // serial and probes `current` in row order, visiting joined rows in
    // exactly NaturalJoin's output order; combined with the sink's
    // order-preserving partitioning this keeps results bit-identical to
    // the materialized path at every thread count (DESIGN.md §14).
    if (k + 1 == order.size() && options.sink != nullptr) {
      const Relation& build = positive_bindings[order[k]];
      // Prospective joined schema: current's columns, then build's
      // non-shared columns in order (matches relational/ops.cc).
      std::vector<std::size_t> a_key_idx;
      std::vector<std::size_t> b_key_idx;
      std::vector<std::size_t> b_rest;
      std::vector<std::string> joined_cols = current.schema().columns();
      for (std::size_t j = 0; j < build.arity(); ++j) {
        const std::string& col = build.schema().columns()[j];
        std::optional<std::size_t> in_a = current.schema().IndexOf(col);
        if (in_a.has_value()) {
          a_key_idx.push_back(*in_a);
          b_key_idx.push_back(j);
        } else {
          b_rest.push_back(j);
          joined_cols.push_back(col);
        }
      }
      Schema joined{joined_cols};
      constexpr std::size_t kMaxRef = 0xFFFFFFFE;  // flat-hash refs are u32
      bool applicable = build.size() <= kMaxRef;
      for (const PendingComparison& pc : comparisons) {
        if (!pc.applied && !ColumnsBound(pc.subgoal->terms(), joined)) {
          applicable = false;
        }
      }
      for (const PendingNegation& pn : negations) {
        if (pn.applied) continue;
        if (!ColumnsBound(pn.subgoal->terms(), joined) ||
            pn.bindings.size() > kMaxRef) {
          applicable = false;
        }
      }
      for (const std::string& c : output_columns) {
        if (!joined.Contains(c)) applicable = false;
      }
      std::uint64_t projected_bytes =
          (static_cast<std::uint64_t>(current.size()) +
           static_cast<std::uint64_t>(build.size())) *
          ApproxTupleBytes(joined.arity());
      // With a spill environment armed, the inputs-only projection is not
      // enough: a skewed join's OUTPUT can dwarf both inputs and it is
      // the output that must fit (plus its distinct copy downstream). So
      // build the probe index once and run a counting pass — exact output
      // cardinality, no materialization — before deciding. The index is
      // reused by the streaming branch; the unbudgeted path never pays
      // for any of this.
      bool spill_armed = applicable && ctx != nullptr &&
                         ctx->spill_env() != nullptr &&
                         ctx->spill_env()->vfs != nullptr &&
                         ctx->budget_bytes() > 0;
      KeyCols a_key(a_key_idx, current.arity());
      KeyCols b_key(b_key_idx, build.arity());
      FlatKeyIndex stream_index;
      std::uint64_t stream_probes = 0;
      bool use_stream = false;
      if (spill_armed) {
        const std::vector<Tuple>& b_rows = build.rows();
        stream_index.Reserve(b_rows.size());
        for (std::size_t r = 0; r < b_rows.size(); ++r) {
          stream_index.AddRow(
              static_cast<std::uint32_t>(r), b_key.Hash(b_rows[r]),
              [&](std::uint32_t prev) {
                return b_key.Eq(b_rows[r], b_rows[prev]);
              },
              stream_probes);
        }
        stream_index.Finalize();
        std::uint64_t out_rows = 0;
        OpGovernor count_gov(ctx, 0);  // polls deadline/cancel only
        for (const Tuple& ta : current.rows()) {
          if (!count_gov.TickInput()) break;
          FlatKeyIndex::Span matches = stream_index.Probe(
              a_key.Hash(ta),
              [&](std::uint32_t br) {
                return a_key.EqAcross(ta, b_key, b_rows[br]);
              },
              stream_probes);
          out_rows += static_cast<std::uint64_t>(matches.end - matches.begin);
        }
        count_gov.Flush();
        if (Status s2 = governed(); !s2.ok()) return s2;
        use_stream = SpillWanted(
            ctx, projected_bytes + out_rows * ApproxTupleBytes(joined.arity()));
      }
      if (use_stream) {
        OpMetrics* node =
            m != nullptr
                ? m->AddChild("join",
                              positives[order[k]]->predicate() + " [stream]")
                : nullptr;
        ScopedOp op_span(node, tr);
        std::uint64_t probes = stream_probes;
        // Remaining comparisons become per-row predicates.
        std::vector<const Subgoal*> row_compares;
        for (PendingComparison& pc : comparisons) {
          if (!pc.applied) {
            row_compares.push_back(pc.subgoal);
            pc.applied = true;
          }
        }
        // Remaining negations become membership tests over the columns
        // they share with the joined schema (the anti-join key). With no
        // shared column, AntiJoin keeps a row iff the binding is empty.
        struct RowNegation {
          std::vector<std::size_t> row_idx;  // shared cols, joined schema
          std::vector<std::size_t> neg_idx;  // shared cols, binding schema
          const Relation* bindings = nullptr;
          FlatTupleSet keys;
          bool drop_all = false;
          std::optional<KeyCols> row_key;
          std::optional<KeyCols> neg_key;
        };
        std::vector<RowNegation> row_negations;
        row_negations.reserve(negations.size());
        std::vector<PendingNegation*> consumed_negations;
        for (PendingNegation& pn : negations) {
          if (pn.applied) continue;
          pn.applied = true;
          consumed_negations.push_back(&pn);
          RowNegation rn;
          rn.bindings = &pn.bindings;
          const Schema& ns = pn.bindings.schema();
          for (std::size_t j = 0; j < ns.arity(); ++j) {
            std::optional<std::size_t> in_j = joined.IndexOf(ns.columns()[j]);
            if (in_j.has_value()) {
              rn.row_idx.push_back(*in_j);
              rn.neg_idx.push_back(j);
            }
          }
          if (rn.row_idx.empty()) {
            rn.drop_all = !pn.bindings.empty();
          } else {
            rn.row_key.emplace(rn.row_idx, joined.arity());
            rn.neg_key.emplace(rn.neg_idx, pn.bindings.arity());
            rn.keys.Reserve(pn.bindings.size());
            const std::vector<Tuple>& nrows = pn.bindings.rows();
            for (std::size_t r = 0; r < nrows.size(); ++r) {
              rn.keys.Insert(
                  static_cast<std::uint32_t>(r), rn.neg_key->Hash(nrows[r]),
                  [&](std::uint32_t prev) {
                    return rn.neg_key->Eq(nrows[r], nrows[prev]);
                  },
                  probes);
            }
          }
          // Vector moves keep their heap buffers, so the KeyCols pointers
          // into row_idx/neg_idx stay valid after this move.
          row_negations.push_back(std::move(rn));
        }
        std::vector<std::size_t> out_idx;
        out_idx.reserve(output_columns.size());
        for (const std::string& c : output_columns) {
          out_idx.push_back(*joined.IndexOf(c));
        }
        // Build side indexed above (the counting pass); probe `current`
        // in row order — NaturalJoin's layout and output order exactly.
        const std::vector<Tuple>& b_rows = build.rows();
        FlatKeyIndex& index = stream_index;
        Status push_status;
        Tuple combined;
        std::uint64_t pushed = 0;
        OpGovernor gov(ctx, 0);  // input polling; the sink owns the output
        for (const Tuple& ta : current.rows()) {
          if (!gov.TickInput()) break;
          FlatKeyIndex::Span matches = index.Probe(
              a_key.Hash(ta),
              [&](std::uint32_t br) {
                return a_key.EqAcross(ta, b_key, b_rows[br]);
              },
              probes);
          for (const std::uint32_t* p = matches.begin; p != matches.end;
               ++p) {
            const Tuple& tb = b_rows[*p];
            combined.assign(ta.begin(), ta.end());
            for (std::size_t j : b_rest) combined.push_back(tb[j]);
            bool pass = true;
            for (const Subgoal* s : row_compares) {
              if (!EvalCompare(s->op(), TermValue(s->lhs(), joined, combined),
                               TermValue(s->rhs(), joined, combined))) {
                pass = false;
                break;
              }
            }
            for (const RowNegation& rn : row_negations) {
              if (!pass) break;
              if (rn.drop_all) {
                pass = false;
                break;
              }
              if (rn.row_idx.empty()) continue;  // empty binding keeps all
              const std::vector<Tuple>& nrows = rn.bindings->rows();
              if (rn.keys.Contains(
                      rn.row_key->Hash(combined),
                      [&](std::uint32_t ref) {
                        return rn.row_key->EqAcross(combined, *rn.neg_key,
                                                    nrows[ref]);
                      },
                      probes)) {
                pass = false;
              }
            }
            if (!pass) continue;
            push_status = options.sink->Push(ProjectTuple(combined, out_idx));
            if (!push_status.ok()) break;
            ++pushed;
          }
          if (!push_status.ok()) break;
        }
        gov.Flush();
        if (!push_status.ok()) return push_status;
        if (Status s2 = governed(); !s2.ok()) return s2;
        options.sink->engaged = true;
        if (node != nullptr) {
          node->rows_in += current.size();
          node->rows_in_right += build.size();
          node->rows_out += pushed;
          node->tuples_probed += probes;
        }
        peak = std::max(peak, current.size());
        if (peak_rows != nullptr) *peak_rows = peak;
        // Everything materialized is now dead: the fold intermediate, the
        // final binding, and the consumed negation bindings.
        release(current);
        release(positive_bindings[order[k]]);
        positive_bindings[order[k]] = Relation();
        for (PendingNegation* pn : consumed_negations) {
          release(pn->bindings);
          pn->bindings = Relation();
        }
        return Relation{Schema(output_columns)};
      }
    }
    {
      OpMetrics* node =
          m != nullptr ? m->AddChild("join", positives[order[k]]->predicate())
                       : nullptr;
      ScopedOp span(node, tr);
      // The parallel join preserves the serial join's row order, so the
      // fold's intermediates are identical for every thread count.
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current =
          options.threads > 1
              ? ParallelNaturalJoin(current, positive_bindings[order[k]],
                                    options.threads, node, ctx)
              : NaturalJoin(current, positive_bindings[order[k]], node, ctx);
      if (ctx != nullptr) {
        // The old intermediate and the consumed binding are dead; hand
        // their accounted bytes back (and actually free the binding).
        ctx->Release(dropped);
        release(positive_bindings[order[k]]);
        positive_bindings[order[k]] = Relation();
      }
    }
    if (Status s2 = governed(); !s2.ok()) return s2;
    peak = std::max(peak, current.size());
    apply_ready();
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  for (const PendingComparison& pc : comparisons) {
    if (!pc.applied) {
      return FailedPreconditionError(
          "arithmetic subgoal never became bound (unsafe query): " +
          pc.subgoal->ToString());
    }
  }
  for (const PendingNegation& pn : negations) {
    if (!pn.applied) {
      return FailedPreconditionError(
          "negated subgoal never became bound (unsafe query): " +
          pn.subgoal->ToString());
    }
  }

  for (const std::string& c : output_columns) {
    if (!current.schema().Contains(c)) {
      return InvalidArgumentError("output column " + c +
                                  " is not bound by the query body");
    }
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  OpMetrics* node = m != nullptr ? m->AddChild("project") : nullptr;
  ScopedOp span(node, tr);
  Relation projected = Project(current, output_columns, node, ctx);
  if (Status s2 = governed(); !s2.ok()) return s2;
  release(current);
  if (m != nullptr) {
    m->rows_in += current.size();
    m->rows_out += projected.size();
  }
  return projected;
}

}  // namespace qf
