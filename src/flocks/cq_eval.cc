#include "flocks/cq_eval.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"
#include "datalog/acyclic.h"
#include "relational/ops.h"

namespace qf {

std::string TermColumn(const Term& term) {
  QF_CHECK_MSG(!term.is_constant(), "constants have no binding column");
  return term.is_parameter() ? "$" + term.name() : term.name();
}

Result<const Relation*> PredicateResolver::Resolve(
    const std::string& name) const {
  if (extra_ != nullptr) {
    auto it = extra_->find(name);
    if (it != extra_->end()) return it->second;
  }
  if (db_->Has(name)) return &db_->Get(name);
  return NotFoundError("unknown predicate: " + name);
}

Relation SubgoalBindings(const Subgoal& subgoal, const Relation& base,
                         unsigned threads, OpMetrics* metrics,
                         QueryContext* ctx) {
  const std::vector<Term>& args = subgoal.args();
  QF_CHECK_MSG(args.size() == base.arity(),
               ("arity mismatch for predicate " + subgoal.predicate()).c_str());

  // First occurrence position of each distinct column, plus the checks a
  // row must pass: constant positions and repeated-term equalities.
  std::vector<std::string> columns;
  std::vector<std::size_t> keep;            // positions projected
  std::vector<std::pair<std::size_t, Value>> constant_checks;
  std::vector<std::pair<std::size_t, std::size_t>> equal_checks;
  std::map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Term& t = args[i];
    if (t.is_constant()) {
      constant_checks.emplace_back(i, t.constant());
      continue;
    }
    std::string col = TermColumn(t);
    auto [it, inserted] = first_seen.emplace(col, i);
    if (inserted) {
      columns.push_back(std::move(col));
      keep.push_back(i);
    } else {
      equal_checks.emplace_back(it->second, i);
    }
  }

  auto matches = [&constant_checks, &equal_checks](const Tuple& row) {
    for (const auto& [pos, value] : constant_checks) {
      if (!(row[pos] == value)) return false;
    }
    for (const auto& [a, b] : equal_checks) {
      if (!(row[a] == row[b])) return false;
    }
    return true;
  };

  Relation out{Schema(columns)};
  std::uint64_t mem = 0;
  constexpr std::size_t kMorselRows = 4096;
  if (threads <= 1 || base.size() < 2 * kMorselRows) {
    OpGovernor gov(ctx, ApproxTupleBytes(columns.size()));
    for (const Tuple& row : base.rows()) {
      if (!gov.TickInput()) break;
      if (matches(row)) {
        if (!gov.Admit()) break;
        out.Add(ProjectTuple(row, keep));
      }
    }
    gov.Flush();
    mem = gov.total_bytes();
  } else {
    if (metrics != nullptr) {
      metrics->morsels += MorselCount(base.size(), kMorselRows);
    }
    // Morsel-parallel scan; concatenating the per-morsel buffers in
    // morsel order reproduces the serial row order exactly. Workers test
    // the governor latch at morsel start and bail per stride within.
    std::vector<std::vector<Tuple>> buffers(
        MorselCount(base.size(), kMorselRows));
    std::vector<std::uint64_t> morsel_bytes(buffers.size(), 0);
    ParallelFor(threads, base.size(), kMorselRows,
                [&](std::size_t begin, std::size_t end) {
                  if (ctx != nullptr && !ctx->Poll()) return;
                  std::vector<Tuple>& buf = buffers[begin / kMorselRows];
                  OpGovernor gov(ctx, ApproxTupleBytes(columns.size()));
                  for (std::size_t r = begin; r < end; ++r) {
                    if (!gov.TickInput()) break;
                    const Tuple& row = base.rows()[r];
                    if (matches(row)) {
                      if (!gov.Admit()) break;
                      buf.push_back(ProjectTuple(row, keep));
                    }
                  }
                  gov.Flush();
                  morsel_bytes[begin / kMorselRows] = gov.total_bytes();
                });
    std::size_t total = 0;
    for (const auto& buf : buffers) total += buf.size();
    out.mutable_rows().reserve(total);
    for (auto& buf : buffers) {
      for (Tuple& t : buf) out.mutable_rows().push_back(std::move(t));
    }
    for (std::uint64_t mb : morsel_bytes) mem += mb;
  }
  // Dropping constant-checked positions cannot merge distinct base rows,
  // but a subgoal with *no* variables (all constants) produces arity-0
  // tuples that must collapse to at most one.
  if (columns.empty()) out.Dedup();
  if (metrics != nullptr) {
    metrics->rows_in += base.size();
    metrics->rows_out += out.size();
    metrics->mem_bytes += mem;
  }
  return out;
}

namespace {

// A comparison applied as a row predicate once its columns are bound.
struct PendingComparison {
  const Subgoal* subgoal;
  bool applied = false;
};

struct PendingNegation {
  const Subgoal* subgoal;
  Relation bindings;  // binding relation of the negated atom
  bool applied = false;
};

// Resolves the value of a term in a row of `schema` (column or constant).
const Value& TermValue(const Term& t, const Schema& schema, const Tuple& row) {
  if (t.is_constant()) return t.constant();
  std::optional<std::size_t> idx = schema.IndexOf(TermColumn(t));
  QF_CHECK(idx.has_value());
  return row[*idx];
}

bool ColumnsBound(const std::vector<Term>& terms, const Schema& schema) {
  for (const Term& t : terms) {
    if (t.is_constant()) continue;
    if (!schema.Contains(TermColumn(t))) return false;
  }
  return true;
}

}  // namespace

Result<Relation> EvaluateConjunctiveBindings(
    const ConjunctiveQuery& cq, const PredicateResolver& resolver,
    const std::vector<std::string>& output_columns,
    const CqEvalOptions& options, std::size_t* peak_rows) {
  // Partition subgoals.
  std::vector<const Subgoal*> positives;
  std::vector<PendingComparison> comparisons;
  std::vector<PendingNegation> negations;
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) {
      positives.push_back(&s);
    } else if (s.is_comparison()) {
      comparisons.push_back({&s});
    } else {
      negations.push_back({&s, Relation()});
    }
  }
  if (positives.empty()) {
    return FailedPreconditionError(
        "cannot evaluate a query with no positive subgoals (unsafe)");
  }

  // Constant-only comparisons decide emptiness up front.
  for (PendingComparison& pc : comparisons) {
    const Subgoal& s = *pc.subgoal;
    if (s.lhs().is_constant() && s.rhs().is_constant()) {
      pc.applied = true;
      if (!EvalCompare(s.op(), s.lhs().constant(), s.rhs().constant())) {
        return Relation{Schema(output_columns)};
      }
    }
  }

  // Observability: `m` roots this query's operator tree; the trace sink
  // is only consulted when metrics are on (ScopedOp enforces this too).
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  // Governance: check the context after every operator (truncated output
  // from a tripped operator must never be mistaken for a result), and
  // return accounted bytes of dropped intermediates to the pool.
  QueryContext* ctx = options.ctx;
  auto governed = [ctx]() {
    return ctx != nullptr ? ctx->Check() : Status::Ok();
  };
  auto release = [ctx](const Relation& r) {
    if (ctx != nullptr) {
      ctx->Release(static_cast<std::uint64_t>(r.size()) *
                   ApproxTupleBytes(r.arity()));
    }
  };

  // Resolve bases and precompute binding relations.
  std::vector<Relation> positive_bindings;
  positive_bindings.reserve(positives.size());
  for (const Subgoal* s : positives) {
    Result<const Relation*> base = resolver.Resolve(s->predicate());
    if (!base.ok()) return base.status();
    if ((*base)->arity() != s->args().size()) {
      return InvalidArgumentError("arity mismatch for predicate " +
                                  s->predicate());
    }
    OpMetrics* node = m != nullptr ? m->AddChild("scan", s->predicate())
                                   : nullptr;
    ScopedOp span(node, tr);
    positive_bindings.push_back(
        SubgoalBindings(*s, **base, options.threads, node, ctx));
    if (Status s2 = governed(); !s2.ok()) return s2;
  }
  for (PendingNegation& pn : negations) {
    Result<const Relation*> base = resolver.Resolve(pn.subgoal->predicate());
    if (!base.ok()) return base.status();
    if ((*base)->arity() != pn.subgoal->args().size()) {
      return InvalidArgumentError("arity mismatch for predicate " +
                                  pn.subgoal->predicate());
    }
    OpMetrics* node =
        m != nullptr ? m->AddChild("scan", "NOT " + pn.subgoal->predicate())
                     : nullptr;
    ScopedOp span(node, tr);
    pn.bindings =
        SubgoalBindings(*pn.subgoal, **base, options.threads, node, ctx);
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  // Optional Yannakakis full-reducer pass (acyclic queries only).
  std::optional<JoinTree> tree;
  if (options.full_reducer) {
    tree = BuildJoinTree(cq);
    if (tree.has_value()) {
      auto reduce = [&](std::size_t target, std::size_t with) {
        OpMetrics* node =
            m != nullptr
                ? m->AddChild("semi_join",
                              "reduce " + positives[target]->predicate() +
                                  " by " + positives[with]->predicate())
                : nullptr;
        ScopedOp span(node, tr);
        std::uint64_t dropped = 0;
        if (ctx != nullptr) {
          dropped = static_cast<std::uint64_t>(
                        positive_bindings[target].size()) *
                    ApproxTupleBytes(positive_bindings[target].arity());
        }
        positive_bindings[target] = SemiJoin(positive_bindings[target],
                                             positive_bindings[with], node,
                                             ctx);
        if (ctx != nullptr) ctx->Release(dropped);
      };
      // Bottom-up: parents lose tuples with no match in their ears.
      for (std::size_t k = 0; k < tree->ears.size(); ++k) {
        reduce(tree->parents[k], tree->ears[k]);
        if (Status s2 = governed(); !s2.ok()) return s2;
      }
      // Top-down: ears lose tuples with no match in their (reduced)
      // parents. After both sweeps the bindings are globally consistent.
      for (std::size_t k = tree->ears.size(); k-- > 0;) {
        reduce(tree->ears[k], tree->parents[k]);
        if (Status s2 = governed(); !s2.ok()) return s2;
      }
    }
  }

  // Join order.
  std::vector<std::size_t> order = options.join_order;
  if (tree.has_value()) {
    // Tree order: root first, then ears innermost-out, so every join
    // touches its already-present parent (no cross products).
    order.clear();
    order.push_back(tree->root);
    for (std::size_t k = tree->ears.size(); k-- > 0;) {
      order.push_back(tree->ears[k]);
    }
  }
  if (order.empty()) {
    order.resize(positives.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else {
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i >= positives.size() || sorted[i] != i) {
        return InvalidArgumentError(
            "join_order must be a permutation of the positive subgoals");
      }
    }
    if (sorted.size() != positives.size()) {
      return InvalidArgumentError(
          "join_order must be a permutation of the positive subgoals");
    }
  }

  // Fold joins, applying comparisons and negations as soon as bound.
  Relation current = std::move(positive_bindings[order[0]]);
  std::size_t peak = current.size();
  auto apply_ready = [&]() {
    for (PendingComparison& pc : comparisons) {
      if (pc.applied) continue;
      const Subgoal& s = *pc.subgoal;
      if (!ColumnsBound(s.terms(), current.schema())) continue;
      pc.applied = true;
      const Schema& schema = current.schema();
      OpMetrics* node =
          m != nullptr ? m->AddChild("select", s.ToString()) : nullptr;
      ScopedOp span(node, tr);
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current = Select(
          current,
          [&s, &schema](const Tuple& row) {
            return EvalCompare(s.op(), TermValue(s.lhs(), schema, row),
                               TermValue(s.rhs(), schema, row));
          },
          node, ctx);
      if (ctx != nullptr) ctx->Release(dropped);
    }
    for (PendingNegation& pn : negations) {
      if (pn.applied) continue;
      if (!ColumnsBound(pn.subgoal->terms(), current.schema())) continue;
      pn.applied = true;
      OpMetrics* node =
          m != nullptr ? m->AddChild("anti_join", pn.subgoal->predicate())
                       : nullptr;
      ScopedOp span(node, tr);
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current = AntiJoin(current, pn.bindings, node, ctx);
      if (ctx != nullptr) {
        ctx->Release(dropped);
        release(pn.bindings);
        pn.bindings = Relation();
      }
    }
  };
  apply_ready();
  if (Status s2 = governed(); !s2.ok()) return s2;
  for (std::size_t k = 1; k < order.size(); ++k) {
    {
      OpMetrics* node =
          m != nullptr ? m->AddChild("join", positives[order[k]]->predicate())
                       : nullptr;
      ScopedOp span(node, tr);
      // The parallel join preserves the serial join's row order, so the
      // fold's intermediates are identical for every thread count.
      std::uint64_t dropped = static_cast<std::uint64_t>(current.size()) *
                              ApproxTupleBytes(current.arity());
      current =
          options.threads > 1
              ? ParallelNaturalJoin(current, positive_bindings[order[k]],
                                    options.threads, node, ctx)
              : NaturalJoin(current, positive_bindings[order[k]], node, ctx);
      if (ctx != nullptr) {
        // The old intermediate and the consumed binding are dead; hand
        // their accounted bytes back (and actually free the binding).
        ctx->Release(dropped);
        release(positive_bindings[order[k]]);
        positive_bindings[order[k]] = Relation();
      }
    }
    if (Status s2 = governed(); !s2.ok()) return s2;
    peak = std::max(peak, current.size());
    apply_ready();
    if (Status s2 = governed(); !s2.ok()) return s2;
  }

  for (const PendingComparison& pc : comparisons) {
    if (!pc.applied) {
      return FailedPreconditionError(
          "arithmetic subgoal never became bound (unsafe query): " +
          pc.subgoal->ToString());
    }
  }
  for (const PendingNegation& pn : negations) {
    if (!pn.applied) {
      return FailedPreconditionError(
          "negated subgoal never became bound (unsafe query): " +
          pn.subgoal->ToString());
    }
  }

  for (const std::string& c : output_columns) {
    if (!current.schema().Contains(c)) {
      return InvalidArgumentError("output column " + c +
                                  " is not bound by the query body");
    }
  }
  if (peak_rows != nullptr) *peak_rows = peak;
  OpMetrics* node = m != nullptr ? m->AddChild("project") : nullptr;
  ScopedOp span(node, tr);
  Relation projected = Project(current, output_columns, node, ctx);
  if (Status s2 = governed(); !s2.ok()) return s2;
  release(current);
  if (m != nullptr) {
    m->rows_in += current.size();
    m->rows_out += projected.size();
  }
  return projected;
}

}  // namespace qf
