// The naive generate-and-test evaluator — the executable definition of
// flock semantics (§2: "trying all such assignments in the query,
// evaluating the query, and seeing whether the result passes the filter").
//
// Candidate assignments range over the active domain of each parameter:
// the values occurring in base-relation columns at positions where the
// parameter appears in some relational subgoal. Assignments outside that
// domain bind a positive subgoal to an empty match (yielding an empty
// answer set), so for filters that reject the empty answer set — every
// monotone lower-bound filter with a positive threshold — the restriction
// is exact.
//
// Exponential in the number of parameters; intended as the reference
// oracle in tests and for arbitrary (non-monotone) filters on small data.
#ifndef QF_FLOCKS_NAIVE_EVAL_H_
#define QF_FLOCKS_NAIVE_EVAL_H_

#include <cstddef>

#include "common/resource.h"
#include "common/status.h"
#include "flocks/flock.h"

namespace qf {

struct NaiveEvalOptions {
  // Abort with an error if the number of candidate assignments exceeds
  // this bound (guards against accidentally running the oracle on big
  // data).
  std::size_t max_assignments = 10'000'000;
  bool require_nonnegative_sum = true;
  // Resource governance (common/resource.h): checked once per candidate
  // assignment and threaded into the per-assignment CQ evaluations, so
  // even the oracle honours deadlines and cancellation.
  QueryContext* ctx = nullptr;
};

// Evaluates `flock` by explicit enumeration. Result columns are the
// "$"-tagged parameters in sorted order, matching EvaluateFlock.
Result<Relation> NaiveEvaluateFlock(const QueryFlock& flock,
                                    const Database& db,
                                    const NaiveEvalOptions& options = {});

}  // namespace qf

#endif  // QF_FLOCKS_NAIVE_EVAL_H_
