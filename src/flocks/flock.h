// QueryFlock: the paper's central object (§2) — a parametrized query plus a
// filter over its per-assignment result. The flock's answer is the set of
// parameter assignments whose query result passes the filter:
//
//   QUERY:  answer(B) :- baskets(B,$1) AND baskets(B,$2)
//   FILTER: COUNT(answer.B) >= 20
//
// evaluates to the set of item pairs ($1,$2) appearing together in at
// least 20 baskets. Remember: a flock is a query about its *parameters*,
// not about the answer variables.
#ifndef QF_FLOCKS_FLOCK_H_
#define QF_FLOCKS_FLOCK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "flocks/filter.h"
#include "relational/database.h"

namespace qf {

struct QueryFlock {
  UnionQuery query;
  FilterCondition filter;

  QueryFlock() = default;
  QueryFlock(UnionQuery q, FilterCondition f)
      : query(std::move(q)), filter(std::move(f)) {}
  QueryFlock(ConjunctiveQuery cq, FilterCondition f)
      : query(UnionQuery(std::move(cq))), filter(std::move(f)) {}

  // Sorted parameter names (without the '$' sigil). These are the columns
  // of the flock's result relation.
  std::vector<std::string> ParameterNames() const;

  // Structural well-formedness:
  //   * at least one disjunct; every disjunct safe;
  //   * at least one parameter (a flock is a query about its parameters);
  //   * every disjunct mentions exactly the same parameter set;
  //   * the aggregated head column exists (for SUM/MIN/MAX).
  // With `db`, additionally checks every body predicate exists with the
  // right arity.
  Status Validate(const Database* db = nullptr) const;

  // Renders the paper's "QUERY: ... FILTER: ..." notation.
  std::string ToString() const;
};

// Convenience: parses `query_text` and attaches `filter`. Returns an error
// on parse failure or if the flock fails Validate() (without a database).
Result<QueryFlock> MakeFlock(std::string_view query_text,
                             FilterCondition filter);

}  // namespace qf

#endif  // QF_FLOCKS_FLOCK_H_
