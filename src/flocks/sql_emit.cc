#include "flocks/sql_emit.h"

#include <map>
#include <set>
#include <vector>

#include "common/check.h"
#include "flocks/cq_eval.h"

namespace qf {
namespace {

std::string SqlLiteral(const Value& v) {
  if (!v.is_string()) return v.ToString();
  std::string out = "'";
  for (char c : v.AsString()) {
    out += c;
    if (c == '\'') out += '\'';  // SQL escaping: double the quote
  }
  out += "'";
  return out;
}

std::string_view SqlCompareOp(CompareOp op) {
  // SQL uses '<>' for inequality; everything else matches our spelling.
  return op == CompareOp::kNe ? "<>" : CompareOpName(op);
}

// Emits the FROM/WHERE skeleton of one conjunctive disjunct. On success,
// `first_use` maps each variable/parameter column (TermColumn naming) to
// its SQL expression "tK.col".
struct DisjunctSql {
  std::string from;
  std::vector<std::string> where;
  std::map<std::string, std::string> first_use;
};

Result<DisjunctSql> BuildDisjunct(const ConjunctiveQuery& cq,
                                  const Database& db) {
  DisjunctSql out;
  int next_alias = 0;
  auto column_ref = [&db](const Subgoal& s, const std::string& alias,
                          std::size_t pos) {
    return alias + "." + db.Get(s.predicate()).schema().column(pos);
  };

  // Positive subgoals: aliases + equality conditions.
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_positive()) continue;
    if (!db.Has(s.predicate())) {
      return NotFoundError("unknown predicate: " + s.predicate());
    }
    if (db.Get(s.predicate()).arity() != s.args().size()) {
      return InvalidArgumentError("arity mismatch for predicate " +
                                  s.predicate());
    }
    std::string alias = "t" + std::to_string(next_alias++);
    if (!out.from.empty()) out.from += ", ";
    out.from += s.predicate() + " " + alias;
    for (std::size_t i = 0; i < s.args().size(); ++i) {
      const Term& t = s.args()[i];
      std::string ref = column_ref(s, alias, i);
      if (t.is_constant()) {
        out.where.push_back(ref + " = " + SqlLiteral(t.constant()));
        continue;
      }
      auto [it, inserted] = out.first_use.emplace(TermColumn(t), ref);
      if (!inserted) out.where.push_back(it->second + " = " + ref);
    }
  }

  auto term_expr = [&out](const Term& t) -> Result<std::string> {
    if (t.is_constant()) return SqlLiteral(t.constant());
    auto it = out.first_use.find(TermColumn(t));
    if (it == out.first_use.end()) {
      return FailedPreconditionError(
          "term " + t.ToString() +
          " is not bound by a positive subgoal (unsafe query)");
    }
    return it->second;
  };

  // Arithmetic subgoals.
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_comparison()) continue;
    Result<std::string> lhs = term_expr(s.lhs());
    if (!lhs.ok()) return lhs.status();
    Result<std::string> rhs = term_expr(s.rhs());
    if (!rhs.ok()) return rhs.status();
    out.where.push_back(*lhs + " " + std::string(SqlCompareOp(s.op())) + " " +
                        *rhs);
  }

  // Negated subgoals become NOT EXISTS.
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_negated()) continue;
    if (!db.Has(s.predicate())) {
      return NotFoundError("unknown predicate: " + s.predicate());
    }
    std::string alias = "n" + std::to_string(next_alias++);
    std::string cond;
    for (std::size_t i = 0; i < s.args().size(); ++i) {
      const Term& t = s.args()[i];
      std::string ref = column_ref(s, alias, i);
      std::string expr;
      if (t.is_constant()) {
        expr = SqlLiteral(t.constant());
      } else {
        Result<std::string> e = term_expr(t);
        if (!e.ok()) return e.status();
        expr = *e;
      }
      if (!cond.empty()) cond += " AND ";
      cond += ref + " = " + expr;
    }
    out.where.push_back("NOT EXISTS (SELECT 1 FROM " + s.predicate() + " " +
                        alias + (cond.empty() ? "" : " WHERE " + cond) + ")");
  }
  return out;
}

}  // namespace

Result<std::string> EmitSql(const QueryFlock& flock, const Database& db) {
  if (Status s = flock.Validate(); !s.ok()) return s;

  std::vector<std::string> params = flock.ParameterNames();
  std::string inner;
  for (std::size_t d = 0; d < flock.query.disjuncts.size(); ++d) {
    const ConjunctiveQuery& cq = flock.query.disjuncts[d];
    Result<DisjunctSql> built = BuildDisjunct(cq, db);
    if (!built.ok()) return built.status();

    std::string select = "  SELECT DISTINCT ";
    bool first = true;
    for (const std::string& p : params) {
      auto it = built->first_use.find("$" + p);
      if (it == built->first_use.end()) {
        return FailedPreconditionError("parameter $" + p +
                                       " is not bound in disjunct " +
                                       std::to_string(d));
      }
      if (!first) select += ", ";
      first = false;
      select += it->second + " AS p_" + p;
    }
    for (std::size_t i = 0; i < cq.head_vars.size(); ++i) {
      auto it = built->first_use.find(cq.head_vars[i]);
      QF_CHECK(it != built->first_use.end());  // Validate ensured safety
      select += ", " + it->second + " AS h_" + std::to_string(i);
    }
    select += "\n  FROM " + built->from;
    if (!built->where.empty()) {
      select += "\n  WHERE ";
      for (std::size_t i = 0; i < built->where.size(); ++i) {
        if (i > 0) select += "\n    AND ";
        select += built->where[i];
      }
    }
    if (d > 0) inner += "\n  UNION\n";
    inner += select;
  }

  std::string group_by;
  std::string outer_select;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) {
      group_by += ", ";
      outer_select += ", ";
    }
    group_by += "p_" + params[i];
    outer_select += "p_" + params[i];
  }

  const FilterCondition& f = flock.filter;
  std::string having(FilterAggName(f.agg));
  having += f.agg == FilterAgg::kCount
                ? "(*)"
                : "(h_" + std::to_string(f.agg_head_index) + ")";
  having += " " + std::string(SqlCompareOp(f.cmp)) + " " +
            Value(f.threshold).ToString();

  return "SELECT " + outer_select + "\nFROM (\n" + inner +
         "\n) AS answer\nGROUP BY " + group_by + "\nHAVING " + having + ";";
}

}  // namespace qf
