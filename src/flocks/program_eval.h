// Materialization of intermediate predicates (datalog/program.h) and
// flock evaluation over them — the "intermediate predicates" extension of
// Ex. 2.2. Views are computed bottom-up in dependency order and handed to
// the evaluators as extra predicates.
#ifndef QF_FLOCKS_PROGRAM_EVAL_H_
#define QF_FLOCKS_PROGRAM_EVAL_H_

#include <map>
#include <string>

#include "common/status.h"
#include "datalog/program.h"
#include "flocks/eval.h"
#include "flocks/flock.h"
#include "relational/database.h"

namespace qf {

// Evaluates every rule of `program` over `db` (and the views defined so
// far), returning name -> materialized relation. A view's columns are
// named after its head variables; multiple rules per head union. Fails if
// a defined predicate shadows a base relation.
Result<std::map<std::string, Relation>> MaterializeProgram(
    const Program& program, const Database& db);

// Evaluates `flock` whose query body may reference `program`'s
// intermediate predicates alongside the base relations.
Result<Relation> EvaluateFlockWithProgram(
    const QueryFlock& flock, const Program& program, const Database& db,
    const FlockEvalOptions& options = {}, FlockEvalInfo* info = nullptr);

}  // namespace qf

#endif  // QF_FLOCKS_PROGRAM_EVAL_H_
