#include "flocks/eval.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "relational/ops.h"
#include "relational/spill.h"

namespace qf {

std::vector<std::string> FlockParameterColumns(const QueryFlock& flock) {
  std::vector<std::string> out;
  for (const std::string& p : flock.ParameterNames()) out.push_back("$" + p);
  return out;
}

Result<Relation> EvaluateFlock(
    const QueryFlock& flock, const Database& db,
    const FlockEvalOptions& options,
    const std::map<std::string, const Relation*>* extra,
    FlockEvalInfo* info) {
  if (!flock.filter.IsMonotone()) {
    return InvalidArgumentError(
        "the direct evaluator requires a monotone filter; use "
        "NaiveEvaluateFlock for arbitrary filters");
  }
  if (Status s = flock.Validate(); !s.ok()) return s;

  std::vector<std::string> param_columns = FlockParameterColumns(flock);
  std::size_t head_arity = flock.query.head_arity();

  // Canonical head column names, so disjuncts with differently named head
  // variables (Fig. 4) union cleanly.
  std::vector<std::string> canonical_heads;
  for (std::size_t i = 0; i < head_arity; ++i) {
    canonical_heads.push_back("_h" + std::to_string(i));
  }
  std::vector<std::string> answer_columns = param_columns;
  answer_columns.insert(answer_columns.end(), canonical_heads.begin(),
                        canonical_heads.end());

  PredicateResolver resolver =
      extra != nullptr ? PredicateResolver(db, *extra)
                       : PredicateResolver(db);

  // Observability: one pre-allocated "disjunct" child per disjunct, so
  // the concurrent evaluations below write disjoint subtrees (the
  // children vector is never resized during the fan-out).
  OpMetrics* m = options.metrics;
  TraceSink* tr = m != nullptr ? options.trace : nullptr;
  if (m != nullptr && m->op.empty()) m->op = "flock";
  QueryContext* ctx = options.ctx;
  auto governed = [ctx]() {
    return ctx != nullptr ? ctx->Check() : Status::Ok();
  };

  const FilterCondition& filter = flock.filter;
  AggKind agg_kind =
      filter.agg == FilterAgg::kCount
          ? AggKind::kCount
          : (filter.agg == FilterAgg::kSum
                 ? AggKind::kSum
                 : (filter.agg == FilterAgg::kMin ? AggKind::kMin
                                                  : AggKind::kMax));
  std::string agg_column = filter.agg == FilterAgg::kCount
                               ? std::string()
                               : canonical_heads[filter.agg_head_index];
  std::string agg_detail;
  switch (agg_kind) {
    case AggKind::kCount: agg_detail = "COUNT"; break;
    case AggKind::kSum: agg_detail = "SUM(" + agg_column + ")"; break;
    case AggKind::kMin: agg_detail = "MIN(" + agg_column + ")"; break;
    case AggKind::kMax: agg_detail = "MAX(" + agg_column + ")"; break;
  }

  // Evaluate the disjuncts — concurrently when threads allow, each into
  // its own slot — then union the slots in disjunct order. The union
  // order matches the serial loop's, so the answer relation is identical
  // for every thread count.
  std::size_t n_disjuncts = flock.query.disjuncts.size();
  std::vector<Relation> disjunct_answers(n_disjuncts);
  std::vector<std::size_t> disjunct_peaks(n_disjuncts, 0);
  std::vector<OpMetrics*> disjunct_nodes(n_disjuncts, nullptr);
  if (m != nullptr) {
    disjunct_nodes = m->AddChildren(n_disjuncts, "disjunct");
  }

  // Out-of-core fused path: with a spill grant and a single disjunct,
  // hand the CQ evaluator a grace-hash GROUP BY sink. If the governor's
  // activation rule fires at the final join, answer rows stream straight
  // into checksummed partition files and the union / SUM scan / group_by
  // below are replaced by the sink's Finish() — same grouped relation,
  // bit for bit (DESIGN.md §14). Multi-disjunct flocks keep the
  // materialized path: the union must dedup across disjuncts.
  std::optional<SpillGroupSink> sink;
  if (ctx != nullptr && ctx->spill_env() != nullptr && n_disjuncts == 1) {
    std::function<Status(const Tuple&)> row_check;
    if (filter.agg == FilterAgg::kSum && options.require_nonnegative_sum) {
      std::size_t agg_idx = param_columns.size() + filter.agg_head_index;
      row_check = [agg_idx](const Tuple& t) -> Status {
        if (!t[agg_idx].IsNumeric() || t[agg_idx].AsNumber() < 0) {
          return FailedPreconditionError(
              "SUM filter saw a negative or non-numeric weight; monotone "
              "pruning would be unsound (set require_nonnegative_sum=false "
              "to override)");
        }
        return Status::Ok();
      };
    }
    sink.emplace(Schema(answer_columns), param_columns.size(), agg_kind,
                 agg_column, "_agg", std::move(row_check), *ctx->spill_env(),
                 ctx, nullptr);
  }

  auto eval_disjunct = [&](std::size_t d) -> Status {
    const ConjunctiveQuery& cq = flock.query.disjuncts[d];
    std::vector<std::string> wanted = param_columns;
    for (const std::string& h : cq.head_vars) wanted.push_back(h);
    CqEvalOptions cq_options;
    if (d < options.per_disjunct.size()) cq_options = options.per_disjunct[d];
    if (cq_options.threads <= 1) cq_options.threads = options.threads;
    cq_options.metrics = disjunct_nodes[d];
    if (disjunct_nodes[d] != nullptr && !cq_options.join_order.empty()) {
      // A pinned (non-text) join order is a plan decision — the learned
      // optimizer's direct arms pass one — so surface it in the tree.
      std::string order = "order=";
      for (std::size_t i = 0; i < cq_options.join_order.size(); ++i) {
        if (i > 0) order += ',';
        order += std::to_string(cq_options.join_order[i]);
      }
      disjunct_nodes[d]->detail = order;
    }
    cq_options.trace = tr;
    cq_options.ctx = ctx;
    if (sink.has_value()) cq_options.sink = &*sink;
    ScopedOp span(disjunct_nodes[d], tr);
    Result<Relation> bindings = EvaluateConjunctiveBindings(
        cq, resolver, wanted, cq_options, &disjunct_peaks[d]);
    if (!bindings.ok()) return bindings.status();
    disjunct_answers[d] = Rename(std::move(*bindings), answer_columns);
    return Status::Ok();
  };
  if (Status s = ParallelForStatus(
          std::min<std::size_t>(options.threads, n_disjuncts), n_disjuncts,
          1, [&](std::size_t begin, std::size_t) { return eval_disjunct(begin); });
      !s.ok()) {
    return s;
  }
  if (Status s = governed(); !s.ok()) return s;

  Relation grouped;
  std::size_t peak = 0;
  if (sink.has_value() && sink->engaged) {
    // Streamed: no materialized answer set ever existed. The sink's
    // row_check already enforced SUM nonnegativity per distinct row, and
    // its partition drain reproduces the group_by below exactly.
    peak = disjunct_peaks[0];
    OpMetrics* node =
        m != nullptr ? m->AddChild("group_by", agg_detail + " [spill]")
                     : nullptr;
    sink->set_metrics(node);
    ScopedOp span(node, tr);
    Result<Relation> g = sink->Finish();
    if (!g.ok()) return g.status();
    grouped = std::move(*g);
    if (Status s = governed(); !s.ok()) return s;
    if (info != nullptr) {
      info->peak_rows = peak;
      info->answer_rows = static_cast<std::size_t>(sink->answer_rows());
    }
  } else {
  Relation answers{Schema(answer_columns)};
  {
    // One "union" node for the whole fold; counters filled once so
    // rows_out is the exact cardinality of the unioned answer set.
    OpMetrics* node =
        m != nullptr && n_disjuncts > 1 ? m->AddChild("union") : nullptr;
    ScopedOp span(node, tr);
    for (std::size_t d = 0; d < n_disjuncts; ++d) {
      peak = std::max(peak, disjunct_peaks[d]);
      if (n_disjuncts == 1) {
        answers = std::move(disjunct_answers[d]);
      } else {
        std::uint64_t dropped = 0;
        if (ctx != nullptr) {
          dropped = static_cast<std::uint64_t>(answers.size() +
                                               disjunct_answers[d].size()) *
                    ApproxTupleBytes(answers.arity());
        }
        answers = Union(answers, disjunct_answers[d], nullptr, ctx);
        if (ctx != nullptr) {
          // Both union inputs are dead: the consumed disjunct result is
          // freed here, the previous accumulator was replaced.
          ctx->Release(dropped);
          disjunct_answers[d] = Relation();
        }
      }
    }
    if (Status s = governed(); !s.ok()) return s;
    if (node != nullptr) {
      for (const Relation& r : disjunct_answers) node->rows_in += r.size();
      node->rows_out = answers.size();
    }
  }

  if (flock.filter.agg == FilterAgg::kSum &&
      options.require_nonnegative_sum) {
    std::size_t agg_idx = param_columns.size() + flock.filter.agg_head_index;
    for (const Tuple& t : answers.rows()) {
      if (!t[agg_idx].IsNumeric() || t[agg_idx].AsNumber() < 0) {
        return FailedPreconditionError(
            "SUM filter saw a negative or non-numeric weight; monotone "
            "pruning would be unsound (set require_nonnegative_sum=false "
            "to override)");
      }
    }
  }

  if (info != nullptr) {
    info->peak_rows = peak;
    info->answer_rows = answers.size();
  }

  // The parallel overload aggregates morsel-locally and merges; the
  // serial one is kept for threads <= 1 so the single-core path carries
  // zero coordination overhead. Both feed the same filter + projection,
  // and the final sort makes the returned row order identical.
  {
    OpMetrics* node =
        m != nullptr ? m->AddChild("group_by", agg_detail) : nullptr;
    ScopedOp span(node, tr);
    grouped =
        options.threads > 1
            ? GroupAggregate(answers, param_columns, agg_kind, agg_column,
                             "_agg", options.threads, node, ctx)
            : GroupAggregate(answers, param_columns, agg_kind, agg_column,
                             "_agg", node, ctx);
  }
  if (Status s = governed(); !s.ok()) return s;
  }

  std::size_t agg_col = grouped.schema().IndexOfOrDie("_agg");
  Relation passing;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("filter") : nullptr;
    ScopedOp span(node, tr);
    passing = Select(
        grouped,
        [&filter, agg_col](const Tuple& row) {
          return filter.Accepts(row[agg_col]);
        },
        node, ctx);
  }
  if (Status s = governed(); !s.ok()) return s;
  Relation result;
  {
    OpMetrics* node = m != nullptr ? m->AddChild("project") : nullptr;
    ScopedOp span(node, tr);
    result = Project(passing, param_columns, node, ctx);
    result.SortRows();
  }
  if (Status s = governed(); !s.ok()) return s;
  if (m != nullptr) m->rows_out += result.size();
  result.set_name("flock_result");
  return result;
}

}  // namespace qf
