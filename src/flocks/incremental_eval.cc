#include "flocks/incremental_eval.h"

#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"
#include "flocks/cq_eval.h"
#include "flocks/eval.h"
#include "relational/ops.h"

namespace qf {

namespace {

// Append chains longer than this rebuild instead of walking: a state this
// stale has absorbed nothing for 64 appends, so the delta is likely a
// large fraction of the relation anyway.
constexpr std::size_t kMaxChainLinks = 64;

// Reserved overlay name for the delta slice of `name` — ':' cannot appear
// in a parsed predicate, so user queries can never collide with it.
std::string DeltaPredicate(const std::string& name) {
  return "__qf_delta:" + name;
}

// All relational predicates of the query, with an any-occurrence-negated
// flag (a predicate both joined and negated counts as negated: its deltas
// are non-monotone).
std::map<std::string, bool> CollectPredicates(const UnionQuery& query) {
  std::map<std::string, bool> preds;
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    for (const Subgoal& sg : cq.subgoals) {
      if (!sg.is_relational()) continue;
      preds[sg.predicate()] |= sg.is_negated();
    }
  }
  return preds;
}

// The exact SUM-soundness check of flocks/eval.cc, applied per answer row
// before it enters the cached state. The message must match the direct
// evaluator's byte for byte: differential tests compare statement errors.
Status CheckSumRow(const Tuple& row, std::size_t agg_idx) {
  if (!row[agg_idx].IsNumeric() || row[agg_idx].AsNumber() < 0) {
    return FailedPreconditionError(
        "SUM filter saw a negative or non-numeric weight; monotone "
        "pruning would be unsound (set require_nonnegative_sum=false "
        "to override)");
  }
  return Status::Ok();
}

// True when `v` is exactly representable as an integer (addition over such
// doubles is associative, the condition for bit-identical incremental sums).
bool IntegralSummand(const Value& v) {
  double x = v.AsNumber();
  return std::nearbyint(x) == x && std::abs(x) <= 9007199254740992.0;
}

}  // namespace

void IncrementalEvaluator::RecordAppend(const std::string& name,
                                        std::shared_ptr<const Relation> from,
                                        std::shared_ptr<const Relation> to) {
  Chain& chain = chains_[name];
  chain.links.emplace_back(std::move(from), std::move(to));
  if (chain.links.size() > kMaxChainLinks) {
    chain.links.erase(chain.links.begin());
  }
}

void IncrementalEvaluator::RecordReplace(const std::string& name) {
  chains_.erase(name);
}

void IncrementalEvaluator::Reset() {
  states_.clear();
  chains_.clear();
  last_use_.clear();
  use_tick_ = 0;
}

bool IncrementalEvaluator::MakeRoom(const std::string& subject,
                                    std::uint64_t projected,
                                    std::uint64_t budget) {
  if (budget == 0) return true;
  if (projected > budget) return false;
  auto others_bytes = [&] {
    std::uint64_t total = 0;
    for (const auto& [name, st] : states_) {
      if (name != subject) total += st->ApproxBytes();
    }
    return total;
  };
  while (others_bytes() + projected > budget) {
    // Victim = least-recently-served other state; among equals the
    // smaller one goes first (less rebuild work thrown away). The loop
    // terminates: each pass erases one state, and once none remain
    // others_bytes() == 0 <= budget - projected.
    std::string victim;
    std::uint64_t victim_use = 0;
    std::uint64_t victim_bytes = 0;
    for (const auto& [name, st] : states_) {
      if (name == subject) continue;
      auto use_it = last_use_.find(name);
      std::uint64_t use = use_it != last_use_.end() ? use_it->second : 0;
      std::uint64_t bytes = st->ApproxBytes();
      if (victim.empty() || use < victim_use ||
          (use == victim_use && bytes < victim_bytes)) {
        victim = name;
        victim_use = use;
        victim_bytes = bytes;
      }
    }
    if (victim.empty()) break;
    states_.erase(victim);
    last_use_.erase(victim);
    ++budget_evictions_;
  }
  return true;
}

bool IncrementalEvaluator::DeltaSlice(
    const IncrementalFlockState::RelationMark& mark,
    const std::shared_ptr<const Relation>& cur, Relation* slice) const {
  auto it = chains_.find(mark.name);
  if (it == chains_.end()) return false;
  // Walk the append chain from the marked handle to the current one. Each
  // AppendRelation keeps its base's rows as a bit-identical prefix, so
  // reachability means rows [mark.rows, cur->size()) are exactly the
  // appended tuples.
  std::shared_ptr<const Relation> at = mark.handle;
  std::size_t steps = 0;
  while (at != cur) {
    bool advanced = false;
    for (const auto& [from, to] : it->second.links) {
      if (from == at) {
        at = to;
        advanced = true;
        break;
      }
    }
    if (!advanced || ++steps > kMaxChainLinks) return false;
  }
  QF_CHECK_MSG(cur->size() >= mark.rows,
               "append chain shrank a relation (prefix stability violated)");
  *slice = Relation(cur->schema());
  slice->set_name(DeltaPredicate(mark.name));
  for (std::size_t r = mark.rows; r < cur->size(); ++r) {
    slice->Add(cur->rows()[r]);
  }
  return true;
}

Status IncrementalEvaluator::BuildState(const std::string& name,
                                        const QueryFlock& flock,
                                        const Database& db,
                                        const IncrementalEvalOptions& opts,
                                        IncrementalFlockState* st) {
  (void)name;
  std::vector<std::string> param_columns = FlockParameterColumns(flock);
  std::vector<std::string> answer_columns = param_columns;
  for (std::size_t i = 0; i < flock.query.head_arity(); ++i) {
    answer_columns.push_back("_h" + std::to_string(i));
  }
  std::size_t agg_idx = param_columns.size() + flock.filter.agg_head_index;
  bool check_sum = flock.filter.agg == FilterAgg::kSum;

  PredicateResolver resolver(db);
  OpMetrics* m = opts.metrics;
  TraceSink* tr = m != nullptr ? opts.trace : nullptr;
  std::size_t n_disjuncts = flock.query.disjuncts.size();
  std::vector<OpMetrics*> disjunct_nodes(n_disjuncts, nullptr);
  if (m != nullptr) disjunct_nodes = m->AddChildren(n_disjuncts, "disjunct");

  // Serial over disjuncts (each CQ evaluation is itself morsel-parallel);
  // absorbing in disjunct order reproduces the direct evaluator's union
  // order, so the cached answer set is the same first-occurrence sequence.
  for (std::size_t d = 0; d < n_disjuncts; ++d) {
    const ConjunctiveQuery& cq = flock.query.disjuncts[d];
    std::vector<std::string> wanted = param_columns;
    for (const std::string& h : cq.head_vars) wanted.push_back(h);
    CqEvalOptions cq_options;
    cq_options.threads = opts.threads;
    cq_options.metrics = disjunct_nodes[d];
    cq_options.trace = tr;
    cq_options.ctx = opts.ctx;
    ScopedOp span(disjunct_nodes[d], tr);
    Result<Relation> bindings =
        EvaluateConjunctiveBindings(cq, resolver, wanted, cq_options);
    if (!bindings.ok()) return bindings.status();
    Relation renamed = Rename(std::move(*bindings), answer_columns);
    for (const Tuple& row : renamed.rows()) {
      if (check_sum) {
        if (Status s = CheckSumRow(row, agg_idx); !s.ok()) return s;
      }
      st->AbsorbAnswer(row);
    }
    if (opts.ctx != nullptr) {
      if (Status s = opts.ctx->Check(); !s.ok()) return s;
    }
  }
  st->SealBatch();

  for (const auto& [pred, negated] : CollectPredicates(flock.query)) {
    std::shared_ptr<const Relation> handle = db.GetShared(pred);
    std::size_t rows = handle->size();
    st->marks().push_back(IncrementalFlockState::RelationMark{
        pred, std::move(handle), rows, negated});
  }
  st->set_last_generation(db.generation());
  st->full_builds += 1;
  return Status::Ok();
}

Status IncrementalEvaluator::Run(const std::string& name,
                                 const QueryFlock& flock, const Database& db,
                                 const std::map<std::string, Relation>& views,
                                 const IncrementalEvalOptions& opts,
                                 Relation* result, IncrementalRunInfo* info) {
  QF_CHECK_MSG(result != nullptr && info != nullptr,
               "incremental Run needs result and info out-params");
  *info = IncrementalRunInfo{};
  OpMetrics* m = opts.metrics;
  if (m != nullptr && m->op.empty()) m->op = "flock";
  // Added first so the decision leads the EXPLAIN ANALYZE tree; the
  // detail is filled in by `finish` once the decision is known.
  OpMetrics* inc_node = m != nullptr ? m->AddChild("incremental") : nullptr;
  auto finish = [&](std::string decision) {
    info->decision = std::move(decision);
    auto st_it = states_.find(name);
    info->state_bytes =
        st_it != states_.end() ? st_it->second->ApproxBytes() : 0;
    if (inc_node != nullptr) {
      inc_node->detail = info->decision;
      inc_node->mem_bytes = info->state_bytes;
      for (const auto& [rel, rows] : info->delta_rows) {
        inc_node->AddChild("delta", rel)->rows_in = rows;
      }
    }
    if (m != nullptr && info->served) m->rows_out += result->size();
    return Status::Ok();
  };

  // --- support checks: anything here falls back to the full evaluator ---

  if (!flock.filter.IsMonotone()) return finish("unsupported(non-monotone)");
  if (Status s = flock.Validate(); !s.ok()) {
    // The full evaluator reports the precise validation error.
    return finish("unsupported(invalid)");
  }
  std::map<std::string, bool> preds = CollectPredicates(flock.query);
  for (const auto& [pred, negated] : preds) {
    (void)negated;
    if (views.count(pred) > 0) {
      // Views resolve before the database and have no epoch/lineage;
      // queries over them stay on the uncached path.
      states_.erase(name);
      return finish("unsupported(view:" + pred + ")");
    }
    if (!db.Has(pred)) {
      // The full evaluator reports the unknown-predicate error.
      states_.erase(name);
      return finish("unsupported(missing:" + pred + ")");
    }
  }

  // --- existing state: cached / delta / invalidation ---

  std::string build_reason = "build";
  auto it = states_.find(name);
  if (it != states_.end()) {
    IncrementalFlockState& st = *it->second;
    switch (st.CompatibilityWith(flock)) {
      case IncrementalFlockState::Compat::kIncompatible: {
        bool threshold_only =
            st.query() == flock.query &&
            st.built_filter().agg == flock.filter.agg &&
            st.built_filter().cmp == flock.filter.cmp &&
            (flock.filter.agg == FilterAgg::kCount ||
             st.built_filter().agg_head_index == flock.filter.agg_head_index);
        build_reason =
            threshold_only ? "rebuild(threshold)" : "rebuild(definition)";
        states_.erase(it);
        break;
      }
      case IncrementalFlockState::Compat::kSame:
      case IncrementalFlockState::Compat::kTightened: {
        if (db.generation() == st.last_generation()) {
          // Unchanged generation: every relation pointer is unchanged.
          *result = st.Serve(flock.filter);
          st.served_cached += 1;
          info->served = true;
          TouchState(name);
          return finish("cached");
        }
        // Classify each marked base relation: unchanged, appended (delta
        // slice reachable through the append chain), or invalidating.
        std::vector<std::pair<std::string, Relation>> changed;
        for (const IncrementalFlockState::RelationMark& mark : st.marks()) {
          std::shared_ptr<const Relation> cur = db.GetShared(mark.name);
          if (cur == mark.handle) continue;
          if (mark.negated) {
            build_reason = "rebuild(negated)";
            break;
          }
          Relation slice;
          if (!DeltaSlice(mark, cur, &slice)) {
            build_reason = "rebuild(lineage)";
            break;
          }
          changed.emplace_back(mark.name, std::move(slice));
        }
        if (build_reason != "build") {
          states_.erase(it);
          break;
        }
        std::size_t total_delta = 0;
        for (const auto& [rel, slice] : changed) {
          info->delta_rows.emplace_back(rel, slice.size());
          total_delta += slice.size();
        }
        if (changed.empty()) {
          // Only unrelated relations changed: refresh the generation so
          // the cheap probe works next time, and serve.
          st.set_last_generation(db.generation());
          *result = st.Serve(flock.filter);
          st.served_cached += 1;
          info->served = true;
          TouchState(name);
          return finish("cached");
        }
        // Residency pre-check BEFORE any work mutates the state: a
        // governed statement cannot un-latch a mid-flight budget trip, so
        // the projection (current footprint + one answer row per delta
        // tuple) decides up front. Colder flocks' states are evicted to
        // make room; only a projection the whole budget cannot hold
        // drops this state.
        if (opts.state_budget > 0) {
          std::uint64_t projected = st.ApproxBytes();
          std::size_t answer_arity =
              st.param_count() + flock.query.head_arity();
          projected += static_cast<std::uint64_t>(total_delta) *
                       ApproxTupleBytes(answer_arity);
          if (!MakeRoom(name, projected, opts.state_budget)) {
            states_.erase(it);
            last_use_.erase(name);
            return finish("evicted(budget)");
          }
        }

        // New answers are exactly the derivations using >= 1 delta tuple:
        // for every positive occurrence of a changed relation, evaluate
        // the query with that one occurrence bound to the delta slice and
        // everything else bound to the full new relations. Overlaps
        // (derivations with several delta tuples) are absorbed by dedup.
        std::vector<std::string> param_columns = FlockParameterColumns(flock);
        std::vector<std::string> answer_columns = param_columns;
        for (std::size_t i = 0; i < flock.query.head_arity(); ++i) {
          answer_columns.push_back("_h" + std::to_string(i));
        }
        std::size_t agg_idx =
            param_columns.size() + flock.filter.agg_head_index;
        bool check_sum = flock.filter.agg == FilterAgg::kSum;
        std::map<std::string, const Relation*> extra;
        std::set<std::string> changed_names;
        for (const auto& [rel, slice] : changed) {
          if (slice.size() == 0) continue;  // deduped-away append
          extra[DeltaPredicate(rel)] = &slice;
          changed_names.insert(rel);
        }
        PredicateResolver resolver(db, extra);
        TraceSink* tr = m != nullptr ? opts.trace : nullptr;
        std::vector<Tuple> staging;
        for (std::size_t d = 0; d < flock.query.disjuncts.size(); ++d) {
          const ConjunctiveQuery& cq = flock.query.disjuncts[d];
          std::vector<std::string> wanted = param_columns;
          for (const std::string& h : cq.head_vars) wanted.push_back(h);
          for (std::size_t j = 0; j < cq.subgoals.size(); ++j) {
            const Subgoal& sg = cq.subgoals[j];
            if (!sg.is_positive() || changed_names.count(sg.predicate()) == 0) {
              continue;
            }
            ConjunctiveQuery delta_cq = cq;
            delta_cq.subgoals[j] =
                Subgoal::Positive(DeltaPredicate(sg.predicate()), sg.args());
            CqEvalOptions cq_options;
            cq_options.threads = opts.threads;
            cq_options.trace = tr;
            cq_options.ctx = opts.ctx;
            if (inc_node != nullptr) {
              cq_options.metrics = inc_node->AddChild(
                  "disjunct", "delta d" + std::to_string(d) + " " +
                                  sg.predicate());
            }
            ScopedOp span(cq_options.metrics, tr);
            Result<Relation> bindings = EvaluateConjunctiveBindings(
                delta_cq, resolver, wanted, cq_options);
            if (!bindings.ok()) return bindings.status();
            Relation renamed = Rename(std::move(*bindings), answer_columns);
            for (const Tuple& row : renamed.rows()) {
              staging.push_back(row);
            }
            if (opts.ctx != nullptr) {
              if (Status s = opts.ctx->Check(); !s.ok()) return s;
            }
          }
        }
        // Pre-scan the staged rows BEFORE absorbing: a SUM violation must
        // surface as the evaluator's error with the state untouched, and
        // a non-integral summand must drop the state without having
        // polluted it (the fallback full run then owns the statement).
        if (check_sum) {
          for (const Tuple& row : staging) {
            if (Status s = CheckSumRow(row, agg_idx); !s.ok()) return s;
          }
          for (const Tuple& row : staging) {
            if (!IntegralSummand(row[agg_idx])) {
              states_.erase(name);
              return finish("unsupported(sum-inexact)");
            }
          }
        }
        for (const Tuple& row : staging) st.AbsorbAnswer(row);
        st.SealBatch();
        st.delta_batches += 1;
        for (IncrementalFlockState::RelationMark& mark : st.marks()) {
          std::shared_ptr<const Relation> cur = db.GetShared(mark.name);
          mark.rows = cur->size();
          mark.handle = std::move(cur);
        }
        st.set_last_generation(db.generation());
        *result = st.Serve(flock.filter);
        info->served = true;
        TouchState(name);
        Status done = finish("delta(+" + std::to_string(total_delta) +
                             " rows)");
        // Post-absorb residency check: the projection above is an
        // estimate; if the real footprint now exceeds what the whole
        // budget can hold (after evicting colder states), the (correct)
        // result still serves but the state is not retained.
        if (opts.state_budget > 0) {
          auto grown = states_.find(name);
          if (grown != states_.end() &&
              !MakeRoom(name, grown->second->ApproxBytes(),
                        opts.state_budget)) {
            states_.erase(grown);
            last_use_.erase(name);
          }
        }
        return done;
      }
    }
  }

  // --- full build (no state, or invalidated above) ---

  auto st = std::make_unique<IncrementalFlockState>(name, flock,
                                                    opts.window_capacity);
  if (Status s = BuildState(name, flock, db, opts, st.get()); !s.ok()) {
    return s;
  }
  if (flock.filter.agg == FilterAgg::kSum && !st->sum_exact()) {
    // Non-integral summands: incremental re-addition is not guaranteed
    // bit-identical to a from-scratch fold, so nothing is cached and the
    // caller runs the ordinary evaluation.
    return finish("unsupported(sum-inexact)");
  }
  if (opts.state_budget > 0 &&
      !MakeRoom(name, st->ApproxBytes(), opts.state_budget)) {
    return finish("evicted(budget)");
  }
  *result = st->Serve(flock.filter);
  states_[name] = std::move(st);
  info->served = true;
  TouchState(name);
  return finish(build_reason);
}

const IncrementalFlockState* IncrementalEvaluator::state(
    const std::string& name) const {
  auto it = states_.find(name);
  return it != states_.end() ? it->second.get() : nullptr;
}

std::string IncrementalEvaluator::Describe(const std::string& name) const {
  const IncrementalFlockState* st = state(name);
  if (st == nullptr) return "no incremental state for flock " + name + "\n";
  return st->Describe();
}

std::string IncrementalEvaluator::DescribeAll() const {
  if (states_.empty()) return "no incremental state\n";
  std::string out;
  for (const auto& [name, st] : states_) out += st->Describe();
  return out;
}

}  // namespace qf
