#include "datalog/containment.h"

#include <vector>

namespace qf {
namespace {

// Tries to extend `mapping` so that q1-term `t` maps to q2-term `u`.
// Returns false (leaving `mapping` possibly extended; callers backtrack by
// copy) if impossible.
bool UnifyTerm(const Term& t, const Term& u, ContainmentMapping& mapping) {
  switch (t.kind()) {
    case Term::Kind::kConstant:
      return u.is_constant() && u.constant() == t.constant();
    case Term::Kind::kParameter:
      // Parameters act as distinguished constants: a subquery bounds the
      // answer for each fixed parameter assignment, so h must fix them.
      return u.is_parameter() && u.name() == t.name();
    case Term::Kind::kVariable: {
      auto it = mapping.find(t.name());
      if (it != mapping.end()) return it->second == u;
      mapping.emplace(t.name(), u);
      return true;
    }
  }
  return false;
}

// Whether subgoal s1 of q1 can map onto subgoal s2 of q2 under an extension
// of `mapping`; if yes, `mapping` is extended in place.
bool UnifySubgoal(const Subgoal& s1, const Subgoal& s2,
                  ContainmentMapping& mapping) {
  if (s1.kind() != s2.kind()) return false;
  if (s1.is_relational()) {
    if (s1.predicate() != s2.predicate()) return false;
    if (s1.args().size() != s2.args().size()) return false;
    for (std::size_t i = 0; i < s1.args().size(); ++i) {
      if (!UnifyTerm(s1.args()[i], s2.args()[i], mapping)) return false;
    }
    return true;
  }
  // Comparisons: match the same operator directly, or the flipped operator
  // with swapped sides (X < Y can map onto B > A with h(X)=A, h(Y)=B).
  if (s1.op() == s2.op()) {
    ContainmentMapping saved = mapping;
    if (UnifyTerm(s1.lhs(), s2.lhs(), mapping) &&
        UnifyTerm(s1.rhs(), s2.rhs(), mapping)) {
      return true;
    }
    mapping = std::move(saved);
  }
  if (FlipCompareOp(s1.op()) == s2.op()) {
    if (UnifyTerm(s1.lhs(), s2.rhs(), mapping) &&
        UnifyTerm(s1.rhs(), s2.lhs(), mapping)) {
      return true;
    }
  }
  return false;
}

bool Search(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
            std::size_t next, ContainmentMapping& mapping) {
  if (next == q1.subgoals.size()) return true;
  const Subgoal& s1 = q1.subgoals[next];
  for (const Subgoal& s2 : q2.subgoals) {
    ContainmentMapping saved = mapping;
    if (UnifySubgoal(s1, s2, mapping) && Search(q1, q2, next + 1, mapping)) {
      return true;
    }
    mapping = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<ContainmentMapping> FindContainmentMapping(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (q1.head_vars.size() != q2.head_vars.size()) return std::nullopt;
  ContainmentMapping mapping;
  // The head must map positionally.
  for (std::size_t i = 0; i < q1.head_vars.size(); ++i) {
    if (!UnifyTerm(Term::Variable(q1.head_vars[i]),
                   Term::Variable(q2.head_vars[i]), mapping)) {
      return std::nullopt;
    }
  }
  if (!Search(q1, q2, 0, mapping)) return std::nullopt;
  return mapping;
}

bool Contains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return FindContainmentMapping(q1, q2).has_value();
}

bool SubsetContains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (q1.head_name != q2.head_name || q1.head_vars != q2.head_vars) {
    return false;
  }
  for (const Subgoal& s1 : q1.subgoals) {
    bool found = false;
    for (const Subgoal& s2 : q2.subgoals) {
      if (s1 == s2) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace qf
