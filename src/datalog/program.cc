#include "datalog/program.h"

#include <map>
#include <set>

#include "datalog/parser.h"
#include "datalog/safety.h"

namespace qf {

std::vector<std::string> Program::DefinedPredicates() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const ConjunctiveQuery& rule : rules_) {
    if (seen.insert(rule.head_name).second) out.push_back(rule.head_name);
  }
  return out;
}

Status Program::Validate() const {
  std::map<std::string, std::size_t> arity;
  for (const ConjunctiveQuery& rule : rules_) {
    std::string why;
    if (!IsSafe(rule, &why)) {
      return InvalidArgumentError("rule for " + rule.head_name +
                                  " is unsafe: " + why);
    }
    if (!rule.Parameters().empty()) {
      return InvalidArgumentError(
          "rule for " + rule.head_name +
          " mentions flock parameters; intermediate predicates are "
          "parameter-free");
    }
    std::set<std::string> head_vars(rule.head_vars.begin(),
                                    rule.head_vars.end());
    if (head_vars.size() != rule.head_vars.size()) {
      return InvalidArgumentError("rule for " + rule.head_name +
                                  " repeats a head variable");
    }
    if (rule.head_vars.empty()) {
      return InvalidArgumentError("rule for " + rule.head_name +
                                  " has an empty head");
    }
    auto [it, inserted] = arity.emplace(rule.head_name,
                                        rule.head_vars.size());
    if (!inserted && it->second != rule.head_vars.size()) {
      return InvalidArgumentError("rules for " + rule.head_name +
                                  " disagree on arity");
    }
  }
  return TopologicalOrder().status();
}

Result<std::vector<std::string>> Program::TopologicalOrder() const {
  // Dependency edges: defined predicate -> defined predicates its rules'
  // bodies mention. Kahn's algorithm; leftovers mean a cycle.
  std::set<std::string> defined;
  for (const ConjunctiveQuery& rule : rules_) defined.insert(rule.head_name);

  std::map<std::string, std::set<std::string>> deps;
  for (const ConjunctiveQuery& rule : rules_) {
    std::set<std::string>& d = deps[rule.head_name];
    for (const Subgoal& s : rule.subgoals) {
      if (s.is_relational() && defined.contains(s.predicate()) &&
          s.predicate() != rule.head_name) {
        d.insert(s.predicate());
      }
      if (s.is_relational() && s.predicate() == rule.head_name) {
        return InvalidArgumentError("predicate " + rule.head_name +
                                    " is directly recursive");
      }
    }
  }

  std::vector<std::string> order;
  std::set<std::string> placed;
  bool progress = true;
  while (progress && order.size() < deps.size()) {
    progress = false;
    for (auto& [name, d] : deps) {
      if (placed.contains(name)) continue;
      bool ready = true;
      for (const std::string& dep : d) {
        if (!placed.contains(dep)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(name);
        placed.insert(name);
        progress = true;
      }
    }
  }
  if (order.size() < deps.size()) {
    return InvalidArgumentError(
        "intermediate predicates are mutually recursive");
  }
  return order;
}

std::string Program::ToString() const {
  std::string out;
  for (const ConjunctiveQuery& rule : rules_) {
    out += rule.ToString() + "\n";
  }
  return out;
}

Result<Program> ParseProgram(std::string_view text) {
  Result<std::vector<ConjunctiveQuery>> rules = ParseRules(text);
  if (!rules.ok()) return rules.status();
  Program program(std::move(*rules));
  if (Status s = program.Validate(); !s.ok()) return s;
  return program;
}

}  // namespace qf
