#include "datalog/safety.h"

#include <set>
#include <utility>

namespace qf {
namespace {

// Names of variables and parameters appearing in positive relational
// subgoals. Parameter names are tagged to avoid colliding with a variable
// of the same spelling.
std::set<std::pair<bool, std::string>> PositiveNames(
    const ConjunctiveQuery& cq) {
  std::set<std::pair<bool, std::string>> out;
  for (const Subgoal& s : cq.subgoals) {
    if (!s.is_positive()) continue;
    for (const Term& t : s.terms()) {
      if (t.is_variable()) out.insert({false, t.name()});
      if (t.is_parameter()) out.insert({true, t.name()});
    }
  }
  return out;
}

}  // namespace

bool IsSafe(const ConjunctiveQuery& cq, std::string* why) {
  std::set<std::pair<bool, std::string>> positive = PositiveNames(cq);

  // Condition (1): head variables.
  for (const std::string& v : cq.head_vars) {
    if (!positive.contains({false, v})) {
      if (why != nullptr) {
        *why = "head variable " + v +
               " does not appear in a positive relational subgoal";
      }
      return false;
    }
  }

  // Conditions (2) and (3): negated and arithmetic subgoals.
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) continue;
    for (const Term& t : s.terms()) {
      if (t.is_constant()) continue;
      bool is_param = t.is_parameter();
      if (!positive.contains({is_param, t.name()})) {
        if (why != nullptr) {
          *why = std::string(s.is_negated() ? "negated" : "arithmetic") +
                 " subgoal " + s.ToString() + " uses " + t.ToString() +
                 ", which does not appear in a positive relational subgoal";
        }
        return false;
      }
    }
  }
  return true;
}

bool IsSafe(const UnionQuery& q, std::string* why) {
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    if (!IsSafe(cq, why)) return false;
  }
  return true;
}

}  // namespace qf
