#include "datalog/subquery.h"

#include "common/check.h"
#include "datalog/safety.h"

namespace qf {
namespace {

constexpr std::size_t kMaxSubgoals = 24;

std::vector<std::size_t> BitmaskToIndices(std::uint32_t mask) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1u) out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<SubqueryCandidate> EnumerateSafeSubqueries(
    const ConjunctiveQuery& cq, const SubqueryOptions& options) {
  std::size_t n = cq.subgoals.size();
  QF_CHECK_MSG(n <= kMaxSubgoals, "query too large for subquery enumeration");
  std::vector<SubqueryCandidate> out;
  std::uint32_t full = n == 32 ? 0xffffffffu : ((1u << n) - 1);
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    if (options.proper_only && mask == full) continue;
    SubqueryCandidate cand;
    cand.kept = BitmaskToIndices(mask);
    cand.query = cq.Subquery(cand.kept);
    if (!IsSafe(cand.query)) continue;
    cand.parameters = cand.query.Parameters();
    if (options.require_parameters && cand.parameters.empty()) continue;
    out.push_back(std::move(cand));
  }
  return out;
}

std::vector<SubqueryCandidate> EnumerateSafeSubqueriesForParameters(
    const ConjunctiveQuery& cq, const std::set<std::string>& params) {
  std::vector<SubqueryCandidate> all =
      EnumerateSafeSubqueries(cq, {.require_parameters = true});
  std::vector<SubqueryCandidate> out;
  for (SubqueryCandidate& cand : all) {
    if (cand.parameters == params) out.push_back(std::move(cand));
  }
  return out;
}

std::size_t CountSafeNontrivialSubsets(const ConjunctiveQuery& cq) {
  std::vector<SubqueryCandidate> all = EnumerateSafeSubqueries(
      cq, {.require_parameters = false, .proper_only = true});
  return all.size();
}

}  // namespace qf
