#include "datalog/parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace qf {
namespace {

enum class TokenKind {
  kIdent,     // predicate / variable / symbolic constant
  kParam,     // $name
  kInt,
  kFloat,
  kString,    // quoted
  kLParen,
  kRParen,
  kComma,
  kTurnstile,  // :-
  kCompare,    // < <= = != >= >
  kPeriod,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;      // raw text (for idents/params/literals)
  CompareOp op = CompareOp::kEq;
  std::size_t offset = 0;  // for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      std::size_t start = pos_;
      char c = text_[pos_];
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", CompareOp::kEq, start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", CompareOp::kEq, start});
        ++pos_;
      } else if (c == ',') {
        tokens.push_back({TokenKind::kComma, ",", CompareOp::kEq, start});
        ++pos_;
      } else if (c == '.') {
        tokens.push_back({TokenKind::kPeriod, ".", CompareOp::kEq, start});
        ++pos_;
      } else if (c == ';') {
        tokens.push_back({TokenKind::kSemicolon, ";", CompareOp::kEq, start});
        ++pos_;
      } else if (c == ':') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          tokens.push_back({TokenKind::kTurnstile, ":-", CompareOp::kEq, start});
          pos_ += 2;
        } else {
          return ErrorAt(start, "expected ':-'");
        }
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        Result<CompareOp> op = LexCompare();
        if (!op.ok()) return op.status();
        tokens.push_back({TokenKind::kCompare, "", *op, start});
      } else if (c == '$') {
        ++pos_;
        std::string name = LexIdentChars();
        if (name.empty()) return ErrorAt(start, "expected name after '$'");
        tokens.push_back({TokenKind::kParam, std::move(name), CompareOp::kEq,
                          start});
      } else if (c == '\'' || c == '"') {
        char quote = c;
        ++pos_;
        std::string body;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          body += text_[pos_++];
        }
        if (pos_ >= text_.size()) {
          return ErrorAt(start, "unterminated string literal");
        }
        ++pos_;  // closing quote
        tokens.push_back({TokenKind::kString, std::move(body), CompareOp::kEq,
                          start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        Result<Token> t = LexNumber(start);
        if (!t.ok()) return t.status();
        tokens.push_back(*t);
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back({TokenKind::kIdent, LexIdentChars(), CompareOp::kEq,
                          start});
      } else {
        return ErrorAt(start, std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back({TokenKind::kEnd, "", CompareOp::kEq, text_.size()});
    return tokens;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string LexIdentChars() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<CompareOp> LexCompare() {
    char c = text_[pos_];
    char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    if (c == '<' && next == '=') {
      pos_ += 2;
      return CompareOp::kLe;
    }
    if (c == '<') {
      ++pos_;
      return CompareOp::kLt;
    }
    if (c == '>' && next == '=') {
      pos_ += 2;
      return CompareOp::kGe;
    }
    if (c == '>') {
      ++pos_;
      return CompareOp::kGt;
    }
    if (c == '=') {
      // Accept both '=' and '=='.
      pos_ += next == '=' ? 2 : 1;
      return CompareOp::kEq;
    }
    if (c == '!' && next == '=') {
      pos_ += 2;
      return CompareOp::kNe;
    }
    return ErrorAt(pos_, "bad comparison operator");
  }

  Result<Token> LexNumber(std::size_t start) {
    std::size_t begin = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool saw_digit = false;
    bool is_float = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        saw_digit = true;
        ++pos_;
      } else if (c == '.' && !is_float && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) return ErrorAt(start, "bad numeric literal");
    std::string text(text_.substr(begin, pos_ - begin));
    return Token{is_float ? TokenKind::kFloat : TokenKind::kInt,
                 std::move(text), CompareOp::kEq, start};
  }

  Status ErrorAt(std::size_t offset, std::string message) {
    return InvalidArgumentError("parse error at offset " +
                                std::to_string(offset) + ": " +
                                std::move(message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool IsVariableName(std::string_view name) {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<ConjunctiveQuery>> ParseAllRules() {
    std::vector<ConjunctiveQuery> rules;
    while (Peek().kind != TokenKind::kEnd) {
      Result<ConjunctiveQuery> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      rules.push_back(std::move(*rule));
      // Optional rule terminator.
      if (Peek().kind == TokenKind::kPeriod ||
          Peek().kind == TokenKind::kSemicolon) {
        Advance();
      }
    }
    return rules;
  }

  Result<UnionQuery> ParseProgram() {
    Result<std::vector<ConjunctiveQuery>> parsed = ParseAllRules();
    if (!parsed.ok()) return parsed.status();
    std::vector<ConjunctiveQuery> rules = std::move(*parsed);
    if (rules.empty()) {
      return InvalidArgumentError("no rules in query");
    }
    for (std::size_t i = 1; i < rules.size(); ++i) {
      if (rules[i].head_name != rules[0].head_name) {
        return InvalidArgumentError(
            "all rules of a union query must share a head name; got '" +
            rules[0].head_name + "' and '" + rules[i].head_name + "'");
      }
      if (rules[i].head_vars.size() != rules[0].head_vars.size()) {
        return InvalidArgumentError(
            "all rules of a union query must share the head arity");
      }
    }
    return UnionQuery(std::move(rules));
  }

  Result<ConjunctiveQuery> ParseOneRule() {
    ConjunctiveQuery cq;
    Result<Token> head = Expect(TokenKind::kIdent, "head predicate");
    if (!head.ok()) return head.status();
    cq.head_name = head->text;
    if (Status s = ExpectOnly(TokenKind::kLParen, "'(' after head"); !s.ok()) {
      return s;
    }
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        Result<Token> arg = Expect(TokenKind::kIdent, "head variable");
        if (!arg.ok()) return arg.status();
        if (!IsVariableName(arg->text)) {
          return ErrorAt(arg->offset,
                         "head arguments must be variables (uppercase): '" +
                             arg->text + "'");
        }
        cq.head_vars.push_back(arg->text);
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Status s = ExpectOnly(TokenKind::kRParen, "')' after head args");
        !s.ok()) {
      return s;
    }
    if (Status s = ExpectOnly(TokenKind::kTurnstile, "':-' after head");
        !s.ok()) {
      return s;
    }
    // Body: subgoals separated by AND or ','.
    while (true) {
      Result<Subgoal> sg = ParseSubgoal();
      if (!sg.ok()) return sg.status();
      cq.subgoals.push_back(std::move(*sg));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      if (Peek().kind == TokenKind::kIdent && Peek().text == "AND") {
        Advance();
        continue;
      }
      break;
    }
    return cq;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status ErrorAt(std::size_t offset, std::string message) {
    return InvalidArgumentError("parse error at offset " +
                                std::to_string(offset) + ": " +
                                std::move(message));
  }

  Result<Token> Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return ErrorAt(Peek().offset, "expected " + std::string(what));
    }
    return Advance();
  }

  Status ExpectOnly(TokenKind kind, std::string_view what) {
    Result<Token> t = Expect(kind, what);
    return t.ok() ? Status::Ok() : t.status();
  }

  Result<Subgoal> ParseSubgoal() {
    if (Peek().kind == TokenKind::kIdent && Peek().text == "NOT") {
      Advance();
      Result<Subgoal> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      return Subgoal::Negated(atom->predicate(), atom->args());
    }
    // An atom iff an identifier directly followed by '('.
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen) {
      return ParseAtom();
    }
    // Otherwise an arithmetic subgoal: term op term.
    Result<Term> lhs = ParseTerm(/*argument_position=*/false);
    if (!lhs.ok()) return lhs.status();
    Result<Token> op = Expect(TokenKind::kCompare, "comparison operator");
    if (!op.ok()) return op.status();
    Result<Term> rhs = ParseTerm(/*argument_position=*/false);
    if (!rhs.ok()) return rhs.status();
    return Subgoal::Comparison(std::move(*lhs), op->op, std::move(*rhs));
  }

  Result<Subgoal> ParseAtom() {
    Result<Token> pred = Expect(TokenKind::kIdent, "predicate name");
    if (!pred.ok()) return pred.status();
    if (Status s = ExpectOnly(TokenKind::kLParen, "'(' after predicate");
        !s.ok()) {
      return s;
    }
    std::vector<Term> args;
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        Result<Term> arg = ParseTerm(/*argument_position=*/true);
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(*arg));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Status s = ExpectOnly(TokenKind::kRParen, "')' after arguments");
        !s.ok()) {
      return s;
    }
    return Subgoal::Positive(pred->text, std::move(args));
  }

  // In argument position a lowercase identifier is a symbolic constant; in a
  // comparison we only accept variables, parameters, and literals (a bare
  // lowercase identifier there is almost certainly a typo for a parameter).
  Result<Term> ParseTerm(bool argument_position) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kParam:
        Advance();
        return Term::Parameter(t.text);
      case TokenKind::kIdent: {
        Advance();
        if (IsVariableName(t.text)) return Term::Variable(t.text);
        if (argument_position) return Term::Constant(Value(t.text));
        return ErrorAt(t.offset,
                       "lowercase identifier '" + t.text +
                           "' not allowed in a comparison; quote it if it is "
                           "a constant");
      }
      case TokenKind::kInt: {
        Advance();
        Result<std::int64_t> v = ParseInt64(t.text);
        if (!v.ok()) return v.status();
        return Term::Constant(Value(*v));
      }
      case TokenKind::kFloat: {
        Advance();
        Result<double> v = ParseDouble(t.text);
        if (!v.ok()) return v.status();
        return Term::Constant(Value(*v));
      }
      case TokenKind::kString:
        Advance();
        return Term::Constant(Value(t.text));
      default:
        return ErrorAt(t.offset, "expected a term");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<UnionQuery> ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens)).ParseProgram();
}

Result<ConjunctiveQuery> ParseRule(std::string_view text) {
  Result<UnionQuery> q = ParseQuery(text);
  if (!q.ok()) return q.status();
  if (q->disjuncts.size() != 1) {
    return InvalidArgumentError("expected exactly one rule, got " +
                                std::to_string(q->disjuncts.size()));
  }
  return std::move(q->disjuncts.front());
}

Result<std::vector<ConjunctiveQuery>> ParseRules(std::string_view text) {
  Result<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens)).ParseAllRules();
}

}  // namespace qf
