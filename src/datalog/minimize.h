// Conjunctive-query minimization — the classic application of the
// containment mappings of §3.1 ([CM77]): a CQ has a unique (up to
// renaming) minimal equivalent obtained by deleting redundant subgoals.
// A subgoal is redundant when the query with it deleted still maps
// homomorphically onto... itself; operationally, delete a subgoal, test
// equivalence via containment both ways, repeat to fixpoint.
//
// Minimizing a flock's query before plan search shrinks the subquery
// lattice the optimizer explores and removes join work the evaluator
// would spend on subgoals that cannot change the answer.
#ifndef QF_DATALOG_MINIMIZE_H_
#define QF_DATALOG_MINIMIZE_H_

#include "datalog/ast.h"

namespace qf {

// Returns an equivalent query with redundant subgoals removed. Relational
// subgoals are candidates; arithmetic subgoals are kept as-is (the
// mapping test is only complete for the positive-relational part).
// Parameters and constants are rigid under the mappings, so a flock's
// semantics is preserved exactly.
ConjunctiveQuery MinimizeQuery(const ConjunctiveQuery& cq);

// Minimizes every disjunct.
UnionQuery MinimizeQuery(const UnionQuery& query);

}  // namespace qf

#endif  // QF_DATALOG_MINIMIZE_H_
