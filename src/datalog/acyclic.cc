#include "datalog/acyclic.h"

#include <set>
#include <string>

#include "common/check.h"

namespace qf {
namespace {

// Distinct variable/parameter names of a subgoal, tagged to keep a
// parameter "$x" distinct from a variable "x".
std::set<std::string> SubgoalVertices(const Subgoal& s) {
  std::set<std::string> out;
  for (const Term& t : s.terms()) {
    if (t.is_variable()) out.insert("v:" + t.name());
    if (t.is_parameter()) out.insert("p:" + t.name());
  }
  return out;
}

}  // namespace

std::optional<JoinTree> BuildJoinTree(const ConjunctiveQuery& cq) {
  std::vector<std::set<std::string>> vertices;
  for (const Subgoal& s : cq.subgoals) {
    if (s.is_positive()) vertices.push_back(SubgoalVertices(s));
  }
  if (vertices.empty()) return std::nullopt;

  std::vector<bool> removed(vertices.size(), false);
  std::size_t remaining = vertices.size();
  JoinTree tree;

  bool progress = true;
  while (remaining > 1 && progress) {
    progress = false;
    for (std::size_t e = 0; e < vertices.size() && remaining > 1; ++e) {
      if (removed[e]) continue;
      // Vertices of e shared with some other remaining subgoal.
      std::set<std::string> shared;
      for (const std::string& v : vertices[e]) {
        for (std::size_t other = 0; other < vertices.size(); ++other) {
          if (other == e || removed[other]) continue;
          if (vertices[other].contains(v)) {
            shared.insert(v);
            break;
          }
        }
      }
      // e is an ear iff some remaining witness w covers all shared
      // vertices.
      for (std::size_t w = 0; w < vertices.size(); ++w) {
        if (w == e || removed[w]) continue;
        bool covers = true;
        for (const std::string& v : shared) {
          if (!vertices[w].contains(v)) {
            covers = false;
            break;
          }
        }
        if (covers) {
          tree.ears.push_back(e);
          tree.parents.push_back(w);
          removed[e] = true;
          --remaining;
          progress = true;
          break;
        }
      }
    }
  }
  if (remaining != 1) return std::nullopt;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (!removed[i]) tree.root = i;
  }
  QF_CHECK(tree.ears.size() + 1 == vertices.size());
  return tree;
}

bool IsAcyclic(const ConjunctiveQuery& cq) {
  return BuildJoinTree(cq).has_value();
}

}  // namespace qf
