// Safety of extended conjunctive queries (paper §3.2–3.3, after [UW97]).
//
// A query is *safe* when
//   (1) every variable in the head appears in a non-negated, non-arithmetic
//       subgoal of the body;
//   (2) every variable in a negated subgoal appears in a non-negated,
//       non-arithmetic subgoal of the body;
//   (3) every variable in an arithmetic subgoal appears in a non-negated,
//       non-arithmetic subgoal of the body.
// Parameters are treated as variables for (2) and (3); they cannot appear
// in the head, so (1) does not concern them (§3.3).
//
// Only safe subgoal subsets may serve as a-priori filter subqueries: an
// unsafe subquery denotes an infinite relation and bounds nothing.
#ifndef QF_DATALOG_SAFETY_H_
#define QF_DATALOG_SAFETY_H_

#include <string>

#include "datalog/ast.h"

namespace qf {

// Returns true iff `cq` is safe. On failure, when `why` is non-null, an
// explanation naming the violated condition and the offending name is
// stored there.
bool IsSafe(const ConjunctiveQuery& cq, std::string* why = nullptr);

// A union query is safe iff every disjunct is safe (§3.4).
bool IsSafe(const UnionQuery& q, std::string* why = nullptr);

}  // namespace qf

#endif  // QF_DATALOG_SAFETY_H_
