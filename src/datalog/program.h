// Non-recursive Datalog programs defining *intermediate predicates*.
//
// The paper's Ex. 2.2 keeps to flocks whose bodies mention base relations
// only, noting: "To include patients with several diseases simultaneously,
// we would have to extend our query-flocks language to allow intermediate
// predicates (in particular, a predicate relating patients to the set of
// symptoms from all their diseases). That extension is feasible." This
// module is that extension: a set of parameter-free rules
//
//   explained(P,S) :- diagnoses(P,D) AND causes(D,S)
//
// validated to be safe and non-recursive, materialized bottom-up, and
// usable by flock queries and plans as ordinary predicates.
#ifndef QF_DATALOG_PROGRAM_H_
#define QF_DATALOG_PROGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace qf {

// A program is a list of rules; several rules with the same head name form
// a union view. Heads may use any distinct variables; bodies may use base
// predicates and other intermediate predicates, with negation and
// arithmetic, but no flock parameters (intermediates are data, not
// parametrized queries).
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<ConjunctiveQuery> rules)
      : rules_(std::move(rules)) {}

  const std::vector<ConjunctiveQuery>& rules() const { return rules_; }
  void AddRule(ConjunctiveQuery rule) { rules_.push_back(std::move(rule)); }
  bool empty() const { return rules_.empty(); }

  // Distinct head names, in definition order.
  std::vector<std::string> DefinedPredicates() const;

  // Checks every rule is safe, parameter-free, has distinct head
  // variables, and that the dependency graph between defined predicates is
  // acyclic (no recursion — §2 fixes a non-recursive language).
  Status Validate() const;

  // Defined predicates in an order where every rule's body mentions only
  // base predicates and previously listed intermediates. Fails like
  // Validate on cyclic programs.
  Result<std::vector<std::string>> TopologicalOrder() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> rules_;
};

// Parses a program: zero or more rules in the flock query syntax; unlike
// ParseQuery, rules may have different head names.
Result<Program> ParseProgram(std::string_view text);

}  // namespace qf

#endif  // QF_DATALOG_PROGRAM_H_
