// Parser for the paper's Datalog notation for flock queries, e.g.
//
//   answer(P) :-
//       exhibits(P,$s) AND
//       treatments(P,$m) AND
//       diagnoses(P,D) AND
//       NOT causes(D,$s)
//
// Conventions (standard Datalog, matching the paper's examples):
//   * identifiers starting with an uppercase letter are variables;
//   * $name is a flock parameter;
//   * numbers, 'quoted' / "quoted" strings, and lowercase identifiers in
//     argument positions are constants;
//   * AND or ',' separates subgoals; NOT negates a relational subgoal;
//   * arithmetic subgoals use < <= = != >= >;
//   * a union query is written as several rules with the same head name
//     and arity (Fig. 4); an optional '.' or ';' may terminate a rule;
//   * '#' and '//' start comments that run to end of line.
#ifndef QF_DATALOG_PARSER_H_
#define QF_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace qf {

// Parses one or more rules into a union query. Returns INVALID_ARGUMENT
// with a position-annotated message on malformed input, on head-name/arity
// mismatch between rules, or when a head argument is not a variable.
Result<UnionQuery> ParseQuery(std::string_view text);

// Parses exactly one rule.
Result<ConjunctiveQuery> ParseRule(std::string_view text);

// Parses one or more rules *without* requiring a shared head name — the
// form Datalog programs defining several intermediate predicates use
// (datalog/program.h).
Result<std::vector<ConjunctiveQuery>> ParseRules(std::string_view text);

}  // namespace qf

#endif  // QF_DATALOG_PARSER_H_
