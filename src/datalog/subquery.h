// Enumeration of the candidate filter subqueries of a query flock.
//
// The Optimization Principle for Conjunctive Queries (§3.1/§3.3): consider
// only the *safe* subqueries formed by deleting one or more subgoals from
// the flock's query. Each such subquery contains the original, so a
// parameter value whose subquery answer falls below the support threshold
// can never meet it in the full query — it may be pruned (the generalized
// a-priori trick).
#ifndef QF_DATALOG_SUBQUERY_H_
#define QF_DATALOG_SUBQUERY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace qf {

// One candidate subquery.
struct SubqueryCandidate {
  // Indices (ascending) into the original query's `subgoals` that the
  // subquery keeps.
  std::vector<std::size_t> kept;
  ConjunctiveQuery query;
  // Parameters mentioned by the kept subgoals — the parameter set this
  // subquery can prune.
  std::set<std::string> parameters;
};

struct SubqueryOptions {
  // Skip subqueries mentioning no parameter: they cannot prune anything.
  bool require_parameters = true;
  // Skip the improper subset (the query itself). The final plan step always
  // uses the full query; the *candidates* are the proper subsets.
  bool proper_only = true;
};

// Enumerates all safe subqueries of `cq` under `options`, in increasing
// bitmask order. `cq` must have at most 24 subgoals (the search is
// exponential; real flock queries are tiny — §4.3).
std::vector<SubqueryCandidate> EnumerateSafeSubqueries(
    const ConjunctiveQuery& cq, const SubqueryOptions& options = {});

// Enumerates safe subqueries whose parameter set is exactly `params`
// (heuristic 1 of §4.3 wants, per chosen parameter set S, subqueries with
// "exactly the parameters of S").
std::vector<SubqueryCandidate> EnumerateSafeSubqueriesForParameters(
    const ConjunctiveQuery& cq, const std::set<std::string>& params);

// Counts subsets of subgoals that are safe, over all 2^n - 2 nontrivial
// proper subsets (Ex. 3.2 reports 8 of 14 for the medical flock). Intended
// for tests and diagnostics.
std::size_t CountSafeNontrivialSubsets(const ConjunctiveQuery& cq);

}  // namespace qf

#endif  // QF_DATALOG_SUBQUERY_H_
