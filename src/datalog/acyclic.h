// Hypergraph acyclicity (GYO ear removal) and join trees for conjunctive
// queries. An acyclic CQ admits Yannakakis' full-reducer evaluation: two
// semi-join sweeps over the join tree remove every dangling tuple, after
// which the joins' intermediates never exceed what the output needs. This
// complements the paper's FILTER steps — both are semi-join-shaped
// reductions; FILTER steps prune *parameter values* by support, the full
// reducer prunes *tuples* by joinability.
#ifndef QF_DATALOG_ACYCLIC_H_
#define QF_DATALOG_ACYCLIC_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "datalog/ast.h"

namespace qf {

// A join tree over the positive subgoals of a query. `ears[k]` was removed
// at step k with witness/parent `parents[k]`; indices are positions in the
// query's positive-subgoal list. `root` is the last subgoal standing.
struct JoinTree {
  std::vector<std::size_t> ears;
  std::vector<std::size_t> parents;
  std::size_t root = 0;
};

// Runs GYO ear removal over the positive subgoals. Returns the join tree
// when the (positive part of the) query is alpha-acyclic, nullopt when it
// is cyclic (e.g. the triangle query). Queries with 0 positive subgoals
// yield nullopt; a single positive subgoal is trivially acyclic.
std::optional<JoinTree> BuildJoinTree(const ConjunctiveQuery& cq);

// True iff BuildJoinTree succeeds.
bool IsAcyclic(const ConjunctiveQuery& cq);

}  // namespace qf

#endif  // QF_DATALOG_ACYCLIC_H_
