// Conjunctive-query containment via containment mappings (paper §3.1, after
// Chandra–Merlin [CM77]).
//
// A containment mapping h from Q1 to Q2 maps Q1's variables to terms of Q2
// such that h is the identity on constants and parameters, h carries Q1's
// head onto Q2's head positionally, and h carries every subgoal of Q1 onto
// a subgoal of Q2 of the same kind. If such a mapping exists then
// Q2 ⊆ Q1 on every database.
//
// For *pure* conjunctive queries (positive relational subgoals only) the
// test is also complete: Q2 ⊆ Q1 iff a mapping exists. With negation or
// arithmetic the mapping test stays sound but is incomplete (§3.3 notes the
// general decision procedures are heavier); the paper sidesteps
// completeness by restricting candidate containers to subgoal subsets,
// which this module's SubsetContains certifies directly.
#ifndef QF_DATALOG_CONTAINMENT_H_
#define QF_DATALOG_CONTAINMENT_H_

#include <map>
#include <optional>
#include <string>

#include "datalog/ast.h"

namespace qf {

// A homomorphism: Q1-variable name -> Q2 term.
using ContainmentMapping = std::map<std::string, Term>;

// Searches for a containment mapping from `q1` onto `q2` (witnessing
// Q2 ⊆ Q1). Heads must have equal arity; otherwise no mapping exists.
std::optional<ContainmentMapping> FindContainmentMapping(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// True iff a containment mapping q1 -> q2 exists, i.e. q2 ⊆ q1 is
// certified. Complete for pure CQs; sound for extended CQs.
bool Contains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// True iff `q1` equals a subquery of `q2` obtained by deleting zero or more
// subgoals (identical head). This is the restricted container class the
// paper's optimization principle enumerates; it always implies q2 ⊆ q1.
bool SubsetContains(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace qf

#endif  // QF_DATALOG_CONTAINMENT_H_
