#include "datalog/minimize.h"

#include <vector>

#include "datalog/containment.h"
#include "datalog/safety.h"

namespace qf {

ConjunctiveQuery MinimizeQuery(const ConjunctiveQuery& cq) {
  ConjunctiveQuery current = cq;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < current.subgoals.size(); ++i) {
      // Only positive relational subgoals are candidates: removing a
      // negated or arithmetic subgoal changes semantics in ways the
      // mapping test is not complete for.
      if (!current.subgoals[i].is_positive()) continue;
      ConjunctiveQuery candidate = current;
      candidate.subgoals.erase(candidate.subgoals.begin() +
                               static_cast<std::ptrdiff_t>(i));
      // Deleting a subgoal always gives a containing query
      // (current ⊆ candidate); equivalence needs candidate ⊆ current.
      // Keep the result safe: an unsafe "equivalent" is useless to every
      // consumer downstream.
      if (IsSafe(candidate) && Contains(current, candidate)) {
        current = std::move(candidate);
        changed = true;
        break;  // restart: indices shifted
      }
    }
  }
  return current;
}

UnionQuery MinimizeQuery(const UnionQuery& query) {
  UnionQuery out;
  out.disjuncts.reserve(query.disjuncts.size());
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    out.disjuncts.push_back(MinimizeQuery(cq));
  }
  return out;
}

}  // namespace qf
