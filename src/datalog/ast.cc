#include "datalog/ast.h"

#include <tuple>

#include "common/check.h"

namespace qf {

// ---------------------------------------------------------------- Term ----

Term Term::Variable(std::string name) {
  QF_CHECK_MSG(!name.empty(), "variable name must be non-empty");
  Term t;
  t.kind_ = Kind::kVariable;
  t.name_ = std::move(name);
  return t;
}

Term Term::Parameter(std::string name) {
  QF_CHECK_MSG(!name.empty(), "parameter name must be non-empty");
  QF_CHECK_MSG(name[0] != '$', "parameter name excludes the '$' sigil");
  Term t;
  t.kind_ = Kind::kParameter;
  t.name_ = std::move(name);
  return t;
}

Term Term::Constant(Value value) {
  Term t;
  t.kind_ = Kind::kConstant;
  t.value_ = std::move(value);
  return t;
}

const std::string& Term::name() const {
  QF_CHECK_MSG(!is_constant(), "constants have no name");
  return name_;
}

const Value& Term::constant() const {
  QF_CHECK_MSG(is_constant(), "only constants carry a value");
  return value_;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return name_;
    case Kind::kParameter:
      return "$" + name_;
    case Kind::kConstant:
      if (value_.is_string()) return "'" + value_.AsString() + "'";
      return value_.ToString();
  }
  return "";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.kind_ == Term::Kind::kConstant) return a.value_ == b.value_;
  return a.name_ == b.name_;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  if (a.kind_ == Term::Kind::kConstant) return a.value_ < b.value_;
  return a.name_ < b.name_;
}

// ----------------------------------------------------------- CompareOp ----

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  switch (op) {
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a < b || a == b;
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return !(a == b);
    case CompareOp::kGe:
      return b < a || a == b;
    case CompareOp::kGt:
      return b < a;
  }
  return false;
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kGt:
      return CompareOp::kLt;
  }
  return op;
}

// ------------------------------------------------------------- Subgoal ----

Subgoal Subgoal::Positive(std::string predicate, std::vector<Term> args) {
  QF_CHECK_MSG(!predicate.empty(), "predicate name must be non-empty");
  Subgoal s;
  s.kind_ = Kind::kPositive;
  s.predicate_ = std::move(predicate);
  s.args_ = std::move(args);
  return s;
}

Subgoal Subgoal::Negated(std::string predicate, std::vector<Term> args) {
  Subgoal s = Positive(std::move(predicate), std::move(args));
  s.kind_ = Kind::kNegated;
  return s;
}

Subgoal Subgoal::Comparison(Term lhs, CompareOp op, Term rhs) {
  Subgoal s;
  s.kind_ = Kind::kComparison;
  s.args_ = {std::move(lhs), std::move(rhs)};
  s.op_ = op;
  return s;
}

const std::string& Subgoal::predicate() const {
  QF_CHECK(is_relational());
  return predicate_;
}

const std::vector<Term>& Subgoal::args() const {
  QF_CHECK(is_relational());
  return args_;
}

const Term& Subgoal::lhs() const {
  QF_CHECK(is_comparison());
  return args_[0];
}

const Term& Subgoal::rhs() const {
  QF_CHECK(is_comparison());
  return args_[1];
}

CompareOp Subgoal::op() const {
  QF_CHECK(is_comparison());
  return op_;
}

std::string Subgoal::ToString() const {
  if (is_comparison()) {
    return args_[0].ToString() + " " + std::string(CompareOpName(op_)) + " " +
           args_[1].ToString();
  }
  std::string out;
  if (is_negated()) out += "NOT ";
  out += predicate_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

bool operator==(const Subgoal& a, const Subgoal& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.is_comparison()) return a.op_ == b.op_ && a.args_ == b.args_;
  return a.predicate_ == b.predicate_ && a.args_ == b.args_;
}

// ---------------------------------------------------- ConjunctiveQuery ----

namespace {

void CollectNames(const Subgoal& s, Term::Kind kind,
                  std::set<std::string>& out) {
  for (const Term& t : s.terms()) {
    if (t.kind() == kind) out.insert(t.name());
  }
}

}  // namespace

std::set<std::string> ConjunctiveQuery::Parameters() const {
  std::set<std::string> out;
  for (const Subgoal& s : subgoals) {
    CollectNames(s, Term::Kind::kParameter, out);
  }
  return out;
}

std::set<std::string> ConjunctiveQuery::Variables() const {
  std::set<std::string> out;
  for (const Subgoal& s : subgoals) {
    CollectNames(s, Term::Kind::kVariable, out);
  }
  for (const std::string& v : head_vars) out.insert(v);
  return out;
}

ConjunctiveQuery ConjunctiveQuery::Subquery(
    const std::vector<std::size_t>& keep) const {
  ConjunctiveQuery out;
  out.head_name = head_name;
  out.head_vars = head_vars;
  out.subgoals.reserve(keep.size());
  for (std::size_t i : keep) {
    QF_CHECK(i < subgoals.size());
    out.subgoals.push_back(subgoals[i]);
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = head_name + "(";
  for (std::size_t i = 0; i < head_vars.size(); ++i) {
    if (i > 0) out += ",";
    out += head_vars[i];
  }
  out += ") :- ";
  for (std::size_t i = 0; i < subgoals.size(); ++i) {
    if (i > 0) out += " AND ";
    out += subgoals[i].ToString();
  }
  return out;
}

bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return a.head_name == b.head_name && a.head_vars == b.head_vars &&
         a.subgoals == b.subgoals;
}

// ---------------------------------------------------------- UnionQuery ----

std::size_t UnionQuery::head_arity() const {
  QF_CHECK_MSG(!disjuncts.empty(), "empty union query");
  return disjuncts.front().head_vars.size();
}

const std::string& UnionQuery::head_name() const {
  QF_CHECK_MSG(!disjuncts.empty(), "empty union query");
  return disjuncts.front().head_name;
}

std::set<std::string> UnionQuery::Parameters() const {
  std::set<std::string> out;
  for (const ConjunctiveQuery& cq : disjuncts) {
    std::set<std::string> p = cq.Parameters();
    out.insert(p.begin(), p.end());
  }
  return out;
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += "\n";
    out += disjuncts[i].ToString();
  }
  return out;
}

bool operator==(const UnionQuery& a, const UnionQuery& b) {
  return a.disjuncts == b.disjuncts;
}

// ------------------------------------------------------- Substitution ----

namespace {

Term SubstituteTerm(const Term& t,
                    const std::map<std::string, Value>& bindings) {
  if (!t.is_parameter()) return t;
  auto it = bindings.find(t.name());
  if (it == bindings.end()) return t;
  return Term::Constant(it->second);
}

Subgoal SubstituteSubgoal(const Subgoal& s,
                          const std::map<std::string, Value>& bindings) {
  if (s.is_comparison()) {
    return Subgoal::Comparison(SubstituteTerm(s.lhs(), bindings), s.op(),
                               SubstituteTerm(s.rhs(), bindings));
  }
  std::vector<Term> args;
  args.reserve(s.args().size());
  for (const Term& t : s.args()) args.push_back(SubstituteTerm(t, bindings));
  return s.is_negated() ? Subgoal::Negated(s.predicate(), std::move(args))
                        : Subgoal::Positive(s.predicate(), std::move(args));
}

}  // namespace

ConjunctiveQuery SubstituteParameters(
    const ConjunctiveQuery& cq, const std::map<std::string, Value>& bindings) {
  ConjunctiveQuery out;
  out.head_name = cq.head_name;
  out.head_vars = cq.head_vars;
  out.subgoals.reserve(cq.subgoals.size());
  for (const Subgoal& s : cq.subgoals) {
    out.subgoals.push_back(SubstituteSubgoal(s, bindings));
  }
  return out;
}

UnionQuery SubstituteParameters(const UnionQuery& q,
                                const std::map<std::string, Value>& bindings) {
  UnionQuery out;
  out.disjuncts.reserve(q.disjuncts.size());
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    out.disjuncts.push_back(SubstituteParameters(cq, bindings));
  }
  return out;
}

}  // namespace qf
