// Abstract syntax for the query-flocks language of the paper (§2):
// unions of *extended conjunctive queries* — conjunctive queries plus
// negated subgoals and arithmetic subgoals — whose argument positions may
// hold variables, constants, or flock *parameters* ($-names).
//
// A query flock pairs one of these queries with a filter condition; see
// flocks/flock.h. The paper's Datalog notation is produced by ToString()
// and consumed by datalog/parser.h.
#ifndef QF_DATALOG_AST_H_
#define QF_DATALOG_AST_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "relational/value.h"

namespace qf {

// One argument position: a variable (scoped to one conjunctive query), a
// flock parameter (scoped to the whole flock; printed with a leading '$'),
// or a constant.
class Term {
 public:
  enum class Kind { kVariable, kParameter, kConstant };

  static Term Variable(std::string name);
  // `name` excludes the '$' sigil.
  static Term Parameter(std::string name);
  static Term Constant(Value value);

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_parameter() const { return kind_ == Kind::kParameter; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  // Name of a variable or parameter (no sigil); aborts for constants.
  const std::string& name() const;
  // Value of a constant; aborts otherwise.
  const Value& constant() const;

  // Variables render as their name, parameters as "$name", constants as
  // literals (symbols quoted).
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator<(const Term& a, const Term& b);

 private:
  Term() = default;
  Kind kind_ = Kind::kVariable;
  std::string name_;
  Value value_;
};

// Comparison operators for arithmetic subgoals.
enum class CompareOp { kLt, kLe, kEq, kNe, kGe, kGt };

std::string_view CompareOpName(CompareOp op);  // "<", "<=", "=", "!=", ...

// Evaluates `a op b` under the total order on Values.
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

// Flips the operator across the comparison: a op b  <=>  b Flip(op) a.
CompareOp FlipCompareOp(CompareOp op);

// One subgoal of an extended conjunctive query: a positive relational
// subgoal p(t1,...,tk), a negated one NOT p(t1,...,tk), or an arithmetic
// subgoal t1 op t2.
class Subgoal {
 public:
  enum class Kind { kPositive, kNegated, kComparison };

  static Subgoal Positive(std::string predicate, std::vector<Term> args);
  static Subgoal Negated(std::string predicate, std::vector<Term> args);
  static Subgoal Comparison(Term lhs, CompareOp op, Term rhs);

  Kind kind() const { return kind_; }
  bool is_positive() const { return kind_ == Kind::kPositive; }
  bool is_negated() const { return kind_ == Kind::kNegated; }
  bool is_comparison() const { return kind_ == Kind::kComparison; }
  bool is_relational() const { return !is_comparison(); }

  // Relational accessors; abort for comparisons.
  const std::string& predicate() const;
  const std::vector<Term>& args() const;

  // Comparison accessors; abort for relational subgoals.
  const Term& lhs() const;
  const Term& rhs() const;
  CompareOp op() const;

  // All terms appearing in the subgoal (args, or {lhs, rhs}).
  const std::vector<Term>& terms() const { return args_; }

  std::string ToString() const;

  friend bool operator==(const Subgoal& a, const Subgoal& b);

 private:
  Subgoal() = default;
  Kind kind_ = Kind::kPositive;
  std::string predicate_;
  std::vector<Term> args_;  // for comparisons: {lhs, rhs}
  CompareOp op_ = CompareOp::kEq;
};

// An extended conjunctive query:
//   head_name(head_vars) :- subgoal AND subgoal AND ...
// Head arguments are variables (parameters may not appear in the head —
// §3.3 — and constants would be pointless there).
struct ConjunctiveQuery {
  std::string head_name = "answer";
  std::vector<std::string> head_vars;
  std::vector<Subgoal> subgoals;

  // Sorted distinct names of parameters / variables appearing anywhere in
  // the body.
  std::set<std::string> Parameters() const;
  std::set<std::string> Variables() const;

  // The subquery keeping exactly the subgoals whose indices are in `keep`
  // (same head). Indices must be valid.
  ConjunctiveQuery Subquery(const std::vector<std::size_t>& keep) const;

  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b);
};

// A union of extended conjunctive queries (§3.4). All disjuncts must share
// the head name and head arity; head variable *names* may differ between
// disjuncts (cf. Fig. 4: answer(D) vs. answer(A)).
struct UnionQuery {
  std::vector<ConjunctiveQuery> disjuncts;

  explicit UnionQuery(std::vector<ConjunctiveQuery> ds = {})
      : disjuncts(std::move(ds)) {}
  // Convenience: a single-disjunct union.
  explicit UnionQuery(ConjunctiveQuery cq) { disjuncts.push_back(std::move(cq)); }

  std::size_t head_arity() const;
  const std::string& head_name() const;

  // Union of the disjuncts' parameter sets. (A well-formed flock's
  // disjuncts mention the same parameters; see Validate in flocks/flock.h.)
  std::set<std::string> Parameters() const;

  std::string ToString() const;

  friend bool operator==(const UnionQuery& a, const UnionQuery& b);
};

// Replaces each parameter named in `bindings` with the bound constant.
// Parameters absent from `bindings` are left in place. This realizes the
// paper's semantics of "trying an assignment of values for the parameters".
ConjunctiveQuery SubstituteParameters(
    const ConjunctiveQuery& cq, const std::map<std::string, Value>& bindings);
UnionQuery SubstituteParameters(const UnionQuery& q,
                                const std::map<std::string, Value>& bindings);

}  // namespace qf

#endif  // QF_DATALOG_AST_H_
