#include "relational/value.h"

#include <cstdio>
#include <functional>

#include "common/hash.h"

namespace qf {

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      // Keep the double-ness visible (and TSV round-trippable): "1" -> "1.0".
      std::string s = buf;
      if (s.find_first_of(".einEIN") == std::string::npos) s += ".0";
      return s;
    }
    case Kind::kString:
      return AsString();
  }
  return "";
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) <=> static_cast<int>(b.kind());
  }
  switch (a.kind()) {
    case Value::Kind::kInt:
      return a.AsInt() <=> b.AsInt();
    case Value::Kind::kDouble:
      return std::strong_order(a.AsDouble(), b.AsDouble());
    case Value::Kind::kString:
      return a.AsString().compare(b.AsString()) <=> 0;
  }
  return std::strong_ordering::equal;
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(kind());
  switch (kind()) {
    case Kind::kInt:
      return HashValueInto(seed, AsInt());
    case Kind::kDouble: {
      // Hash the numeric value consistently with equality (0.0 == -0.0).
      double d = AsDouble();
      if (d == 0.0) d = 0.0;
      return HashValueInto(seed, d);
    }
    case Kind::kString:
      // Interned: hashing the canonical pointer is consistent with
      // pointer-based equality and far cheaper than hashing bytes.
      return HashValueInto(
          seed, reinterpret_cast<std::uintptr_t>(&AsString()));
  }
  return seed;
}

}  // namespace qf
