#include "relational/ops.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/flat_hash.h"
#include "common/thread_pool.h"

namespace qf {
namespace {

// Column indices in `a` and `b` of the columns they share (by name), plus
// the indices of b's non-shared columns.
struct JoinLayout {
  std::vector<std::size_t> a_key;
  std::vector<std::size_t> b_key;
  std::vector<std::size_t> b_rest;
};

JoinLayout ComputeJoinLayout(const Relation& a, const Relation& b) {
  JoinLayout layout;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    std::optional<std::size_t> i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      layout.a_key.push_back(*i);
      layout.b_key.push_back(j);
    } else {
      layout.b_rest.push_back(j);
    }
  }
  return layout;
}

// The flat-hash kernels address rows by 32-bit refs.
void CheckRefRange(std::size_t rows) {
  QF_CHECK_MSG(rows < 0xFFFFFFFFull,
               "flat-hash kernels address at most 2^32-1 rows");
}

// Builds the join hash index over `rel`'s `key` columns: key columns are
// hashed/compared in place on the stored rows, so no key Tuple is ever
// materialized. Slot probes accumulate into `probes`.
FlatKeyIndex BuildFlatIndex(const Relation& rel, const KeyCols& key,
                            std::uint64_t& probes) {
  CheckRefRange(rel.size());
  FlatKeyIndex index;
  index.Reserve(rel.size());
  const std::vector<Tuple>& rows = rel.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Tuple& t = rows[r];
    index.AddRow(
        static_cast<std::uint32_t>(r), key.Hash(t),
        [&](std::uint32_t prev) { return key.Eq(t, rows[prev]); }, probes);
  }
  index.Finalize();
  return index;
}

Schema JoinedSchema(const Relation& a, const Relation& b,
                    const JoinLayout& layout) {
  std::vector<std::string> columns = a.schema().columns();
  for (std::size_t j : layout.b_rest) columns.push_back(b.schema().column(j));
  return Schema(std::move(columns));
}

}  // namespace

Relation Project(const Relation& rel,
                 const std::vector<std::string>& columns,
                 OpMetrics* metrics, QueryContext* ctx) {
  std::vector<std::size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& c : columns) {
    indices.push_back(rel.schema().IndexOfOrDie(c));
  }
  Relation out{Schema(columns)};
  CheckRefRange(rel.size());
  KeyCols key(indices, rel.arity());
  // Dedup rows by their projected columns in place — the projection is
  // materialized only for rows that survive.
  FlatTupleSet seen;
  seen.Reserve(rel.size());
  std::uint64_t probes = 0;
  OpGovernor gov(ctx, ApproxTupleBytes(columns.size()));
  const std::vector<Tuple>& rows = rel.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!gov.TickInput()) break;
    const Tuple& t = rows[r];
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(r), key.Hash(t),
        [&](std::uint32_t prev) { return key.Eq(t, rows[prev]); }, probes);
    if (fresh) {
      if (!gov.Admit()) break;
      out.Add(key.Extract(t));
    }
  }
  gov.Flush();
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += probes;  // dedup-set slot probes
    metrics->mem_bytes += gov.total_bytes();
  }
  return out;
}

Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred,
                OpMetrics* metrics, QueryContext* ctx) {
  Relation out(rel.schema());
  OpGovernor gov(ctx, ApproxTupleBytes(rel.arity()));
  for (const Tuple& t : rel.rows()) {
    if (!gov.TickInput()) break;
    if (pred(t)) {
      if (!gov.Admit()) break;
      out.Add(t);
    }
  }
  gov.Flush();
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
    metrics->mem_bytes += gov.total_bytes();
  }
  return out;
}

Relation Rename(const Relation& rel, std::vector<std::string> new_names) {
  QF_CHECK_MSG(new_names.size() == rel.arity(), "Rename arity mismatch");
  Relation out(Schema(std::move(new_names)));
  for (const Tuple& t : rel.rows()) out.Add(t);
  return out;
}

namespace {

// Shared counter bookkeeping for the hash-join variants: row counters are
// identical whichever execution path produced `out`, so serial and
// parallel joins report the same numbers for the same inputs.
void RecordJoinMetrics(OpMetrics* metrics, const Relation& a,
                       const Relation& b, const Relation& out,
                       std::uint64_t probes) {
  if (metrics == nullptr) return;
  metrics->rows_in += a.size();
  metrics->rows_in_right += b.size();
  metrics->rows_out += out.size();
  // Hash-table slot probes across the build and probe phases (zero when
  // an empty input short-circuits both). The build index and per-row
  // probe paths are identical at every thread count, so the count is
  // thread-invariant.
  metrics->tuples_probed += probes;
}

}  // namespace

Relation NaturalJoin(const Relation& a, const Relation& b,
                     OpMetrics* metrics, QueryContext* ctx) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  // Build the hash index on the smaller input; probe with the other. The
  // output layout is fixed (a's columns then b's extras) either way.
  Relation out(JoinedSchema(a, b, layout));
  if (a.empty() || b.empty()) {
    RecordJoinMetrics(metrics, a, b, out, 0);
    return out;
  }
  KeyCols a_key(layout.a_key, a.arity());
  KeyCols b_key(layout.b_key, b.arity());
  std::uint64_t probes = 0;
  FlatKeyIndex index = BuildFlatIndex(b, b_key, probes);
  OpGovernor gov(ctx, ApproxTupleBytes(out.arity()));
  bool live = true;
  for (const Tuple& ta : a.rows()) {
    if (!live || !gov.TickInput()) break;
    FlatKeyIndex::Span span = index.Probe(
        a_key.Hash(ta),
        [&](std::uint32_t rb) {
          return a_key.EqAcross(ta, b_key, b.rows()[rb]);
        },
        probes);
    for (const std::uint32_t* p = span.begin; p != span.end; ++p) {
      if (!gov.Admit()) {
        live = false;
        break;
      }
      Tuple combined = ta;
      const Tuple& tb = b.rows()[*p];
      for (std::size_t j : layout.b_rest) combined.push_back(tb[j]);
      out.Add(std::move(combined));
    }
  }
  gov.Flush();
  RecordJoinMetrics(metrics, a, b, out, probes);
  if (metrics != nullptr) metrics->mem_bytes += gov.total_bytes();
  return out;
}

Relation ParallelNaturalJoin(const Relation& a, const Relation& b,
                             unsigned threads, OpMetrics* metrics,
                             QueryContext* ctx) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  // Probe-side morsel size. Fixed — never derived from `threads` — so the
  // morsel decomposition, and with it the output row order, is a function
  // of the inputs alone.
  constexpr std::size_t kMorselRows = 4096;
  if (threads <= 1 || layout.a_key.empty() || a.size() < 2 * kMorselRows ||
      b.empty()) {
    return NaturalJoin(a, b, metrics, ctx);
  }

  // Shared read-only build index over b (finalized before any probe, so
  // cross-thread sharing is safe); morsels of a probe it on the pool,
  // each into its own buffer with its own slot-probe counter. Each morsel
  // owns an OpGovernor: workers test the context latch at morsel start
  // and unwind their morsel early once any failure latches.
  KeyCols a_key(layout.a_key, a.arity());
  KeyCols b_key(layout.b_key, b.arity());
  std::uint64_t probes = 0;
  FlatKeyIndex index = BuildFlatIndex(b, b_key, probes);
  const std::size_t out_arity = a.arity() + layout.b_rest.size();
  std::vector<std::vector<Tuple>> outputs(MorselCount(a.size(), kMorselRows));
  std::vector<std::uint64_t> morsel_probes(outputs.size(), 0);
  std::vector<std::uint64_t> morsel_bytes(outputs.size(), 0);
  ParallelFor(threads, a.size(), kMorselRows,
              [&](std::size_t begin, std::size_t end) {
                if (ctx != nullptr && !ctx->Poll()) return;
                std::vector<Tuple>& out = outputs[begin / kMorselRows];
                std::uint64_t& local_probes =
                    morsel_probes[begin / kMorselRows];
                OpGovernor gov(ctx, ApproxTupleBytes(out_arity));
                bool live = true;
                for (std::size_t r = begin; live && r < end; ++r) {
                  if (!gov.TickInput()) break;
                  const Tuple& ta = a.rows()[r];
                  FlatKeyIndex::Span span = index.Probe(
                      a_key.Hash(ta),
                      [&](std::uint32_t rb) {
                        return a_key.EqAcross(ta, b_key, b.rows()[rb]);
                      },
                      local_probes);
                  for (const std::uint32_t* p = span.begin; p != span.end;
                       ++p) {
                    if (!gov.Admit()) {
                      live = false;
                      break;
                    }
                    Tuple combined = ta;
                    const Tuple& tb = b.rows()[*p];
                    for (std::size_t j : layout.b_rest) {
                      combined.push_back(tb[j]);
                    }
                    out.push_back(std::move(combined));
                  }
                }
                gov.Flush();
                morsel_bytes[begin / kMorselRows] = gov.total_bytes();
              });
  for (std::uint64_t p : morsel_probes) probes += p;

  // Concatenate in morsel order: morsels cover a's rows in index order and
  // each morsel emits matches in probe order, so the result row order
  // equals the serial NaturalJoin's.
  Relation out(JoinedSchema(a, b, layout));
  std::size_t total = 0;
  for (const auto& part : outputs) total += part.size();
  out.mutable_rows().reserve(total);
  for (auto& part : outputs) {
    for (Tuple& t : part) out.mutable_rows().push_back(std::move(t));
  }
  RecordJoinMetrics(metrics, a, b, out, probes);
  if (metrics != nullptr) {
    metrics->morsels += outputs.size();
    for (std::uint64_t mb : morsel_bytes) metrics->mem_bytes += mb;
  }
  return out;
}

Relation SortMergeJoin(const Relation& a, const Relation& b) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  Relation out(JoinedSchema(a, b, layout));
  if (a.empty() || b.empty()) return out;
  if (layout.a_key.empty()) return NaturalJoin(a, b);  // cross product

  // Sort row indices of both sides by their key projections.
  auto make_order = [](const Relation& rel,
                       const std::vector<std::size_t>& key) {
    std::vector<std::size_t> order(rel.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&rel, &key](std::size_t x, std::size_t y) {
                for (std::size_t k : key) {
                  const Value& vx = rel.rows()[x][k];
                  const Value& vy = rel.rows()[y][k];
                  if (vx < vy) return true;
                  if (vy < vx) return false;
                }
                return false;
              });
    return order;
  };
  std::vector<std::size_t> oa = make_order(a, layout.a_key);
  std::vector<std::size_t> ob = make_order(b, layout.b_key);

  auto compare_keys = [&](std::size_t ia, std::size_t ib) {
    for (std::size_t k = 0; k < layout.a_key.size(); ++k) {
      const Value& va = a.rows()[ia][layout.a_key[k]];
      const Value& vb = b.rows()[ib][layout.b_key[k]];
      if (va < vb) return -1;
      if (vb < va) return 1;
    }
    return 0;
  };

  std::size_t i = 0, j = 0;
  while (i < oa.size() && j < ob.size()) {
    int cmp = compare_keys(oa[i], ob[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Emit the run x run block of equal keys.
      std::size_t i_end = i;
      while (i_end + 1 < oa.size() &&
             compare_keys(oa[i_end + 1], ob[j]) == 0) {
        ++i_end;
      }
      std::size_t j_end = j;
      while (j_end + 1 < ob.size() &&
             compare_keys(oa[i], ob[j_end + 1]) == 0) {
        ++j_end;
      }
      for (std::size_t x = i; x <= i_end; ++x) {
        for (std::size_t y = j; y <= j_end; ++y) {
          Tuple combined = a.rows()[oa[x]];
          const Tuple& tb = b.rows()[ob[y]];
          for (std::size_t r : layout.b_rest) combined.push_back(tb[r]);
          out.Add(std::move(combined));
        }
      }
      i = i_end + 1;
      j = j_end + 1;
    }
  }
  return out;
}

namespace {

void RecordSemiAntiMetrics(OpMetrics* metrics, const Relation& a,
                           const Relation& b, std::size_t rows_out,
                           std::uint64_t probes) {
  if (metrics == nullptr) return;
  metrics->rows_in += a.size();
  metrics->rows_in_right += b.size();
  metrics->rows_out += rows_out;
  metrics->tuples_probed += probes;  // key-set slot probes (build + probe)
}

// Shared core of SemiJoin/AntiJoin: builds the flat set of b's key
// tuples (hashed in place) and keeps the a rows whose key membership
// equals `keep_present`.
Relation SemiAntiJoin(const Relation& a, const Relation& b,
                      bool keep_present, bool empty_key_keeps_a,
                      OpMetrics* metrics, QueryContext* ctx) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  Relation out(a.schema());
  out.set_name(a.name());
  if (layout.a_key.empty()) {
    // No shared columns: b acts as a boolean guard, nothing is probed.
    const Relation& result = (b.empty() == empty_key_keeps_a) ? a : out;
    RecordSemiAntiMetrics(metrics, a, b, result.size(), 0);
    return result;
  }
  CheckRefRange(b.size());
  KeyCols a_key(layout.a_key, a.arity());
  KeyCols b_key(layout.b_key, b.arity());
  FlatTupleSet keys;
  keys.Reserve(b.size());
  std::uint64_t probes = 0;
  const std::vector<Tuple>& b_rows = b.rows();
  for (std::size_t r = 0; r < b_rows.size(); ++r) {
    const Tuple& tb = b_rows[r];
    keys.Insert(
        static_cast<std::uint32_t>(r), b_key.Hash(tb),
        [&](std::uint32_t prev) { return b_key.Eq(tb, b_rows[prev]); },
        probes);
  }
  OpGovernor gov(ctx, ApproxTupleBytes(a.arity()));
  for (const Tuple& ta : a.rows()) {
    if (!gov.TickInput()) break;
    bool present = keys.Contains(
        a_key.Hash(ta),
        [&](std::uint32_t rb) {
          return a_key.EqAcross(ta, b_key, b_rows[rb]);
        },
        probes);
    if (present == keep_present) {
      if (!gov.Admit()) break;
      out.Add(ta);
    }
  }
  gov.Flush();
  RecordSemiAntiMetrics(metrics, a, b, out.size(), probes);
  if (metrics != nullptr) metrics->mem_bytes += gov.total_bytes();
  return out;
}

}  // namespace

Relation SemiJoin(const Relation& a, const Relation& b, OpMetrics* metrics,
                  QueryContext* ctx) {
  return SemiAntiJoin(a, b, /*keep_present=*/true,
                      /*empty_key_keeps_a=*/false, metrics, ctx);
}

Relation AntiJoin(const Relation& a, const Relation& b, OpMetrics* metrics,
                  QueryContext* ctx) {
  return SemiAntiJoin(a, b, /*keep_present=*/false,
                      /*empty_key_keeps_a=*/true, metrics, ctx);
}

Relation Union(const Relation& a, const Relation& b, OpMetrics* metrics,
               QueryContext* ctx) {
  QF_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  Relation out(a.schema());
  CheckRefRange(a.size() + b.size());
  // One dedup set over both inputs; refs < a.size() name a's rows, the
  // rest name b's (offset by a.size()).
  auto row_of = [&](std::uint32_t ref) -> const Tuple& {
    return ref < a.size() ? a.rows()[ref] : b.rows()[ref - a.size()];
  };
  TupleHash hash;
  FlatTupleSet seen;
  seen.Reserve(a.size() + b.size());
  std::uint64_t probes = 0;
  OpGovernor gov(ctx, ApproxTupleBytes(a.arity()));
  bool live = true;
  for (std::size_t r = 0; live && r < a.size(); ++r) {
    if (!gov.TickInput()) break;
    const Tuple& t = a.rows()[r];
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(r), hash(t),
        [&](std::uint32_t prev) { return row_of(prev) == t; }, probes);
    if (fresh) {
      if (!gov.Admit()) {
        live = false;
        break;
      }
      out.Add(t);
    }
  }
  for (std::size_t r = 0; live && r < b.size(); ++r) {
    if (!gov.TickInput()) break;
    const Tuple& t = b.rows()[r];
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(a.size() + r), hash(t),
        [&](std::uint32_t prev) { return row_of(prev) == t; }, probes);
    if (fresh) {
      if (!gov.Admit()) break;
      out.Add(t);
    }
  }
  gov.Flush();
  if (metrics != nullptr) {
    metrics->rows_in += a.size();
    metrics->rows_in_right += b.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += probes;  // dedup-set slot probes
    metrics->mem_bytes += gov.total_bytes();
  }
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  QF_CHECK_MSG(a.arity() == b.arity(), "Difference arity mismatch");
  CheckRefRange(b.size());
  TupleHash hash;
  FlatTupleSet exclude;
  exclude.Reserve(b.size());
  std::uint64_t probes = 0;
  const std::vector<Tuple>& b_rows = b.rows();
  for (std::size_t r = 0; r < b_rows.size(); ++r) {
    const Tuple& t = b_rows[r];
    exclude.Insert(
        static_cast<std::uint32_t>(r), hash(t),
        [&](std::uint32_t prev) { return b_rows[prev] == t; }, probes);
  }
  Relation out(a.schema());
  for (const Tuple& t : a.rows()) {
    bool present = exclude.Contains(
        hash(t), [&](std::uint32_t rb) { return b_rows[rb] == t; }, probes);
    if (!present) out.Add(t);
  }
  return out;
}

Relation Distinct(const Relation& rel) {
  Relation out = rel;
  out.Dedup();
  return out;
}

namespace {

struct Accumulator {
  std::int64_t count = 0;
  double sum = 0;
  bool has_extreme = false;
  Value extreme;
};

void AccumulateRow(Accumulator& acc, AggKind kind, const Tuple& t,
                   std::size_t agg_idx) {
  switch (kind) {
    case AggKind::kCount:
      acc.count += 1;
      break;
    case AggKind::kSum:
      QF_CHECK_MSG(t[agg_idx].IsNumeric(), "SUM over non-numeric value");
      acc.sum += t[agg_idx].AsNumber();
      break;
    case AggKind::kMin:
      if (!acc.has_extreme || t[agg_idx] < acc.extreme) {
        acc.extreme = t[agg_idx];
        acc.has_extreme = true;
      }
      break;
    case AggKind::kMax:
      if (!acc.has_extreme || acc.extreme < t[agg_idx]) {
        acc.extreme = t[agg_idx];
        acc.has_extreme = true;
      }
      break;
  }
}

void MergeAccumulator(Accumulator& into, const Accumulator& from,
                      AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      into.count += from.count;
      break;
    case AggKind::kSum:
      into.sum += from.sum;
      break;
    case AggKind::kMin:
      if (!into.has_extreme ||
          (from.has_extreme && from.extreme < into.extreme)) {
        into = from;
      }
      break;
    case AggKind::kMax:
      if (!into.has_extreme ||
          (from.has_extreme && into.extreme < from.extreme)) {
        into = from;
      }
      break;
  }
}

Tuple FinishGroup(Tuple row, const Accumulator& acc, AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      row.push_back(Value(acc.count));
      break;
    case AggKind::kSum:
      row.push_back(Value(acc.sum));
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      row.push_back(acc.extreme);
      break;
  }
  return row;
}

struct GroupLayout {
  std::vector<std::size_t> group_idx;
  std::size_t agg_idx = 0;
};

GroupLayout ComputeGroupLayout(const Relation& rel,
                               const std::vector<std::string>& group_columns,
                               AggKind kind, const std::string& agg_column) {
  GroupLayout layout;
  layout.group_idx.reserve(group_columns.size());
  for (const std::string& c : group_columns) {
    layout.group_idx.push_back(rel.schema().IndexOfOrDie(c));
  }
  if (kind != AggKind::kCount) {
    layout.agg_idx = rel.schema().IndexOfOrDie(agg_column);
  }
  return layout;
}

// Flat grouping state: group keys are the group columns of rel's rows,
// hashed/compared in place (identity fast path when the group columns
// are the whole row); accumulators live in a dense vector indexed by
// group id. Shared by the serial kernel and each parallel morsel.
struct FlatGroups {
  FlatGroupTable table;
  std::vector<Accumulator> accs;

  // Upserts `rel.rows()[r]`'s group and returns its accumulator.
  Accumulator& Upsert(const std::vector<Tuple>& rows, std::size_t r,
                      const KeyCols& key, std::uint64_t& probes) {
    const Tuple& t = rows[r];
    auto [group, inserted] = table.Upsert(
        static_cast<std::uint32_t>(r), key.Hash(t),
        [&](std::uint32_t prev) { return key.Eq(t, rows[prev]); }, probes);
    if (inserted) accs.emplace_back();
    return accs[group];
  }
};

// Emits one output row per group (key columns of the representative row
// + the finished aggregate), then sorts: group keys are unique, so the
// lexicographic order is total and the row order is independent of any
// hash-table layout.
Relation FinishGroups(const Relation& rel, const FlatGroups& groups,
                      const KeyCols& key,
                      const std::vector<std::string>& group_columns,
                      AggKind kind, const std::string& output_column) {
  std::vector<std::string> out_columns = group_columns;
  out_columns.push_back(output_column);
  Relation out(Schema(std::move(out_columns)));
  out.mutable_rows().reserve(groups.accs.size());
  for (std::size_t g = 0; g < groups.accs.size(); ++g) {
    const Tuple& rep =
        rel.rows()[groups.table.ref_at(static_cast<std::uint32_t>(g))];
    out.Add(FinishGroup(key.Extract(rep), groups.accs[g], kind));
  }
  out.SortRows();
  return out;
}

}  // namespace

namespace {

void RecordGroupMetrics(OpMetrics* metrics, const Relation& rel,
                        std::size_t rows_out) {
  if (metrics == nullptr) return;
  metrics->rows_in += rel.size();
  metrics->rows_out += rows_out;
  metrics->tuples_probed += rel.size();  // one table upsert per input row
}

}  // namespace

namespace {

// Group outputs are charged in one post-hoc Charge (group count is only
// known at the end); the group *table* itself is unaccounted — a blow-up
// feeding an aggregate is caught where the feeding join materializes it.
std::uint64_t ChargeGroupOutput(QueryContext* ctx, const Relation& out) {
  if (ctx == nullptr) return 0;
  std::uint64_t bytes =
      static_cast<std::uint64_t>(out.size()) * ApproxTupleBytes(out.arity());
  ctx->Charge(bytes);
  return bytes;
}

}  // namespace

Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column,
                        OpMetrics* metrics, QueryContext* ctx) {
  GroupLayout layout =
      ComputeGroupLayout(rel, group_columns, kind, agg_column);
  CheckRefRange(rel.size());
  KeyCols key(layout.group_idx, rel.arity());
  FlatGroups groups;
  groups.table.Reserve(rel.size());
  groups.accs.reserve(rel.size());
  std::uint64_t probes = 0;
  OpGovernor gov(ctx, /*bytes_per_row=*/0);  // input-side polling only
  const std::vector<Tuple>& rows = rel.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!gov.TickInput()) break;
    AccumulateRow(groups.Upsert(rows, r, key, probes), kind, rows[r],
                  layout.agg_idx);
  }
  // Sorted output (see FinishGroups): the serial overload agrees
  // row-for-row with the parallel one at every thread count.
  Relation out =
      FinishGroups(rel, groups, key, group_columns, kind, output_column);
  std::uint64_t mem = ChargeGroupOutput(ctx, out);
  RecordGroupMetrics(metrics, rel, out.size());
  if (metrics != nullptr) metrics->mem_bytes += mem;
  return out;
}

Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column, unsigned threads,
                        OpMetrics* metrics, QueryContext* ctx) {
  GroupLayout layout =
      ComputeGroupLayout(rel, group_columns, kind, agg_column);
  CheckRefRange(rel.size());
  KeyCols key(layout.group_idx, rel.arity());
  const std::vector<Tuple>& rows = rel.rows();

  // Fixed morsel size: the decomposition (and therefore the association
  // order of floating-point SUM partials) depends only on the input, so
  // every `threads` value computes bit-identical aggregates.
  constexpr std::size_t kMorselRows = 2048;
  std::vector<FlatGroups> partials(MorselCount(rel.size(), kMorselRows));
  ParallelFor(threads, rel.size(), kMorselRows,
              [&](std::size_t begin, std::size_t end) {
                if (ctx != nullptr && !ctx->Poll()) return;
                FlatGroups& local = partials[begin / kMorselRows];
                local.table.Reserve(end - begin);
                local.accs.reserve(end - begin);
                std::uint64_t probes = 0;  // morsel-local; see below
                OpGovernor gov(ctx, /*bytes_per_row=*/0);
                for (std::size_t r = begin; r < end; ++r) {
                  if (!gov.TickInput()) break;
                  AccumulateRow(local.Upsert(rows, r, key, probes), kind,
                                rows[r], layout.agg_idx);
                }
              });

  // Merge thread-local tables in morsel order (deterministic). Each
  // group's stored hash is reused — the merge never re-hashes a key.
  // Copying the first partial's accumulator on insert (rather than
  // merging into a fresh one) keeps the per-group float association
  // exactly `(p0 + p1) + p2 ...` — the same at every thread count.
  FlatGroups groups;
  groups.table.Reserve(rel.size());
  std::uint64_t merge_probes = 0;
  for (FlatGroups& partial : partials) {
    for (std::size_t g = 0; g < partial.accs.size(); ++g) {
      std::uint32_t rep = partial.table.ref_at(static_cast<std::uint32_t>(g));
      const Tuple& t = rows[rep];
      auto [group, inserted] = groups.table.Upsert(
          rep, partial.table.hash_at(static_cast<std::uint32_t>(g)),
          [&](std::uint32_t prev) { return key.Eq(t, rows[prev]); },
          merge_probes);
      if (inserted) {
        groups.accs.push_back(partial.accs[g]);
      } else {
        MergeAccumulator(groups.accs[group], partial.accs[g], kind);
      }
    }
  }

  // Sorted output (see FinishGroups); row order is a pure function of
  // the input. tuples_probed stays "one upsert per input row" — slot
  // counts would differ between the serial and parallel table layouts,
  // and the metrics tree must be identical at every thread count.
  Relation out =
      FinishGroups(rel, groups, key, group_columns, kind, output_column);
  std::uint64_t mem = ChargeGroupOutput(ctx, out);
  RecordGroupMetrics(metrics, rel, out.size());
  if (metrics != nullptr) {
    metrics->morsels += partials.size();
    metrics->mem_bytes += mem;
  }
  return out;
}

}  // namespace qf
