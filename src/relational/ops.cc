#include "relational/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace qf {
namespace {

// Column indices in `a` and `b` of the columns they share (by name), plus
// the indices of b's non-shared columns.
struct JoinLayout {
  std::vector<std::size_t> a_key;
  std::vector<std::size_t> b_key;
  std::vector<std::size_t> b_rest;
};

JoinLayout ComputeJoinLayout(const Relation& a, const Relation& b) {
  JoinLayout layout;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    std::optional<std::size_t> i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      layout.a_key.push_back(*i);
      layout.b_key.push_back(j);
    } else {
      layout.b_rest.push_back(j);
    }
  }
  return layout;
}

// Hash index: key tuple -> indices of matching rows.
using RowIndex =
    std::unordered_map<Tuple, std::vector<std::size_t>, TupleHash>;

RowIndex BuildIndex(const Relation& rel, const std::vector<std::size_t>& key) {
  RowIndex index;
  index.reserve(rel.size());
  for (std::size_t r = 0; r < rel.size(); ++r) {
    index[ProjectTuple(rel.rows()[r], key)].push_back(r);
  }
  return index;
}

Schema JoinedSchema(const Relation& a, const Relation& b,
                    const JoinLayout& layout) {
  std::vector<std::string> columns = a.schema().columns();
  for (std::size_t j : layout.b_rest) columns.push_back(b.schema().column(j));
  return Schema(std::move(columns));
}

}  // namespace

Relation Project(const Relation& rel,
                 const std::vector<std::string>& columns,
                 OpMetrics* metrics) {
  std::vector<std::size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& c : columns) {
    indices.push_back(rel.schema().IndexOfOrDie(c));
  }
  Relation out{Schema(columns)};
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(rel.size());
  for (const Tuple& t : rel.rows()) {
    Tuple projected = ProjectTuple(t, indices);
    if (seen.insert(projected).second) out.Add(std::move(projected));
  }
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += rel.size();  // dedup-set inserts
  }
  return out;
}

Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred,
                OpMetrics* metrics) {
  Relation out(rel.schema());
  for (const Tuple& t : rel.rows()) {
    if (pred(t)) out.Add(t);
  }
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
  }
  return out;
}

Relation Rename(const Relation& rel, std::vector<std::string> new_names) {
  QF_CHECK_MSG(new_names.size() == rel.arity(), "Rename arity mismatch");
  Relation out(Schema(std::move(new_names)));
  for (const Tuple& t : rel.rows()) out.Add(t);
  return out;
}

namespace {

// Shared counter bookkeeping for the hash-join variants: row counters are
// identical whichever execution path produced `out`, so serial and
// parallel joins report the same numbers for the same inputs.
void RecordJoinMetrics(OpMetrics* metrics, const Relation& a,
                       const Relation& b, const Relation& out) {
  if (metrics == nullptr) return;
  metrics->rows_in += a.size();
  metrics->rows_in_right += b.size();
  metrics->rows_out += out.size();
  // One index lookup per probe-side row (none when an empty input
  // short-circuits the probe phase).
  if (!a.empty() && !b.empty()) metrics->tuples_probed += a.size();
}

}  // namespace

Relation NaturalJoin(const Relation& a, const Relation& b,
                     OpMetrics* metrics) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  // Build the hash index on the smaller input; probe with the other. The
  // output layout is fixed (a's columns then b's extras) either way.
  Relation out(JoinedSchema(a, b, layout));
  if (a.empty() || b.empty()) {
    RecordJoinMetrics(metrics, a, b, out);
    return out;
  }
  RowIndex index = BuildIndex(b, layout.b_key);
  for (const Tuple& ta : a.rows()) {
    auto it = index.find(ProjectTuple(ta, layout.a_key));
    if (it == index.end()) continue;
    for (std::size_t rb : it->second) {
      Tuple combined = ta;
      const Tuple& tb = b.rows()[rb];
      for (std::size_t j : layout.b_rest) combined.push_back(tb[j]);
      out.Add(std::move(combined));
    }
  }
  RecordJoinMetrics(metrics, a, b, out);
  return out;
}

Relation ParallelNaturalJoin(const Relation& a, const Relation& b,
                             unsigned threads, OpMetrics* metrics) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  // Probe-side morsel size. Fixed — never derived from `threads` — so the
  // morsel decomposition, and with it the output row order, is a function
  // of the inputs alone.
  constexpr std::size_t kMorselRows = 4096;
  if (threads <= 1 || layout.a_key.empty() || a.size() < 2 * kMorselRows ||
      b.empty()) {
    return NaturalJoin(a, b, metrics);
  }

  // Shared read-only build index over b; morsels of a probe it on the
  // pool, each into its own buffer.
  RowIndex index = BuildIndex(b, layout.b_key);
  std::vector<std::vector<Tuple>> outputs(MorselCount(a.size(), kMorselRows));
  ParallelFor(threads, a.size(), kMorselRows,
              [&](std::size_t begin, std::size_t end) {
                std::vector<Tuple>& out = outputs[begin / kMorselRows];
                for (std::size_t r = begin; r < end; ++r) {
                  const Tuple& ta = a.rows()[r];
                  auto it = index.find(ProjectTuple(ta, layout.a_key));
                  if (it == index.end()) continue;
                  for (std::size_t rb : it->second) {
                    Tuple combined = ta;
                    const Tuple& tb = b.rows()[rb];
                    for (std::size_t j : layout.b_rest) {
                      combined.push_back(tb[j]);
                    }
                    out.push_back(std::move(combined));
                  }
                }
              });

  // Concatenate in morsel order: morsels cover a's rows in index order and
  // each morsel emits matches in probe order, so the result row order
  // equals the serial NaturalJoin's.
  Relation out(JoinedSchema(a, b, layout));
  std::size_t total = 0;
  for (const auto& part : outputs) total += part.size();
  out.mutable_rows().reserve(total);
  for (auto& part : outputs) {
    for (Tuple& t : part) out.mutable_rows().push_back(std::move(t));
  }
  RecordJoinMetrics(metrics, a, b, out);
  if (metrics != nullptr) metrics->morsels += outputs.size();
  return out;
}

Relation SortMergeJoin(const Relation& a, const Relation& b) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  Relation out(JoinedSchema(a, b, layout));
  if (a.empty() || b.empty()) return out;
  if (layout.a_key.empty()) return NaturalJoin(a, b);  // cross product

  // Sort row indices of both sides by their key projections.
  auto make_order = [](const Relation& rel,
                       const std::vector<std::size_t>& key) {
    std::vector<std::size_t> order(rel.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&rel, &key](std::size_t x, std::size_t y) {
                for (std::size_t k : key) {
                  const Value& vx = rel.rows()[x][k];
                  const Value& vy = rel.rows()[y][k];
                  if (vx < vy) return true;
                  if (vy < vx) return false;
                }
                return false;
              });
    return order;
  };
  std::vector<std::size_t> oa = make_order(a, layout.a_key);
  std::vector<std::size_t> ob = make_order(b, layout.b_key);

  auto compare_keys = [&](std::size_t ia, std::size_t ib) {
    for (std::size_t k = 0; k < layout.a_key.size(); ++k) {
      const Value& va = a.rows()[ia][layout.a_key[k]];
      const Value& vb = b.rows()[ib][layout.b_key[k]];
      if (va < vb) return -1;
      if (vb < va) return 1;
    }
    return 0;
  };

  std::size_t i = 0, j = 0;
  while (i < oa.size() && j < ob.size()) {
    int cmp = compare_keys(oa[i], ob[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      // Emit the run x run block of equal keys.
      std::size_t i_end = i;
      while (i_end + 1 < oa.size() &&
             compare_keys(oa[i_end + 1], ob[j]) == 0) {
        ++i_end;
      }
      std::size_t j_end = j;
      while (j_end + 1 < ob.size() &&
             compare_keys(oa[i], ob[j_end + 1]) == 0) {
        ++j_end;
      }
      for (std::size_t x = i; x <= i_end; ++x) {
        for (std::size_t y = j; y <= j_end; ++y) {
          Tuple combined = a.rows()[oa[x]];
          const Tuple& tb = b.rows()[ob[y]];
          for (std::size_t r : layout.b_rest) combined.push_back(tb[r]);
          out.Add(std::move(combined));
        }
      }
      i = i_end + 1;
      j = j_end + 1;
    }
  }
  return out;
}

namespace {

void RecordSemiAntiMetrics(OpMetrics* metrics, const Relation& a,
                           const Relation& b, std::size_t rows_out,
                           bool probed) {
  if (metrics == nullptr) return;
  metrics->rows_in += a.size();
  metrics->rows_in_right += b.size();
  metrics->rows_out += rows_out;
  if (probed) metrics->tuples_probed += a.size();
}

}  // namespace

Relation SemiJoin(const Relation& a, const Relation& b, OpMetrics* metrics) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  Relation out(a.schema());
  out.set_name(a.name());
  if (layout.a_key.empty()) {
    // No shared columns: b acts as a boolean guard.
    const Relation& result = b.empty() ? out : a;
    RecordSemiAntiMetrics(metrics, a, b, result.size(), false);
    return result;
  }
  std::unordered_set<Tuple, TupleHash> keys;
  keys.reserve(b.size());
  for (const Tuple& tb : b.rows()) {
    keys.insert(ProjectTuple(tb, layout.b_key));
  }
  for (const Tuple& ta : a.rows()) {
    if (keys.contains(ProjectTuple(ta, layout.a_key))) out.Add(ta);
  }
  RecordSemiAntiMetrics(metrics, a, b, out.size(), true);
  return out;
}

Relation AntiJoin(const Relation& a, const Relation& b, OpMetrics* metrics) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  Relation out(a.schema());
  out.set_name(a.name());
  if (layout.a_key.empty()) {
    const Relation& result = b.empty() ? a : out;
    RecordSemiAntiMetrics(metrics, a, b, result.size(), false);
    return result;
  }
  std::unordered_set<Tuple, TupleHash> keys;
  keys.reserve(b.size());
  for (const Tuple& tb : b.rows()) {
    keys.insert(ProjectTuple(tb, layout.b_key));
  }
  for (const Tuple& ta : a.rows()) {
    if (!keys.contains(ProjectTuple(ta, layout.a_key))) out.Add(ta);
  }
  RecordSemiAntiMetrics(metrics, a, b, out.size(), true);
  return out;
}

Relation Union(const Relation& a, const Relation& b, OpMetrics* metrics) {
  QF_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  Relation out(a.schema());
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(a.size() + b.size());
  for (const Tuple& t : a.rows()) {
    if (seen.insert(t).second) out.Add(t);
  }
  for (const Tuple& t : b.rows()) {
    if (seen.insert(t).second) out.Add(t);
  }
  if (metrics != nullptr) {
    metrics->rows_in += a.size();
    metrics->rows_in_right += b.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += a.size() + b.size();  // dedup-set inserts
  }
  return out;
}

Relation Difference(const Relation& a, const Relation& b) {
  QF_CHECK_MSG(a.arity() == b.arity(), "Difference arity mismatch");
  std::unordered_set<Tuple, TupleHash> exclude(b.rows().begin(),
                                               b.rows().end());
  Relation out(a.schema());
  for (const Tuple& t : a.rows()) {
    if (!exclude.contains(t)) out.Add(t);
  }
  return out;
}

Relation Distinct(const Relation& rel) {
  Relation out = rel;
  out.Dedup();
  return out;
}

namespace {

struct Accumulator {
  std::int64_t count = 0;
  double sum = 0;
  bool has_extreme = false;
  Value extreme;
};

using GroupTable = std::unordered_map<Tuple, Accumulator, TupleHash>;

void AccumulateRow(Accumulator& acc, AggKind kind, const Tuple& t,
                   std::size_t agg_idx) {
  switch (kind) {
    case AggKind::kCount:
      acc.count += 1;
      break;
    case AggKind::kSum:
      QF_CHECK_MSG(t[agg_idx].IsNumeric(), "SUM over non-numeric value");
      acc.sum += t[agg_idx].AsNumber();
      break;
    case AggKind::kMin:
      if (!acc.has_extreme || t[agg_idx] < acc.extreme) {
        acc.extreme = t[agg_idx];
        acc.has_extreme = true;
      }
      break;
    case AggKind::kMax:
      if (!acc.has_extreme || acc.extreme < t[agg_idx]) {
        acc.extreme = t[agg_idx];
        acc.has_extreme = true;
      }
      break;
  }
}

void MergeAccumulator(Accumulator& into, const Accumulator& from,
                      AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      into.count += from.count;
      break;
    case AggKind::kSum:
      into.sum += from.sum;
      break;
    case AggKind::kMin:
      if (!into.has_extreme ||
          (from.has_extreme && from.extreme < into.extreme)) {
        into = from;
      }
      break;
    case AggKind::kMax:
      if (!into.has_extreme ||
          (from.has_extreme && into.extreme < from.extreme)) {
        into = from;
      }
      break;
  }
}

Tuple FinishGroup(const Tuple& key, const Accumulator& acc, AggKind kind) {
  Tuple row = key;
  switch (kind) {
    case AggKind::kCount:
      row.push_back(Value(acc.count));
      break;
    case AggKind::kSum:
      row.push_back(Value(acc.sum));
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      row.push_back(acc.extreme);
      break;
  }
  return row;
}

struct GroupLayout {
  std::vector<std::size_t> group_idx;
  std::size_t agg_idx = 0;
};

GroupLayout ComputeGroupLayout(const Relation& rel,
                               const std::vector<std::string>& group_columns,
                               AggKind kind, const std::string& agg_column) {
  GroupLayout layout;
  layout.group_idx.reserve(group_columns.size());
  for (const std::string& c : group_columns) {
    layout.group_idx.push_back(rel.schema().IndexOfOrDie(c));
  }
  if (kind != AggKind::kCount) {
    layout.agg_idx = rel.schema().IndexOfOrDie(agg_column);
  }
  return layout;
}

}  // namespace

namespace {

void RecordGroupMetrics(OpMetrics* metrics, const Relation& rel,
                        std::size_t rows_out) {
  if (metrics == nullptr) return;
  metrics->rows_in += rel.size();
  metrics->rows_out += rows_out;
  metrics->tuples_probed += rel.size();  // one table upsert per input row
}

}  // namespace

Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column,
                        OpMetrics* metrics) {
  GroupLayout layout =
      ComputeGroupLayout(rel, group_columns, kind, agg_column);
  GroupTable groups;
  groups.reserve(rel.size());
  for (const Tuple& t : rel.rows()) {
    AccumulateRow(groups[ProjectTuple(t, layout.group_idx)], kind, t,
                  layout.agg_idx);
  }

  std::vector<std::string> out_columns = group_columns;
  out_columns.push_back(output_column);
  Relation out(Schema(std::move(out_columns)));
  for (auto& [key, acc] : groups) {
    out.Add(FinishGroup(key, acc, kind));
  }
  // Sort for a deterministic row order: group keys are unique, so the
  // lexicographic order is total, and the serial overload now agrees
  // row-for-row with the parallel one instead of exposing hash-table
  // iteration order (an inconsistency found while instrumenting;
  // ops_test.cc pins it).
  out.SortRows();
  RecordGroupMetrics(metrics, rel, out.size());
  return out;
}

Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column, unsigned threads,
                        OpMetrics* metrics) {
  GroupLayout layout =
      ComputeGroupLayout(rel, group_columns, kind, agg_column);

  // Fixed morsel size: the decomposition (and therefore the association
  // order of floating-point SUM partials) depends only on the input, so
  // every `threads` value computes bit-identical aggregates.
  constexpr std::size_t kMorselRows = 2048;
  std::vector<GroupTable> partials(MorselCount(rel.size(), kMorselRows));
  ParallelFor(threads, rel.size(), kMorselRows,
              [&](std::size_t begin, std::size_t end) {
                GroupTable& local = partials[begin / kMorselRows];
                local.reserve(end - begin);
                for (std::size_t r = begin; r < end; ++r) {
                  const Tuple& t = rel.rows()[r];
                  AccumulateRow(local[ProjectTuple(t, layout.group_idx)],
                                kind, t, layout.agg_idx);
                }
              });

  // Merge thread-local tables in morsel order (deterministic), then sort
  // the output rows: group keys are unique, so the lexicographic sort is
  // a total order and pins the row order independently of hash-table
  // iteration.
  GroupTable groups;
  groups.reserve(rel.size());
  for (GroupTable& partial : partials) {
    for (auto& [key, acc] : partial) {
      auto [it, inserted] = groups.try_emplace(key, acc);
      if (!inserted) MergeAccumulator(it->second, acc, kind);
    }
  }

  std::vector<std::string> out_columns = group_columns;
  out_columns.push_back(output_column);
  Relation out(Schema(std::move(out_columns)));
  out.mutable_rows().reserve(groups.size());
  for (auto& [key, acc] : groups) {
    out.Add(FinishGroup(key, acc, kind));
  }
  out.SortRows();
  RecordGroupMetrics(metrics, rel, out.size());
  if (metrics != nullptr) metrics->morsels += partials.size();
  return out;
}

}  // namespace qf
