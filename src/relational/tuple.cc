#include "relational/tuple.h"

#include "common/hash.h"

namespace qf {

std::size_t TupleHash::HashCombineValue(std::size_t seed, const Value& v) {
  return HashCombine(seed, v.Hash());
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

Tuple ProjectTuple(const Tuple& t, const std::vector<std::size_t>& indices) {
  Tuple out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(t[i]);
  return out;
}

}  // namespace qf
