// Database: a catalog of named base relations — the "predicates that
// represent data stored as relations" of a query flock (paper §2, item 1).
//
// Relations are held by shared_ptr-to-const: copying a Database copies the
// name table only, never the tuple payloads, and Put/Add swing pointers
// (copy-on-write at relation granularity). This is what lets the server's
// session manager (network/server.h) hand every client its own mutable
// catalog view over one shared read-mostly base database: a session's
// writes replace only that session's pointer; the base relations stay
// shared, immutable, and safe to scan from many statement threads at once.
#ifndef QF_RELATIONAL_DATABASE_H_
#define QF_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace qf {

class Database {
 public:
  Database() = default;

  // Registers `rel` under its name; the name must be non-empty and unused.
  Status AddRelation(Relation rel);

  // Replaces or inserts `rel` under its name.
  void PutRelation(Relation rel);
  // Pointer form: shares `rel` (which must stay immutable) instead of
  // copying it — how sessions adopt relations of a shared base database.
  void PutRelation(std::shared_ptr<const Relation> rel);

  bool Has(std::string_view name) const;

  // Returns the relation; aborts if absent (use Has() to probe).
  const Relation& Get(std::string_view name) const;
  // Shared handle to the relation (aborts if absent): keeps the payload
  // alive independently of this Database, without copying tuples.
  std::shared_ptr<const Relation> GetShared(std::string_view name) const;

  // Returns all relation names in sorted order.
  std::vector<std::string> Names() const;

  std::size_t size() const { return relations_.size(); }

  // Mutation counter: bumped by every AddRelation/PutRelation, copied with
  // the database. Within one session the database only ever mutates in
  // place, so an unchanged generation means every relation pointer is
  // unchanged — the incremental evaluator's cheap cache-validity probe
  // (falling back to per-relation pointer comparison when it differs).
  std::uint64_t generation() const { return generation_; }

 private:
  std::map<std::string, std::shared_ptr<const Relation>, std::less<>>
      relations_;
  std::uint64_t generation_ = 0;
};

}  // namespace qf

#endif  // QF_RELATIONAL_DATABASE_H_
