// Database: a catalog of named base relations — the "predicates that
// represent data stored as relations" of a query flock (paper §2, item 1).
#ifndef QF_RELATIONAL_DATABASE_H_
#define QF_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace qf {

class Database {
 public:
  Database() = default;

  // Registers `rel` under its name; the name must be non-empty and unused.
  Status AddRelation(Relation rel);

  // Replaces or inserts `rel` under its name.
  void PutRelation(Relation rel);

  bool Has(std::string_view name) const;

  // Returns the relation; aborts if absent (use Has() to probe).
  const Relation& Get(std::string_view name) const;

  // Returns all relation names in sorted order.
  std::vector<std::string> Names() const;

  std::size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation, std::less<>> relations_;
};

}  // namespace qf

#endif  // QF_RELATIONAL_DATABASE_H_
