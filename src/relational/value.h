// Value: a dynamically typed scalar stored in relations. The query-flocks
// data model is untyped Datalog; a value is an integer, a float, or a
// symbol (string). Ordering and equality are total: values of different
// kinds order by kind (int < double < string), values of the same kind
// order naturally. Arithmetic subgoals in queries ($1 < $2) use this
// ordering, which gives lexicographic comparison for symbols exactly as
// the paper's examples need.
//
// Strings are interned in the process-wide StringPool, so Value is
// trivially copyable, string equality is a pointer compare, and string
// hashing mixes a pointer — the fast paths of hash joins and
// set-semantics deduplication.
#ifndef QF_RELATIONAL_VALUE_H_
#define QF_RELATIONAL_VALUE_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/check.h"
#include "relational/string_pool.h"

namespace qf {

class Value {
 public:
  enum class Kind { kInt = 0, kDouble = 1, kString = 2 };

  // Default-constructs the integer 0, so vectors of Values are cheap to
  // resize before being filled in.
  Value() : rep_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : rep_(v) {}
  explicit Value(int v) : rep_(static_cast<std::int64_t>(v)) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string_view v) : rep_(StringPool::Instance().Intern(v)) {}
  explicit Value(const std::string& v) : Value(std::string_view(v)) {}
  explicit Value(const char* v) : Value(std::string_view(v)) {}

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }

  // Kind-checked accessors; calling the wrong one aborts in debug builds.
  std::int64_t AsInt() const {
    QF_DCHECK(is_int());
    return *std::get_if<std::int64_t>(&rep_);
  }
  double AsDouble() const {
    QF_DCHECK(is_double());
    return *std::get_if<double>(&rep_);
  }
  const std::string& AsString() const {
    QF_DCHECK(is_string());
    return **std::get_if<const std::string*>(&rep_);
  }

  // Numeric interpretation: ints widen to double; strings are not numeric.
  bool IsNumeric() const { return !is_string(); }
  double AsNumber() const {
    QF_DCHECK(IsNumeric());
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  // Renders the value for printing: integers as decimal text, doubles with
  // a decimal point kept visible, strings verbatim.
  std::string ToString() const;

  // Interned strings compare by canonical pointer.
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  // Kind-major total order; doubles use IEEE total ordering so the order
  // is strong even in the presence of exotic floats; strings compare by
  // pooled bytes (lexicographic).
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

  std::size_t Hash() const;

 private:
  std::variant<std::int64_t, double, const std::string*> rep_;
};

static_assert(std::is_trivially_copyable_v<Value>);

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace qf

#endif  // QF_RELATIONAL_VALUE_H_
