// Relational operators over set-semantics relations.
//
// Joins are *natural*: they match on equally named columns, which is exactly
// the shape conjunctive-query evaluation needs when each subgoal's binding
// relation names its columns after the query's variables and parameters.
//
// Observability: every operator the evaluators use takes a trailing
// nullable OpMetrics* (common/metrics.h). When non-null the operator adds
// its observed counters — rows_in (left/only input), rows_in_right (build
// side of binary ops), rows_out (exact result cardinality), tuples_probed
// (hash lookups + table upserts), morsels (parallel decomposition; 0 when
// the op ran as one piece) — into the node. Operators fill *counters
// only*; naming the node and timing it (ScopedOp) is the caller's job, so
// wall time has a single source. All row counters are identical for every
// thread count (the same determinism contract as the results themselves);
// `morsels` reflects the actual decomposition and is 0 on serial paths.
// A null pointer costs one branch — the disabled path stays
// allocation-free.
//
// Governance: the same operators take a trailing nullable QueryContext*
// (common/resource.h). When non-null the operator polls the context's
// deadline/cancel token every QueryContext::kPollStride rows (and at
// morsel granularity on parallel paths) and charges ApproxTupleBytes per
// *output* row to the memory accountant, recording the charged bytes in
// metrics->mem_bytes. Once the context latches an error the operator
// bails out early with truncated output; callers must ctx->Check() after
// each operator and discard the truncated result. Governance never
// changes the rows of a run that completes — only whether it completes.
#ifndef QF_RELATIONAL_OPS_H_
#define QF_RELATIONAL_OPS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "relational/relation.h"

namespace qf {

// Projects onto `columns` (each must exist), removing duplicates.
Relation Project(const Relation& rel, const std::vector<std::string>& columns,
                 OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Keeps rows satisfying `pred`. Preserves set-ness.
Relation Select(const Relation& rel,
                const std::function<bool(const Tuple&)>& pred,
                OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Renames columns: new_names.size() must equal arity.
Relation Rename(const Relation& rel, std::vector<std::string> new_names);

// Natural join: matches rows agreeing on all shared column names. Output
// schema is a's columns followed by b's non-shared columns. If the inputs
// share no columns this is a cross product. Inputs must be duplicate-free
// for the output to be duplicate-free.
Relation NaturalJoin(const Relation& a, const Relation& b,
                     OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Natural join computed by sort-merge instead of hashing: identical
// result set (row order differs). Wins over the hash join when inputs are
// large relative to cache, or as a cross-check in tests; the evaluators
// use the hash join by default.
Relation SortMergeJoin(const Relation& a, const Relation& b);

// Natural join with the probe side split into fixed-size morsels handed
// to the shared thread pool (common/thread_pool.h): a shared read-only
// hash index over `b`, one output buffer per morsel, buffers concatenated
// in morsel order. Because morsel boundaries depend only on the input
// size — never on `threads` — the output row order is *identical to
// NaturalJoin(a, b)* for every thread count, so the evaluators can switch
// between the serial and parallel join freely without changing results.
// `threads` <= 1 (including 0), small inputs, and cross products fall
// back to the serial join (same rows, same order, same row counters;
// morsels stays 0 on the fallback).
Relation ParallelNaturalJoin(const Relation& a, const Relation& b,
                             unsigned threads, OpMetrics* metrics = nullptr,
                             QueryContext* ctx = nullptr);

// Rows of `a` with at least one match in `b` on the shared columns.
// If no columns are shared: returns `a` when `b` is non-empty, else empty.
Relation SemiJoin(const Relation& a, const Relation& b,
                  OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Rows of `a` with *no* match in `b` on the shared columns — evaluates
// NOT-subgoals. If no columns are shared: returns `a` when `b` is empty,
// else empty.
Relation AntiJoin(const Relation& a, const Relation& b,
                  OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Set union; schemas must have equal arity (column names taken from `a`).
Relation Union(const Relation& a, const Relation& b,
               OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

// Set difference a - b; arities must match (names from `a`).
Relation Difference(const Relation& a, const Relation& b);

// Removes duplicates (copy of Relation::Dedup that leaves input intact).
Relation Distinct(const Relation& rel);

// Aggregation kinds for GroupAggregate. All but kCount read `agg_column`.
enum class AggKind { kCount, kSum, kMin, kMax };

// Groups `rel` by `group_columns` and computes one aggregate per group over
// the remaining data:
//   kCount — number of (distinct) rows in the group;
//   kSum / kMin / kMax — over the numeric column `agg_column`.
// Output schema: group_columns + {output_column}, rows in lexicographic
// order (both overloads sort, so serial and parallel agree row-for-row —
// see the note on the parallel overload). Input must be duplicate-free:
// under set semantics COUNT of a flock's answers is exactly the number of
// distinct rows per group.
Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column,
                        OpMetrics* metrics = nullptr,
                        QueryContext* ctx = nullptr);

// Morsel-parallel GroupAggregate: rows are split into fixed-size morsels,
// each aggregated into a thread-local hash table on the shared pool, the
// per-morsel tables merged in morsel order, and the output rows sorted
// lexicographically. The result is bit-identical for every `threads`
// value (including 0 and 1): morsel boundaries and the merge order depend
// only on the input, so even floating-point SUM associates identically,
// and the final sort pins the row order. The serial overload above now
// sorts as well, so the two agree exactly except that floating-point SUM
// may differ in association (the sums are equal up to rounding).
Relation GroupAggregate(const Relation& rel,
                        const std::vector<std::string>& group_columns,
                        AggKind kind, const std::string& agg_column,
                        const std::string& output_column, unsigned threads,
                        OpMetrics* metrics = nullptr,
                        QueryContext* ctx = nullptr);

}  // namespace qf

#endif  // QF_RELATIONAL_OPS_H_
