// Tab-separated load/store so example programs can persist generated data
// and users can bring their own. The first line is the header (column
// names); every column is typed by the least upper bound of its fields
// under int64 < double < string.
//
// All I/O goes through a Vfs (common/vfs.h): pass one to inject faults in
// tests; the default is the process-wide PosixVfs. Stores are crash-safe
// (temp file + fsync + rename + directory fsync), so an ENOSPC or a crash
// mid-write can never leave a truncated TSV at the destination.
#ifndef QF_RELATIONAL_TSV_H_
#define QF_RELATIONAL_TSV_H_

#include <string>

#include "common/status.h"
#include "common/vfs.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace qf {

// Reads a relation from `path`. The relation is named `name` and
// deduplicated on load (set semantics). Malformed rows are rejected —
// never padded or truncated — with the 1-based line number and the byte
// offset of the offending line in the error message.
Result<Relation> LoadTsv(const std::string& path, const std::string& name,
                         Vfs* vfs = nullptr);

// Writes `rel` to `path`, header first, atomically (temp + rename).
Status StoreTsv(const Relation& rel, const std::string& path,
                Vfs* vfs = nullptr);

// Persists every relation of `db` as <dir>/<name>.tsv (creating the
// directory), plus a MANIFEST listing the relation names. Each file is
// written atomically; the MANIFEST is written last.
Status StoreDatabase(const Database& db, const std::string& dir,
                     Vfs* vfs = nullptr);

// Loads a database persisted by StoreDatabase.
Result<Database> LoadDatabase(const std::string& dir, Vfs* vfs = nullptr);

}  // namespace qf

#endif  // QF_RELATIONAL_TSV_H_
