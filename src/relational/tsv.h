// Tab-separated load/store so example programs can persist generated data
// and users can bring their own. The first line is the header (column
// names); every field is parsed as int64, then double, then symbol.
#ifndef QF_RELATIONAL_TSV_H_
#define QF_RELATIONAL_TSV_H_

#include <string>

#include "common/status.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace qf {

// Reads a relation from `path`. The relation is named `name` and
// deduplicated on load (set semantics).
Result<Relation> LoadTsv(const std::string& path, const std::string& name);

// Writes `rel` to `path`, header first.
Status StoreTsv(const Relation& rel, const std::string& path);

// Persists every relation of `db` as <dir>/<name>.tsv (creating the
// directory), plus a MANIFEST listing the relation names.
Status StoreDatabase(const Database& db, const std::string& dir);

// Loads a database persisted by StoreDatabase.
Result<Database> LoadDatabase(const std::string& dir);

}  // namespace qf

#endif  // QF_RELATIONAL_TSV_H_
