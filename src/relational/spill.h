// Out-of-core execution: grace-hash spill variants of the flat-hash
// kernels, plus the streaming group-by sink the flock evaluator fuses
// into its final join.
//
// The problem (ROADMAP item 3): every relation lives wholly in RAM, so
// the PR 4 governor's only answer to a large intermediate is a hard
// RESOURCE_EXHAUSTED. Grace hashing turns that cliff into graceful
// degradation: when the accountant nears budget, an operator partitions
// its inputs to checksummed temp files by key hash, drops the in-memory
// copies, and processes one partition at a time — recursing with a
// level-salted hash when a partition is itself too big.
//
// Determinism contract (DESIGN.md §14): spilling never changes results.
//   * Rows with equal keys always land in the same partition, and records
//     are written (and read back) in input order, so per-partition row
//     order is the global order restricted to the partition.
//   * SpillNaturalJoin / SpillProject tag rows with their input index and
//     k-way merge per-partition outputs by that tag, restoring exactly
//     the row order of NaturalJoin / Project.
//   * SpillGroupAggregate / SpillGroupSink keep each group whole inside
//     one partition, so per-group accumulation order equals the serial
//     GroupAggregate's, bit for bit (including float SUM association).
//   * Activation (SpillWanted) depends only on accounted bytes at an
//     operator boundary, which the determinism contract already makes
//     thread-invariant — so the decision itself is thread-invariant.
//
// Fault model: spill files are transient (never fsynced; a crash simply
// loses them). Every block is CRC32C-framed, so torn or bit-flipped spill
// data yields a typed IO_ERROR, never silently wrong results. Writers
// remove their files in their destructors — statement abort unwinds the
// stack and cleans up — and RemoveSpillFiles sweeps orphans left by a
// killed process (the shell runs it on OPEN).
//
// Layering: this file lives in relational/ and does raw sequential Vfs
// I/O. It does NOT use the buffer pool (src/storage depends on
// relational, not vice versa); the pool serves paged catalog relations.
#ifndef QF_RELATIONAL_SPILL_H_
#define QF_RELATIONAL_SPILL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace qf {

// Temp spill files are named "<dir>/qfspill-<seq>"; the prefix is what
// the orphan sweep matches on.
inline constexpr char kSpillFilePrefix[] = "qfspill-";

// Cumulative counters for one spill environment (one shell session /
// server). Atomic: parallel statements may share an env.
struct SpillStats {
  std::atomic<std::uint64_t> activations{0};   // operators that spilled
  std::atomic<std::uint64_t> partitions{0};    // partition files written
  std::atomic<std::uint64_t> spilled_rows{0};  // records written
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> recursions{0};    // oversized partitions re-split
};

// Where and how a governed statement may spill. Hung off QueryContext as
// an opaque pointer (common/resource.h forward-declares this); nullptr
// means "no spill grant" and operators keep the PR 4 hard-abort behavior.
struct SpillEnv {
  Vfs* vfs = nullptr;
  std::string dir;  // spill files live directly inside; created on demand
  // Partitions per split. 32 divides a just-over-budget input into
  // comfortably sub-budget pieces; deeper skew recurses.
  std::size_t fanout = 32;
  // Recursion cutoff: at this depth a partition is processed in memory
  // even if oversized (a pathological all-equal-keys input then gets the
  // honest RESOURCE_EXHAUSTED instead of infinite splitting).
  std::size_t max_depth = 6;
  // Engage spilling when used + projected bytes exceed this fraction of
  // the budget — headroom for the working partition and the output.
  double activation = 0.8;
  // Target size of one checksummed file block (the I/O and CRC unit).
  std::size_t block_bytes = 256 * 1024;
  std::atomic<std::uint64_t> seq{0};  // spill-file name allocator
  SpillStats stats;
};

// The single spill-activation rule: true when the statement is governed,
// holds a spill grant and a hard budget, and `projected_bytes` more would
// push accounted bytes past activation * budget. Call sites evaluate this
// at operator boundaries, where accounted bytes are thread-invariant.
bool SpillWanted(const QueryContext* ctx, std::uint64_t projected_bytes);

// Fresh unique spill-file path under env.dir.
std::string NewSpillPath(SpillEnv& env);

// Removes every kSpillFilePrefix file directly inside `dir` (orphans from
// a killed process). Returns the number removed; a missing directory
// counts as zero. Stops at the first I/O error.
Result<std::size_t> RemoveSpillFiles(Vfs& vfs, const std::string& dir);

// ---------------------------------------------------------------------
// Checksummed spill file I/O.
//
// File layout: a sequence of blocks, each
//     [u32 payload_len][u32 masked CRC32C of payload][payload]
// where the payload is a sequence of records, each [u32 len][bytes].
// Records never span blocks. No fsync anywhere: the files are transient.

// Sequential writer. The file is created lazily on the first Add and
// REMOVED by the destructor — keep the writer alive while a SpillReader
// consumes the file, and let stack unwinding clean up on abort.
class SpillWriter {
 public:
  explicit SpillWriter(SpillEnv& env);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  // Appends one record. Errors (ENOSPC, EIO, injected faults) latch: all
  // later calls return the same status.
  Status Add(std::string_view record);
  // Flushes the trailing partial block and closes the file (which still
  // exists until the destructor runs).
  Status Finish();

  const std::string& path() const { return path_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  Status FlushBlock();

  SpillEnv& env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  std::string block_;
  Status status_;
  bool created_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

// Streaming reader: holds one decoded block at a time (memory O(block)),
// verifying each block's CRC as it loads. Returned views point into the
// current block and are invalidated by the next Next() that crosses a
// block boundary.
class SpillReader {
 public:
  SpillReader(Vfs& vfs, std::string path, SpillEnv* env = nullptr);

  // False at end of file or on error — check status() to distinguish.
  bool Next(std::string_view* record);
  const Status& status() const { return status_; }

 private:
  Status LoadBlock();

  Vfs& vfs_;
  std::string path_;
  SpillEnv* env_;
  std::uint64_t offset_ = 0;  // next unread file offset
  std::string block_;         // current verified payload
  std::size_t pos_ = 0;       // cursor within block_
  bool eof_ = false;
  Status status_;
};

// ---------------------------------------------------------------------
// Streaming sink: the fused final-join path.

// Receives output rows one at a time from a streaming producer (the CQ
// evaluator's final join). `engaged` is set by the producer when it
// actually took the streaming path, so the caller knows whether Finish()
// holds the result or the conventional materialized path ran.
class TupleSink {
 public:
  virtual ~TupleSink() = default;
  virtual Status Push(const Tuple& row) = 0;
  bool engaged = false;
};

// Grace-hash GROUP BY sink for flock evaluation: rows pushed are answer
// rows (group key in the leading `key_columns` columns, possibly with
// duplicates); Finish() partitions having already spilled every row,
// dedups full rows per partition (set semantics), applies an optional
// per-distinct-row check (the SUM nonnegativity guard), aggregates each
// partition with the serial GroupAggregate kernel, and returns the
// concatenated, sorted grouped relation — bit-identical to
// GroupAggregate(Distinct(pushed rows), ...).
class SpillGroupSink : public TupleSink {
 public:
  // `schema`: schema of the pushed rows; the leading `key_columns`
  // columns form the group key. `row_check` (nullable) runs once per
  // distinct row, before aggregation; its error aborts Finish.
  SpillGroupSink(Schema schema, std::size_t key_columns, AggKind kind,
                 const std::string& agg_column, std::string output_column,
                 std::function<Status(const Tuple&)> row_check,
                 SpillEnv& env, QueryContext* ctx, OpMetrics* metrics);
  ~SpillGroupSink() override;

  Status Push(const Tuple& row) override;

  // Drains the partitions and returns the grouped relation (key columns +
  // output column, sorted). Call at most once.
  Result<Relation> Finish();

  // Re-points the metrics node Finish() fills — the caller only creates
  // the node once it knows the sink actually engaged.
  void set_metrics(OpMetrics* metrics) { metrics_ = metrics; }

  // Distinct answer rows seen across all partitions (valid after Finish);
  // feeds FlockEvalInfo::answer_rows.
  std::uint64_t answer_rows() const { return answer_rows_; }
  std::uint64_t pushed_rows() const { return pushed_rows_; }

 private:
  Status ProcessPartition(const std::string& path, std::uint64_t records,
                          std::size_t level, Relation& out);

  Schema schema_;
  std::vector<std::size_t> key_idx_;
  std::vector<std::string> key_names_;
  AggKind kind_;
  std::string agg_column_;
  std::string output_column_;
  std::function<Status(const Tuple&)> row_check_;
  SpillEnv& env_;
  QueryContext* ctx_;
  OpMetrics* metrics_;
  std::vector<std::unique_ptr<SpillWriter>> writers_;
  std::string scratch_;
  std::uint64_t pushed_rows_ = 0;
  std::uint64_t answer_rows_ = 0;
  std::uint64_t probes_ = 0;  // dedup-set slot probes across partitions
  Status status_;
};

// ---------------------------------------------------------------------
// Standalone grace-hash kernels. Each returns exactly the rows, in
// exactly the order, of its in-memory counterpart in relational/ops.h,
// and reports the same rows_in/rows_out metrics (tuples_probed counts the
// per-partition tables, so it may differ from the single-table count —
// like the serial/parallel split, the decomposition is observable there).

// Grace-hash natural join. Takes its inputs BY VALUE: both are
// partitioned to disk and freed before any partition is joined — that is
// the point — and when `release_inputs` is set the kernel Releases their
// ApproxTupleBytes from `ctx` on the caller's behalf (the caller must
// then not release them again). Falls back to the in-memory NaturalJoin
// when the inputs share no column (cross products don't partition).
Result<Relation> SpillNaturalJoin(Relation a, Relation b, SpillEnv& env,
                                  OpMetrics* metrics = nullptr,
                                  QueryContext* ctx = nullptr,
                                  bool release_inputs = false);

// Grace-hash projection with set-semantics dedup: partitions the
// projected rows (tagged with their input index) by projected-row hash,
// dedups per partition, and merges by tag — Project's first-occurrence
// order, restored exactly.
Result<Relation> SpillProject(const Relation& rel,
                              const std::vector<std::string>& columns,
                              SpillEnv& env, OpMetrics* metrics = nullptr,
                              QueryContext* ctx = nullptr);

// Grace-hash group-by: partitions rows by group key, aggregates each
// partition with the serial in-memory kernel, concatenates and sorts.
// Input must be duplicate-free (same contract as GroupAggregate).
Result<Relation> SpillGroupAggregate(
    const Relation& rel, const std::vector<std::string>& group_columns,
    AggKind kind, const std::string& agg_column,
    const std::string& output_column, SpillEnv& env,
    OpMetrics* metrics = nullptr, QueryContext* ctx = nullptr);

}  // namespace qf

#endif  // QF_RELATIONAL_SPILL_H_
