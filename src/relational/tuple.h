// Tuple: an ordered list of Values, plus the hashing/equality functors the
// relational operators use for hash joins and deduplication.
#ifndef QF_RELATIONAL_TUPLE_H_
#define QF_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/value.h"

namespace qf {

using Tuple = std::vector<Value>;

// Hashes a whole tuple (order-sensitive).
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t seed = t.size();
    for (const Value& v : t) seed = HashCombineValue(seed, v);
    return seed;
  }
  static std::size_t HashCombineValue(std::size_t seed, const Value& v);
};

// Renders "(v1, v2, ...)" for diagnostics and example output.
std::string TupleToString(const Tuple& t);

// Returns the projection of `t` onto `indices` (in that order).
Tuple ProjectTuple(const Tuple& t, const std::vector<std::size_t>& indices);

}  // namespace qf

#endif  // QF_RELATIONAL_TUPLE_H_
