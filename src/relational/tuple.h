// Tuple: an ordered list of Values, plus the hashing/equality functors the
// relational operators use for hash joins and deduplication.
#ifndef QF_RELATIONAL_TUPLE_H_
#define QF_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/value.h"

namespace qf {

using Tuple = std::vector<Value>;

// Hashes a whole tuple (order-sensitive).
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t seed = t.size();
    for (const Value& v : t) seed = HashCombineValue(seed, v);
    return seed;
  }
  static std::size_t HashCombineValue(std::size_t seed, const Value& v);
};

// Renders "(v1, v2, ...)" for diagnostics and example output.
std::string TupleToString(const Tuple& t);

// Returns the projection of `t` onto `indices` (in that order).
Tuple ProjectTuple(const Tuple& t, const std::vector<std::size_t>& indices);

// A borrowed view of the key columns of a tuple: which columns form the
// key, plus whether they are the identity projection (columns 0..n-1 of
// an n-ary tuple). The flat-hash kernels hash and compare key columns
// through this view, in place on the stored rows — no key Tuple is ever
// materialized — and the identity case skips even the index indirection.
struct KeyCols {
  const std::size_t* idx = nullptr;
  std::size_t n = 0;
  bool identity = false;  // key == whole row, in order

  // `arity` is the tuple width the keys will be drawn from.
  KeyCols(const std::vector<std::size_t>& cols, std::size_t arity)
      : idx(cols.data()), n(cols.size()), identity(cols.size() == arity) {
    if (identity) {
      for (std::size_t i = 0; i < n; ++i) {
        if (cols[i] != i) {
          identity = false;
          break;
        }
      }
    }
  }

  // Hash of the key columns of `t`; matches TupleHash of the projected
  // key tuple exactly (same seed = column count, same combine order), so
  // flat tables and the legacy unordered_* paths agree on hashes.
  std::size_t Hash(const Tuple& t) const {
    std::size_t seed = n;
    if (identity) {
      for (const Value& v : t) seed = TupleHash::HashCombineValue(seed, v);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        seed = TupleHash::HashCombineValue(seed, t[idx[i]]);
      }
    }
    return seed;
  }

  // Column-wise equality of the key columns of `a` and `b`.
  bool Eq(const Tuple& a, const Tuple& b) const {
    if (identity) return a == b;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(a[idx[i]] == b[idx[i]])) return false;
    }
    return true;
  }

  // Key equality across two relations keyed by different column lists
  // (join probe: a-key columns of `a` vs b-key columns of `b`).
  bool EqAcross(const Tuple& a, const KeyCols& b_cols, const Tuple& b) const {
    for (std::size_t i = 0; i < n; ++i) {
      const Value& va = identity ? a[i] : a[idx[i]];
      const Value& vb = b_cols.identity ? b[i] : b[b_cols.idx[i]];
      if (!(va == vb)) return false;
    }
    return true;
  }

  // Materializes the key tuple (output construction, not probing).
  Tuple Extract(const Tuple& t) const {
    if (identity) return t;
    Tuple key;
    key.reserve(n);
    for (std::size_t i = 0; i < n; ++i) key.push_back(t[idx[i]]);
    return key;
  }
};

}  // namespace qf

#endif  // QF_RELATIONAL_TUPLE_H_
