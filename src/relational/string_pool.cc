#include "relational/string_pool.h"

namespace qf {

StringPool& StringPool::Instance() {
  static StringPool* pool = new StringPool;  // leaked by design
  return *pool;
}

const std::string* StringPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  strings_.emplace_back(s);
  const std::string* canonical = &strings_.back();
  // The key view points at the deque-owned string, which never moves.
  ids_.emplace(std::string_view(*canonical), canonical);
  return canonical;
}

std::size_t StringPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return strings_.size();
}

}  // namespace qf
