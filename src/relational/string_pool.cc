#include "relational/string_pool.h"

#include <functional>

namespace qf {

StringPool& StringPool::Instance() {
  static StringPool* pool = new StringPool;  // leaked by design
  return *pool;
}

const std::string* StringPool::Intern(std::string_view s) {
  // Shard by content hash; the per-shard map reuses the same hash via its
  // own std::hash<string_view>, so equal strings always pick (and find
  // themselves in) the same shard.
  Shard& shard =
      shards_[std::hash<std::string_view>{}(s) & (kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.ids.find(s);
  if (it != shard.ids.end()) return it->second;
  shard.strings.emplace_back(s);
  const std::string* canonical = &shard.strings.back();
  // The key view points at the deque-owned string, which never moves.
  shard.ids.emplace(std::string_view(*canonical), canonical);
  return canonical;
}

std::size_t StringPool::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.strings.size();
  }
  return total;
}

}  // namespace qf
