#include "relational/tsv.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace qf {

Result<Relation> LoadTsv(const std::string& path, const std::string& name,
                         Vfs* vfs) {
  if (vfs == nullptr) vfs = &DefaultVfs();
  // Slurp the whole file once: lines and fields are string_views into the
  // buffer, and string Values intern straight from those views — bulk
  // loading allocates no per-line or per-field std::string.
  Result<std::string> read = vfs->ReadFile(path);
  if (!read.ok()) return read.status();
  std::string content = std::move(*read);
  if (content.empty()) {
    return InvalidArgumentError("empty TSV file: " + path);
  }

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::size_t line_offset = 0;  // byte offset of the current line's start
  auto next_line = [&](std::string_view& line) {
    if (pos >= content.size()) return false;
    line_offset = pos;
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    line = std::string_view(content).substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    ++line_no;
    return true;
  };
  // "path:line: ... (byte offset N)" — the offset lets tooling seek
  // straight to the bad row of a multi-gigabyte file.
  auto at = [&](const std::string& what) {
    return InvalidArgumentError(path + ":" + std::to_string(line_no) + ": " +
                                what + " (byte offset " +
                                std::to_string(line_offset) + ")");
  };

  std::string_view line;
  next_line(line);
  if (StripWhitespace(line).empty()) {
    // A blank or whitespace-only first line is a malformed header, not a
    // schema with one empty column (covers CRLF-only files too).
    return at("blank header line");
  }
  std::vector<std::string> columns;
  for (std::string_view field : Split(line, '\t')) {
    std::string_view col = StripWhitespace(field);
    if (col.empty()) {
      return at("empty column name in header");
    }
    columns.emplace_back(col);
  }
  Relation rel(name, Schema(std::move(columns)));
  rel.mutable_rows().reserve(static_cast<std::size_t>(
      std::count(content.begin(), content.end(), '\n')));

  // Pass 1: collect rows and decide one type per *column* — the least
  // upper bound of its fields under int64 < double < string. Sniffing
  // per field would let a column holding `1, 2, foo` (or `1` vs `1.0`)
  // mix Value kinds, silently breaking join/group-by equality and the
  // flat-hash whole-row fast path.
  enum class ColType { kInt64 = 0, kDouble = 1, kString = 2 };
  std::vector<ColType> col_types(rel.arity(), ColType::kInt64);
  std::vector<std::vector<std::string_view>> raw_rows;
  while (next_line(line)) {
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string_view> fields = Split(line, '\t');
    if (fields.size() != rel.arity()) {
      // Wrong-arity rows are rejected outright — padding short rows (or
      // dropping extra fields) would silently invent or lose data.
      return at("expected " + std::to_string(rel.arity()) + " fields, got " +
                std::to_string(fields.size()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      fields[c] = StripWhitespace(fields[c]);
      if (col_types[c] == ColType::kString) continue;
      if (ParseInt64(fields[c]).ok()) continue;  // fits any numeric column
      if (ParseDouble(fields[c]).ok()) {
        col_types[c] = std::max(col_types[c], ColType::kDouble);
      } else {
        col_types[c] = ColType::kString;
      }
    }
    raw_rows.push_back(std::move(fields));
  }
  // Pass 2: materialize every field at its column's decided type.
  for (const std::vector<std::string_view>& fields : raw_rows) {
    Tuple t;
    t.reserve(fields.size());
    for (std::size_t c = 0; c < fields.size(); ++c) {
      switch (col_types[c]) {
        case ColType::kInt64:
          t.push_back(Value(*ParseInt64(fields[c])));
          break;
        case ColType::kDouble:
          t.push_back(Value(*ParseDouble(fields[c])));
          break;
        case ColType::kString:
          t.push_back(Value(fields[c]));
          break;
      }
    }
    rel.Add(std::move(t));
  }
  rel.Dedup();
  return rel;
}

Status StoreTsv(const Relation& rel, const std::string& path, Vfs* vfs) {
  if (vfs == nullptr) vfs = &DefaultVfs();
  std::string content;
  const Schema& schema = rel.schema();
  for (std::size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) content += '\t';
    content += schema.column(i);
  }
  content += '\n';
  for (const Tuple& t : rel.rows()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i > 0) content += '\t';
      content += t[i].ToString();
    }
    content += '\n';
  }
  // Temp + fsync + rename + dir fsync: a crash or ENOSPC mid-store leaves
  // either the previous file or nothing — never a truncated TSV.
  return AtomicWriteFile(*vfs, path, content);
}

Status StoreDatabase(const Database& db, const std::string& dir, Vfs* vfs) {
  if (vfs == nullptr) vfs = &DefaultVfs();
  if (Status s = vfs->CreateDirs(dir); !s.ok()) return s;
  std::string manifest;
  for (const std::string& name : db.Names()) {
    if (Status s = StoreTsv(db.Get(name), dir + "/" + name + ".tsv", vfs);
        !s.ok()) {
      return s;
    }
    manifest += name + '\n';
  }
  // The MANIFEST goes last, atomically: a crash mid-store leaves at worst
  // orphan .tsv files, never a manifest naming a missing relation.
  return AtomicWriteFile(*vfs, dir + "/MANIFEST", manifest);
}

Result<Database> LoadDatabase(const std::string& dir, Vfs* vfs) {
  if (vfs == nullptr) vfs = &DefaultVfs();
  Result<std::string> manifest = vfs->ReadFile(dir + "/MANIFEST");
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      return NotFoundError("no MANIFEST in " + dir);
    }
    return manifest.status();
  }
  Database db;
  for (std::string_view name : Split(*manifest, '\n')) {
    name = StripWhitespace(name);
    if (name.empty()) continue;
    Result<Relation> rel =
        LoadTsv(dir + "/" + std::string(name) + ".tsv", std::string(name), vfs);
    if (!rel.ok()) return rel.status();
    db.PutRelation(std::move(*rel));
  }
  return db;
}

}  // namespace qf
