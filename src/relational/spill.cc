#include "relational/spill.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/flat_hash.h"
#include "relational/serialize.h"
#include "relational/tuple.h"

namespace qf {
namespace {

// splitmix64-style finalizer over (hash, level): each recursion level
// sees a statistically independent partition assignment, so a partition
// that collides at level k spreads at level k+1 — unless the keys are
// genuinely equal, in which case no hash can separate them and max_depth
// ends the recursion.
std::uint64_t MixLevel(std::uint64_t h, std::size_t level) {
  std::uint64_t x =
      h + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(level) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::size_t PartitionOf(std::uint64_t hash, std::size_t level,
                        std::size_t fanout) {
  return static_cast<std::size_t>(MixLevel(hash, level) % fanout);
}

// Deadline/cancel poll at the usual stride; `i` is the caller's loop
// counter. Returns the latched typed error once the context trips.
Status PollCtx(QueryContext* ctx, std::size_t i) {
  if (ctx == nullptr) return Status::Ok();
  if (i % QueryContext::kPollStride == 0 && !ctx->Poll()) return ctx->Check();
  if (!ctx->ok()) return ctx->Check();
  return Status::Ok();
}

// The flat-hash kernels address rows by 32-bit refs (same bound as
// relational/ops.cc); one partition never legitimately exceeds it.
void CheckRefRange(std::size_t rows) {
  QF_CHECK_MSG(rows < 0xFFFFFFFFull,
               "flat-hash kernels address at most 2^32-1 rows");
}

// --- record codecs ---------------------------------------------------
// Every spill record leads with the row's 64-bit partition-key hash so
// recursion can redistribute records without decoding the values; join
// and project records carry the row's original input index next (the tag
// the k-way merge restores row order by).

void EncodeRecord(std::string& out, std::uint64_t hash,
                  const std::uint64_t* tag, const Tuple& row) {
  out.clear();
  PutU64(out, hash);
  if (tag != nullptr) PutU64(out, *tag);
  for (const Value& v : row) PutValue(out, v);
}

Status CorruptRecord() { return IoError("corrupt spill record"); }

Status PeekHash(std::string_view record, std::uint64_t* hash) {
  ByteReader r(record);
  if (!r.GetU64(hash)) return CorruptRecord();
  return Status::Ok();
}

Status DecodeRecord(std::string_view record, std::size_t arity,
                    std::uint64_t* hash, std::uint64_t* tag, Tuple* row) {
  ByteReader r(record);
  if (!r.GetU64(hash)) return CorruptRecord();
  if (tag != nullptr && !r.GetU64(tag)) return CorruptRecord();
  row->clear();
  row->reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    Value v;
    if (!r.GetValue(&v)) return CorruptRecord();
    row->push_back(std::move(v));
  }
  if (!r.AtEnd()) return CorruptRecord();  // arity mismatch
  return Status::Ok();
}

// --- partition plumbing ----------------------------------------------

std::vector<std::unique_ptr<SpillWriter>> MakeWriters(SpillEnv& env) {
  std::vector<std::unique_ptr<SpillWriter>> writers;
  writers.reserve(env.fanout);
  for (std::size_t i = 0; i < env.fanout; ++i) {
    writers.push_back(std::make_unique<SpillWriter>(env));
  }
  return writers;
}

Status FinishWriters(std::vector<std::unique_ptr<SpillWriter>>& writers) {
  for (auto& w : writers) {
    if (Status s = w->Finish(); !s.ok()) return s;
  }
  return Status::Ok();
}

// Streams `path` and redistributes its records into fresh writers
// partitioned at `level` by each record's leading key hash. The caller
// owns the returned writers (their destructors remove the sub-files).
Status Repartition(SpillEnv& env, const std::string& path, std::size_t level,
                   std::vector<std::unique_ptr<SpillWriter>>& out,
                   QueryContext* ctx) {
  out = MakeWriters(env);
  env.stats.recursions.fetch_add(1, std::memory_order_relaxed);
  SpillReader reader(*env.vfs, path, &env);
  std::string_view rec;
  std::size_t i = 0;
  while (reader.Next(&rec)) {
    if (Status s = PollCtx(ctx, ++i); !s.ok()) return s;
    std::uint64_t h = 0;
    if (Status s = PeekHash(rec, &h); !s.ok()) return s;
    if (Status s = out[PartitionOf(h, level, env.fanout)]->Add(rec); !s.ok()) {
      return s;
    }
  }
  if (!reader.status().ok()) return reader.status();
  return FinishWriters(out);
}

// True when loading `records` more rows of the given footprint would
// breach the hard budget and another split level is still allowed.
bool ShouldRecurse(QueryContext* ctx, const SpillEnv& env, std::size_t level,
                   std::uint64_t load_bytes) {
  if (ctx == nullptr || ctx->budget_bytes() == 0) return false;
  if (level + 1 >= env.max_depth) return false;
  return ctx->used_bytes() + load_bytes > ctx->budget_bytes();
}

// --- join/project order restoration ----------------------------------

struct TaggedRow {
  std::uint64_t tag = 0;  // original input-row index
  Tuple row;
};

// K-way merge by tag. Each part is ascending in tag (equal tags — one
// probe row's multiple matches — are contiguous within a single part and
// stay in their relative order), so the result is the global input order.
void MergeByTag(std::vector<std::vector<TaggedRow>>& parts,
                std::vector<TaggedRow>& out) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(out.size() + total);
  std::vector<std::size_t> cur(parts.size(), 0);
  for (;;) {
    std::size_t best = parts.size();
    std::uint64_t best_tag = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (cur[i] < parts[i].size() &&
          (best == parts.size() || parts[i][cur[i]].tag < best_tag)) {
        best = i;
        best_tag = parts[i][cur[i]].tag;
      }
    }
    if (best == parts.size()) break;
    do {
      out.push_back(std::move(parts[best][cur[best]]));
      ++cur[best];
    } while (cur[best] < parts[best].size() &&
             parts[best][cur[best]].tag == best_tag);
  }
}

// --- join layout (mirrors relational/ops.cc) --------------------------

struct JoinLayout {
  std::vector<std::size_t> a_key;
  std::vector<std::size_t> b_key;
  std::vector<std::size_t> b_rest;
};

JoinLayout ComputeJoinLayout(const Relation& a, const Relation& b) {
  JoinLayout layout;
  for (std::size_t j = 0; j < b.arity(); ++j) {
    std::optional<std::size_t> i = a.schema().IndexOf(b.schema().column(j));
    if (i.has_value()) {
      layout.a_key.push_back(*i);
      layout.b_key.push_back(j);
    } else {
      layout.b_rest.push_back(j);
    }
  }
  return layout;
}

Schema JoinedSchema(const Relation& a, const Relation& b,
                    const JoinLayout& layout) {
  std::vector<std::string> columns = a.schema().columns();
  for (std::size_t j : layout.b_rest) columns.push_back(b.schema().column(j));
  return Schema(std::move(columns));
}

}  // namespace

// ---------------------------------------------------------------------
// Activation and file management.

bool SpillWanted(const QueryContext* ctx, std::uint64_t projected_bytes) {
  if (ctx == nullptr) return false;
  SpillEnv* env = ctx->spill_env();
  if (env == nullptr || env->vfs == nullptr) return false;
  if (ctx->budget_bytes() == 0) return false;
  double limit = env->activation * static_cast<double>(ctx->budget_bytes());
  return static_cast<double>(ctx->used_bytes()) +
             static_cast<double>(projected_bytes) >
         limit;
}

std::string NewSpillPath(SpillEnv& env) {
  std::uint64_t n = env.seq.fetch_add(1, std::memory_order_relaxed);
  return env.dir + "/" + kSpillFilePrefix + std::to_string(n);
}

Result<std::size_t> RemoveSpillFiles(Vfs& vfs, const std::string& dir) {
  Result<std::vector<std::string>> names = vfs.ListDir(dir);
  if (!names.ok()) return names.status();
  std::size_t removed = 0;
  for (const std::string& name : *names) {
    if (!name.starts_with(kSpillFilePrefix)) continue;
    if (Status s = vfs.Remove(dir + "/" + name); !s.ok()) return s;
    ++removed;
  }
  return removed;
}

// ---------------------------------------------------------------------
// SpillWriter / SpillReader.

SpillWriter::SpillWriter(SpillEnv& env) : env_(env), path_(NewSpillPath(env)) {}

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) file_->Close();
  // RAII cleanup: an aborted statement unwinds its writers and leaves no
  // temp files behind; orphans only survive a process kill.
  if (created_) env_.vfs->Remove(path_);
}

Status SpillWriter::Add(std::string_view record) {
  if (!status_.ok()) return status_;
  PutU32(block_, static_cast<std::uint32_t>(record.size()));
  block_.append(record);
  ++records_;
  env_.stats.spilled_rows.fetch_add(1, std::memory_order_relaxed);
  if (block_.size() >= env_.block_bytes) return FlushBlock();
  return Status::Ok();
}

Status SpillWriter::FlushBlock() {
  if (!status_.ok()) return status_;
  if (block_.empty()) return Status::Ok();
  if (file_ == nullptr) {
    created_ = true;  // before opening: cleanup is attempted regardless
    if (Status s = env_.vfs->CreateDirs(env_.dir); !s.ok()) {
      return status_ = s;
    }
    Result<std::unique_ptr<WritableFile>> f = env_.vfs->OpenTrunc(path_);
    if (!f.ok()) return status_ = f.status();
    file_ = std::move(*f);
    env_.stats.partitions.fetch_add(1, std::memory_order_relaxed);
  }
  std::string header;
  PutU32(header, static_cast<std::uint32_t>(block_.size()));
  PutU32(header, Crc32cMask(Crc32c(block_)));
  if (Status s = file_->Append(header); !s.ok()) return status_ = s;
  if (Status s = file_->Append(block_); !s.ok()) return status_ = s;
  std::uint64_t wrote = header.size() + block_.size();
  bytes_ += wrote;
  env_.stats.bytes_written.fetch_add(wrote, std::memory_order_relaxed);
  block_.clear();
  return Status::Ok();
}

Status SpillWriter::Finish() {
  if (Status s = FlushBlock(); !s.ok()) return s;
  if (file_ != nullptr) {
    // No Sync: spill files are transient; a crash loses them by design.
    if (Status s = file_->Close(); !s.ok()) return status_ = s;
    file_ = nullptr;
  }
  return Status::Ok();
}

SpillReader::SpillReader(Vfs& vfs, std::string path, SpillEnv* env)
    : vfs_(vfs), path_(std::move(path)), env_(env) {}

Status SpillReader::LoadBlock() {
  Result<std::string> header = vfs_.ReadAt(path_, offset_, 8);
  if (!header.ok()) return header.status();
  if (header->empty()) {
    eof_ = true;
    return Status::Ok();
  }
  if (header->size() < 8) {
    return IoError("torn spill block header in " + path_);
  }
  ByteReader r(*header);
  std::uint32_t len = 0, masked = 0;
  r.GetU32(&len);
  r.GetU32(&masked);
  Result<std::string> payload = vfs_.ReadAt(path_, offset_ + 8, len);
  if (!payload.ok()) return payload.status();
  if (payload->size() != len) {
    return IoError("truncated spill block in " + path_);
  }
  if (Crc32c(*payload) != Crc32cUnmask(masked)) {
    return IoError("spill block checksum mismatch in " + path_);
  }
  offset_ += 8 + static_cast<std::uint64_t>(len);
  if (env_ != nullptr) {
    env_->stats.bytes_read.fetch_add(8 + static_cast<std::uint64_t>(len),
                                     std::memory_order_relaxed);
  }
  block_ = std::move(*payload);
  pos_ = 0;
  return Status::Ok();
}

bool SpillReader::Next(std::string_view* record) {
  if (!status_.ok() || eof_) return false;
  while (pos_ >= block_.size()) {
    status_ = LoadBlock();
    if (!status_.ok() || eof_) return false;
  }
  if (block_.size() - pos_ < 4) {
    status_ = IoError("torn spill record in " + path_);
    return false;
  }
  ByteReader r(std::string_view(block_).substr(pos_, 4));
  std::uint32_t len = 0;
  r.GetU32(&len);
  pos_ += 4;
  if (block_.size() - pos_ < len) {
    status_ = IoError("torn spill record in " + path_);
    return false;
  }
  *record = std::string_view(block_).substr(pos_, len);
  pos_ += len;
  return true;
}

// ---------------------------------------------------------------------
// SpillGroupSink.

SpillGroupSink::SpillGroupSink(Schema schema, std::size_t key_columns,
                               AggKind kind, const std::string& agg_column,
                               std::string output_column,
                               std::function<Status(const Tuple&)> row_check,
                               SpillEnv& env, QueryContext* ctx,
                               OpMetrics* metrics)
    : schema_(std::move(schema)),
      kind_(kind),
      agg_column_(agg_column),
      output_column_(std::move(output_column)),
      row_check_(std::move(row_check)),
      env_(env),
      ctx_(ctx),
      metrics_(metrics) {
  key_idx_.reserve(key_columns);
  key_names_.reserve(key_columns);
  for (std::size_t i = 0; i < key_columns; ++i) {
    key_idx_.push_back(i);
    key_names_.push_back(schema_.column(i));
  }
  writers_ = MakeWriters(env_);
}

SpillGroupSink::~SpillGroupSink() = default;

Status SpillGroupSink::Push(const Tuple& row) {
  if (!status_.ok()) return status_;
  if (pushed_rows_ == 0) {
    env_.stats.activations.fetch_add(1, std::memory_order_relaxed);
  }
  if (Status s = PollCtx(ctx_, ++pushed_rows_); !s.ok()) return status_ = s;
  // Group-key hash: the key is the leading prefix of the row, so this is
  // exactly KeyCols(key_idx_).Hash(row) without the indirection.
  std::size_t h = key_idx_.size();
  for (std::size_t i = 0; i < key_idx_.size(); ++i) {
    h = TupleHash::HashCombineValue(h, row[i]);
  }
  EncodeRecord(scratch_, h, nullptr, row);
  if (Status s = writers_[PartitionOf(h, 0, env_.fanout)]->Add(scratch_);
      !s.ok()) {
    return status_ = s;
  }
  return Status::Ok();
}

Status SpillGroupSink::ProcessPartition(const std::string& path,
                                        std::uint64_t records,
                                        std::size_t level, Relation& out) {
  const std::size_t arity = schema_.arity();
  const std::size_t row_bytes = ApproxTupleBytes(arity);
  if (ShouldRecurse(ctx_, env_, level, records * row_bytes)) {
    std::vector<std::unique_ptr<SpillWriter>> subs;
    if (Status s = Repartition(env_, path, level + 1, subs, ctx_); !s.ok()) {
      return s;
    }
    for (auto& sub : subs) {
      if (sub->records() == 0) continue;
      if (Status s =
              ProcessPartition(sub->path(), sub->records(), level + 1, out);
          !s.ok()) {
        return s;
      }
    }
    return Status::Ok();  // subs destruct here -> sub-files removed
  }

  // Leaf: stream-load with full-row dedup (set semantics). A group's rows
  // all land in this partition and arrive in global push order, so the
  // per-group sequence of distinct rows — and with it the accumulation
  // order — matches the in-memory path exactly.
  CheckRefRange(records);
  Relation distinct{schema_};
  FlatTupleSet seen;
  TupleHash full_hash;
  OpGovernor gov(ctx_, row_bytes);
  SpillReader reader(*env_.vfs, path, &env_);
  std::string_view rec;
  Tuple row;
  std::size_t i = 0;
  while (reader.Next(&rec)) {
    if (Status s = PollCtx(ctx_, ++i); !s.ok()) return s;
    std::uint64_t h = 0;
    if (Status s = DecodeRecord(rec, arity, &h, nullptr, &row); !s.ok()) {
      return s;
    }
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(distinct.size()), full_hash(row),
        [&](std::uint32_t prev) { return distinct.rows()[prev] == row; },
        probes_);
    if (fresh) {
      if (row_check_ != nullptr) {
        if (Status s = row_check_(row); !s.ok()) return s;
      }
      if (!gov.Admit()) return ctx_->Check();
      distinct.Add(row);
    }
  }
  if (!reader.status().ok()) return reader.status();
  if (!gov.Flush() && ctx_ != nullptr) return ctx_->Check();
  answer_rows_ += distinct.size();

  // Serial in-memory kernel per partition: per-group results are bit-
  // identical to grouping the whole answer set at once.
  Relation grouped = GroupAggregate(distinct, key_names_, kind_, agg_column_,
                                    output_column_, nullptr, ctx_);
  if (ctx_ != nullptr && !ctx_->ok()) return ctx_->Check();
  for (Tuple& t : grouped.mutable_rows()) out.Add(std::move(t));
  if (ctx_ != nullptr) ctx_->Release(gov.total_bytes());  // drop the answers
  return Status::Ok();
}

Result<Relation> SpillGroupSink::Finish() {
  if (!status_.ok()) return status_;
  if (Status s = FinishWriters(writers_); !s.ok()) return s;
  std::vector<std::string> out_columns = key_names_;
  out_columns.push_back(output_column_);
  Relation out{Schema(std::move(out_columns))};
  for (auto& w : writers_) {
    if (w->records() == 0) continue;
    if (Status s = ProcessPartition(w->path(), w->records(), 0, out);
        !s.ok()) {
      return s;
    }
  }
  // Group keys are unique across partitions, so one global sort yields
  // the same canonical order as the in-memory kernel's.
  out.SortRows();
  if (metrics_ != nullptr) {
    metrics_->rows_in += pushed_rows_;
    metrics_->rows_out += out.size();
    metrics_->tuples_probed += probes_;
    metrics_->mem_bytes +=
        static_cast<std::uint64_t>(out.size()) * ApproxTupleBytes(out.arity());
  }
  return out;
}

// ---------------------------------------------------------------------
// SpillNaturalJoin.

namespace {

// One side of a leaf partition, loaded back into memory.
struct LoadedSide {
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> tags;  // empty when the side is untagged
  std::vector<Tuple> rows;
};

Status LoadSide(SpillEnv& env, const std::string& path, std::size_t arity,
                bool tagged, LoadedSide* side, QueryContext* ctx) {
  SpillReader reader(*env.vfs, path, &env);
  std::string_view rec;
  std::size_t i = 0;
  while (reader.Next(&rec)) {
    if (Status s = PollCtx(ctx, ++i); !s.ok()) return s;
    std::uint64_t h = 0, tag = 0;
    Tuple row;
    if (Status s =
            DecodeRecord(rec, arity, &h, tagged ? &tag : nullptr, &row);
        !s.ok()) {
      return s;
    }
    side->hashes.push_back(h);
    if (tagged) side->tags.push_back(tag);
    side->rows.push_back(std::move(row));
  }
  return reader.status();
}

// Joins one (a-partition, b-partition) file pair, appending TaggedRows in
// ascending a-tag order; recurses when the pair would not fit in budget.
struct PartitionJoiner {
  SpillEnv& env;
  QueryContext* ctx;
  std::size_t a_arity;
  std::size_t b_arity;
  const KeyCols& a_key;  // unused for hashing here (hashes are stored)
  const KeyCols& b_key;
  const std::vector<std::size_t>& b_rest;
  std::uint64_t probes = 0;
  std::uint64_t mem_bytes = 0;

  Status JoinPair(const std::string& a_path, std::uint64_t a_records,
                  const std::string& b_path, std::uint64_t b_records,
                  std::size_t level, std::vector<TaggedRow>& out) {
    if (a_records == 0 || b_records == 0) return Status::Ok();
    std::uint64_t load_bytes = a_records * ApproxTupleBytes(a_arity) +
                               b_records * ApproxTupleBytes(b_arity);
    if (ShouldRecurse(ctx, env, level, load_bytes)) {
      std::vector<std::unique_ptr<SpillWriter>> suba, subb;
      if (Status s = Repartition(env, a_path, level + 1, suba, ctx); !s.ok()) {
        return s;
      }
      if (Status s = Repartition(env, b_path, level + 1, subb, ctx); !s.ok()) {
        return s;
      }
      std::vector<std::vector<TaggedRow>> sub_out(env.fanout);
      for (std::size_t q = 0; q < env.fanout; ++q) {
        if (Status s = JoinPair(suba[q]->path(), suba[q]->records(),
                                subb[q]->path(), subb[q]->records(), level + 1,
                                sub_out[q]);
            !s.ok()) {
          return s;
        }
      }
      MergeByTag(sub_out, out);
      return Status::Ok();
    }

    LoadedSide a, b;
    if (ctx != nullptr && !ctx->Charge(load_bytes)) return ctx->Check();
    if (Status s = LoadSide(env, a_path, a_arity, /*tagged=*/true, &a, ctx);
        !s.ok()) {
      return s;
    }
    if (Status s = LoadSide(env, b_path, b_arity, /*tagged=*/false, &b, ctx);
        !s.ok()) {
      return s;
    }
    CheckRefRange(b.rows.size());
    // Build over b with the stored key hashes (a_key.Hash == b_key.Hash
    // for matching keys, so probe hashes agree); probe a in file order,
    // which is its global input order restricted to this partition.
    FlatKeyIndex index;
    index.Reserve(b.rows.size());
    for (std::size_t r = 0; r < b.rows.size(); ++r) {
      index.AddRow(
          static_cast<std::uint32_t>(r), b.hashes[r],
          [&](std::uint32_t prev) {
            return b_key.Eq(b.rows[r], b.rows[prev]);
          },
          probes);
    }
    index.Finalize();
    const std::size_t out_arity = a_arity + b_rest.size();
    OpGovernor gov(ctx, ApproxTupleBytes(out_arity));
    bool live = true;
    for (std::size_t r = 0; live && r < a.rows.size(); ++r) {
      if (!gov.TickInput()) break;
      const Tuple& ta = a.rows[r];
      FlatKeyIndex::Span span = index.Probe(
          a.hashes[r],
          [&](std::uint32_t rb) {
            return a_key.EqAcross(ta, b_key, b.rows[rb]);
          },
          probes);
      for (const std::uint32_t* p = span.begin; p != span.end; ++p) {
        if (!gov.Admit()) {
          live = false;
          break;
        }
        Tuple combined = ta;
        const Tuple& tb = b.rows[*p];
        for (std::size_t j : b_rest) combined.push_back(tb[j]);
        out.push_back(TaggedRow{a.tags[r], std::move(combined)});
      }
    }
    if (!gov.Flush() && ctx != nullptr) return ctx->Check();
    mem_bytes += gov.total_bytes();
    if (ctx != nullptr) {
      ctx->Release(load_bytes);
      return ctx->Check();
    }
    return Status::Ok();
  }
};

}  // namespace

Result<Relation> SpillNaturalJoin(Relation a, Relation b, SpillEnv& env,
                                  OpMetrics* metrics, QueryContext* ctx,
                                  bool release_inputs) {
  JoinLayout layout = ComputeJoinLayout(a, b);
  std::uint64_t input_bytes =
      static_cast<std::uint64_t>(a.size()) * ApproxTupleBytes(a.arity()) +
      static_cast<std::uint64_t>(b.size()) * ApproxTupleBytes(b.arity());
  if (layout.a_key.empty() || a.empty() || b.empty()) {
    // Cross products and empty inputs have nothing to partition by.
    Relation out = NaturalJoin(a, b, metrics, ctx);
    a = Relation();
    b = Relation();
    if (ctx != nullptr) {
      if (release_inputs) ctx->Release(input_bytes);
      if (Status s = ctx->Check(); !s.ok()) return s;
    }
    return out;
  }
  env.stats.activations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a_arity = a.arity();
  const std::size_t b_arity = b.arity();
  const std::uint64_t a_rows = a.size();
  const std::uint64_t b_rows = b.size();
  KeyCols a_key(layout.a_key, a_arity);
  KeyCols b_key(layout.b_key, b_arity);
  Schema out_schema = JoinedSchema(a, b, layout);

  // Phase 1: partition both inputs to disk...
  std::vector<std::unique_ptr<SpillWriter>> pa = MakeWriters(env);
  std::vector<std::unique_ptr<SpillWriter>> pb = MakeWriters(env);
  std::string scratch;
  for (std::size_t r = 0; r < a.rows().size(); ++r) {
    if (Status s = PollCtx(ctx, r + 1); !s.ok()) return s;
    const Tuple& t = a.rows()[r];
    std::uint64_t h = a_key.Hash(t);
    std::uint64_t tag = r;
    EncodeRecord(scratch, h, &tag, t);
    if (Status s = pa[PartitionOf(h, 0, env.fanout)]->Add(scratch); !s.ok()) {
      return s;
    }
  }
  for (std::size_t r = 0; r < b.rows().size(); ++r) {
    if (Status s = PollCtx(ctx, r + 1); !s.ok()) return s;
    const Tuple& t = b.rows()[r];
    std::uint64_t h = b_key.Hash(t);
    EncodeRecord(scratch, h, nullptr, t);
    if (Status s = pb[PartitionOf(h, 0, env.fanout)]->Add(scratch); !s.ok()) {
      return s;
    }
  }
  if (Status s = FinishWriters(pa); !s.ok()) return s;
  if (Status s = FinishWriters(pb); !s.ok()) return s;

  // ... and drop the in-memory copies: this is the step that frees the
  // budget the partition joins will run in.
  a = Relation();
  b = Relation();
  if (ctx != nullptr && release_inputs) ctx->Release(input_bytes);

  // Phase 2: join each partition pair; restore probe order by tag merge.
  PartitionJoiner joiner{env,   ctx,   a_arity,       b_arity,
                         a_key, b_key, layout.b_rest};
  std::vector<std::vector<TaggedRow>> parts(env.fanout);
  for (std::size_t p = 0; p < env.fanout; ++p) {
    if (Status s = joiner.JoinPair(pa[p]->path(), pa[p]->records(),
                                   pb[p]->path(), pb[p]->records(), 0,
                                   parts[p]);
        !s.ok()) {
      return s;
    }
  }
  std::vector<TaggedRow> merged;
  MergeByTag(parts, merged);
  Relation out(std::move(out_schema));
  out.mutable_rows().reserve(merged.size());
  for (TaggedRow& t : merged) out.mutable_rows().push_back(std::move(t.row));
  if (metrics != nullptr) {
    metrics->rows_in += a_rows;
    metrics->rows_in_right += b_rows;
    metrics->rows_out += out.size();
    metrics->tuples_probed += joiner.probes;
    metrics->mem_bytes += joiner.mem_bytes;
  }
  return out;
}

// ---------------------------------------------------------------------
// SpillProject.

namespace {

struct ProjectPartitioner {
  SpillEnv& env;
  QueryContext* ctx;
  std::size_t arity;  // of the projected rows
  std::uint64_t probes = 0;
  std::uint64_t mem_bytes = 0;

  Status Process(const std::string& path, std::uint64_t records,
                 std::size_t level, std::vector<TaggedRow>& out) {
    if (records == 0) return Status::Ok();
    const std::size_t row_bytes = ApproxTupleBytes(arity);
    if (ShouldRecurse(ctx, env, level, records * row_bytes)) {
      std::vector<std::unique_ptr<SpillWriter>> subs;
      if (Status s = Repartition(env, path, level + 1, subs, ctx); !s.ok()) {
        return s;
      }
      std::vector<std::vector<TaggedRow>> sub_out(env.fanout);
      for (std::size_t q = 0; q < env.fanout; ++q) {
        if (Status s = Process(subs[q]->path(), subs[q]->records(), level + 1,
                               sub_out[q]);
            !s.ok()) {
          return s;
        }
      }
      MergeByTag(sub_out, out);
      return Status::Ok();
    }
    // Leaf: stream with dedup. Records arrive in ascending tag order, and
    // every occurrence of a projected value has the same hash — so it
    // lives in this partition, and keeping the first occurrence here *is*
    // keeping the globally first one.
    CheckRefRange(records);
    FlatTupleSet seen;
    OpGovernor gov(ctx, row_bytes);
    SpillReader reader(*env.vfs, path, &env);
    std::string_view rec;
    Tuple row;
    std::size_t base = out.size();
    std::size_t i = 0;
    while (reader.Next(&rec)) {
      if (Status s = PollCtx(ctx, ++i); !s.ok()) return s;
      std::uint64_t h = 0, tag = 0;
      if (Status s = DecodeRecord(rec, arity, &h, &tag, &row); !s.ok()) {
        return s;
      }
      bool fresh = seen.Insert(
          static_cast<std::uint32_t>(out.size() - base), h,
          [&](std::uint32_t prev) { return out[base + prev].row == row; },
          probes);
      if (fresh) {
        if (!gov.Admit()) return ctx->Check();
        out.push_back(TaggedRow{tag, std::move(row)});
      }
    }
    if (!reader.status().ok()) return reader.status();
    if (!gov.Flush() && ctx != nullptr) return ctx->Check();
    mem_bytes += gov.total_bytes();
    return Status::Ok();
  }
};

}  // namespace

Result<Relation> SpillProject(const Relation& rel,
                              const std::vector<std::string>& columns,
                              SpillEnv& env, OpMetrics* metrics,
                              QueryContext* ctx) {
  std::vector<std::size_t> indices;
  indices.reserve(columns.size());
  for (const std::string& c : columns) {
    indices.push_back(rel.schema().IndexOfOrDie(c));
  }
  KeyCols key(indices, rel.arity());
  env.stats.activations.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::unique_ptr<SpillWriter>> writers = MakeWriters(env);
  std::string scratch;
  Tuple projected;
  for (std::size_t r = 0; r < rel.rows().size(); ++r) {
    if (Status s = PollCtx(ctx, r + 1); !s.ok()) return s;
    const Tuple& t = rel.rows()[r];
    std::uint64_t h = key.Hash(t);  // == TupleHash of the projected tuple
    projected = key.Extract(t);
    std::uint64_t tag = r;
    EncodeRecord(scratch, h, &tag, projected);
    if (Status s = writers[PartitionOf(h, 0, env.fanout)]->Add(scratch);
        !s.ok()) {
      return s;
    }
  }
  if (Status s = FinishWriters(writers); !s.ok()) return s;

  ProjectPartitioner part{env, ctx, columns.size()};
  std::vector<std::vector<TaggedRow>> parts(env.fanout);
  for (std::size_t p = 0; p < env.fanout; ++p) {
    if (Status s = part.Process(writers[p]->path(), writers[p]->records(), 0,
                                parts[p]);
        !s.ok()) {
      return s;
    }
  }
  std::vector<TaggedRow> merged;
  MergeByTag(parts, merged);
  Relation out{Schema(columns)};
  out.mutable_rows().reserve(merged.size());
  for (TaggedRow& t : merged) out.mutable_rows().push_back(std::move(t.row));
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += part.probes;
    metrics->mem_bytes += part.mem_bytes;
  }
  return out;
}

// ---------------------------------------------------------------------
// SpillGroupAggregate.

namespace {

struct GroupPartitioner {
  SpillEnv& env;
  QueryContext* ctx;
  const Relation& rel;  // for the schema only
  const std::vector<std::string>& group_columns;
  AggKind kind;
  const std::string& agg_column;
  const std::string& output_column;

  Status Process(const std::string& path, std::uint64_t records,
                 std::size_t level, Relation& out) {
    if (records == 0) return Status::Ok();
    const std::size_t arity = rel.arity();
    const std::size_t row_bytes = ApproxTupleBytes(arity);
    if (ShouldRecurse(ctx, env, level, records * row_bytes)) {
      std::vector<std::unique_ptr<SpillWriter>> subs;
      if (Status s = Repartition(env, path, level + 1, subs, ctx); !s.ok()) {
        return s;
      }
      for (auto& sub : subs) {
        if (Status s = Process(sub->path(), sub->records(), level + 1, out);
            !s.ok()) {
          return s;
        }
      }
      return Status::Ok();
    }
    // Leaf: load the partition and hand it to the serial in-memory
    // kernel. Rows arrive in global input order restricted to this
    // partition, and each group is whole here, so per-group accumulation
    // order — float SUM association included — matches the serial kernel
    // run on the whole input.
    Relation part(rel.schema());
    OpGovernor gov(ctx, row_bytes);
    SpillReader reader(*env.vfs, path, &env);
    std::string_view rec;
    Tuple row;
    std::size_t i = 0;
    while (reader.Next(&rec)) {
      if (Status s = PollCtx(ctx, ++i); !s.ok()) return s;
      std::uint64_t h = 0;
      if (Status s = DecodeRecord(rec, arity, &h, nullptr, &row); !s.ok()) {
        return s;
      }
      if (!gov.Admit()) return ctx->Check();
      part.Add(std::move(row));
      row = Tuple();
    }
    if (!reader.status().ok()) return reader.status();
    if (!gov.Flush() && ctx != nullptr) return ctx->Check();
    Relation grouped = GroupAggregate(part, group_columns, kind, agg_column,
                                      output_column, nullptr, ctx);
    if (ctx != nullptr && !ctx->ok()) return ctx->Check();
    for (Tuple& t : grouped.mutable_rows()) out.Add(std::move(t));
    if (ctx != nullptr) ctx->Release(gov.total_bytes());
    return Status::Ok();
  }
};

}  // namespace

Result<Relation> SpillGroupAggregate(
    const Relation& rel, const std::vector<std::string>& group_columns,
    AggKind kind, const std::string& agg_column,
    const std::string& output_column, SpillEnv& env, OpMetrics* metrics,
    QueryContext* ctx) {
  std::vector<std::size_t> group_idx;
  group_idx.reserve(group_columns.size());
  for (const std::string& c : group_columns) {
    group_idx.push_back(rel.schema().IndexOfOrDie(c));
  }
  KeyCols key(group_idx, rel.arity());
  env.stats.activations.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::unique_ptr<SpillWriter>> writers = MakeWriters(env);
  std::string scratch;
  for (std::size_t r = 0; r < rel.rows().size(); ++r) {
    if (Status s = PollCtx(ctx, r + 1); !s.ok()) return s;
    const Tuple& t = rel.rows()[r];
    std::uint64_t h = key.Hash(t);
    EncodeRecord(scratch, h, nullptr, t);
    if (Status s = writers[PartitionOf(h, 0, env.fanout)]->Add(scratch);
        !s.ok()) {
      return s;
    }
  }
  if (Status s = FinishWriters(writers); !s.ok()) return s;

  std::vector<std::string> out_columns = group_columns;
  out_columns.push_back(output_column);
  Relation out{Schema(std::move(out_columns))};
  GroupPartitioner part{env,  ctx,        rel,          group_columns,
                        kind, agg_column, output_column};
  for (auto& w : writers) {
    if (Status s = part.Process(w->path(), w->records(), 0, out); !s.ok()) {
      return s;
    }
  }
  out.SortRows();
  if (metrics != nullptr) {
    metrics->rows_in += rel.size();
    metrics->rows_out += out.size();
    metrics->tuples_probed += rel.size();  // one upsert per input row
    metrics->mem_bytes +=
        static_cast<std::uint64_t>(out.size()) * ApproxTupleBytes(out.arity());
  }
  return out;
}

}  // namespace qf
