#include "relational/relation.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace qf {

void Relation::Add(Tuple t) {
  QF_CHECK_MSG(t.size() == schema_.arity(), "tuple arity mismatch");
  rows_.push_back(std::move(t));
}

void Relation::AddRow(std::initializer_list<Value> values) {
  Add(Tuple(values));
}

void Relation::Dedup() {
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(rows_.size());
  std::vector<Tuple> unique;
  unique.reserve(rows_.size());
  for (Tuple& t : rows_) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  rows_ = std::move(unique);
}

bool Relation::Contains(const Tuple& t) const {
  return std::find(rows_.begin(), rows_.end(), t) != rows_.end();
}

void Relation::SortRows() { std::sort(rows_.begin(), rows_.end()); }

std::string Relation::ToString(std::size_t max_rows) const {
  std::string out = name_.empty() ? "<anonymous>" : name_;
  out += schema_.ToString();
  out += " [" + std::to_string(rows_.size()) + " rows]\n";
  for (std::size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    out += "  " + TupleToString(rows_[i]) + "\n";
  }
  if (rows_.size() > max_rows) {
    out += "  ... (" + std::to_string(rows_.size() - max_rows) + " more)\n";
  }
  return out;
}

}  // namespace qf
