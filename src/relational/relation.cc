#include "relational/relation.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "common/flat_hash.h"

namespace qf {

void Relation::Add(Tuple t) {
  QF_CHECK_MSG(t.size() == schema_.arity(), "tuple arity mismatch");
  rows_.push_back(std::move(t));
}

void Relation::AddRow(std::initializer_list<Value> values) {
  Add(Tuple(values));
}

void Relation::Dedup() {
  QF_CHECK_MSG(rows_.size() < 0xFFFFFFFFull,
               "Dedup addresses at most 2^32-1 rows");
  // Flat dedup set over row refs: rows are hashed and compared in place
  // (whole-row identity — no key tuples are built), first occurrences
  // survive in order.
  TupleHash hash;
  FlatTupleSet seen;
  seen.Reserve(rows_.size());
  std::uint64_t probes = 0;
  std::vector<Tuple> unique;
  unique.reserve(rows_.size());
  for (Tuple& t : rows_) {
    // Refs name positions in `unique` (not `rows_`): survivors are moved
    // out of `rows_`, so later probes must compare against their new home.
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(unique.size()), hash(t),
        [&](std::uint32_t prev) { return unique[prev] == t; }, probes);
    if (fresh) unique.push_back(std::move(t));
  }
  rows_ = std::move(unique);
}

bool Relation::Contains(const Tuple& t) const {
  return std::find(rows_.begin(), rows_.end(), t) != rows_.end();
}

void Relation::SortRows() { std::sort(rows_.begin(), rows_.end()); }

Result<Relation> AppendRelation(const Relation& base, const Relation& delta) {
  if (!(base.schema() == delta.schema())) {
    return InvalidArgumentError(
        "append schema mismatch: " + base.name() + base.schema().ToString() +
        " vs " + delta.schema().ToString());
  }
  QF_CHECK_MSG(base.size() + delta.size() < 0xFFFFFFFFull,
               "AppendRelation addresses at most 2^32-1 rows");
  Relation out(base.name(), base.schema());
  out.mutable_rows() = base.rows();

  TupleHash hash;
  FlatTupleSet seen;
  seen.Reserve(base.size() + delta.size());
  std::uint64_t probes = 0;
  const std::vector<Tuple>& rows = out.rows();
  for (std::uint32_t i = 0; i < base.size(); ++i) {
    seen.Insert(i, hash(rows[i]),
                [&](std::uint32_t prev) { return rows[prev] == rows[i]; },
                probes);
  }
  for (const Tuple& t : delta.rows()) {
    bool fresh = seen.Insert(
        static_cast<std::uint32_t>(out.size()), hash(t),
        [&](std::uint32_t prev) { return out.rows()[prev] == t; }, probes);
    if (fresh) out.Add(t);
  }
  out.set_epoch(base.epoch() + 1);
  out.set_base_rows(base.size());
  return out;
}

std::string Relation::ToString(std::size_t max_rows) const {
  std::string out = name_.empty() ? "<anonymous>" : name_;
  out += schema_.ToString();
  out += " [" + std::to_string(rows_.size()) + " rows]\n";
  for (std::size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    out += "  " + TupleToString(rows_[i]) + "\n";
  }
  if (rows_.size() > max_rows) {
    out += "  ... (" + std::to_string(rows_.size() - max_rows) + " more)\n";
  }
  return out;
}

}  // namespace qf
