// Global string interning for Value. Every distinct string stored in a
// relation is kept once in a process-wide pool; Values carry a pointer to
// the pooled string. This makes Value trivially copyable (tuple copies are
// flat loops), equality a pointer compare, and hashing a pointer mix — the
// operations hash joins and set-semantics deduplication live on. Ordering
// dereferences the pooled bytes, preserving lexicographic semantics for
// the paper's "$1 < $2" subgoals.
//
// The pool is sharded by string hash: each shard has its own mutex, so
// concurrent bulk loaders (TSV import, workload generators on the thread
// pool) contend only when two threads intern strings landing in the same
// shard, not on one global lock.
#ifndef QF_RELATIONAL_STRING_POOL_H_
#define QF_RELATIONAL_STRING_POOL_H_

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace qf {

class StringPool {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  // The process-wide pool. Never destroyed (intentionally leaked, so
  // interned pointers stay valid through static destruction).
  static StringPool& Instance();

  // Returns the canonical pooled instance of `s`, interning it on first
  // sight. The returned pointer is stable for the process lifetime; two
  // equal strings always intern to the same pointer. Thread-safe.
  const std::string* Intern(std::string_view s);

  // Total interned strings across all shards.
  std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    // deque: stable addresses under growth.
    std::deque<std::string> strings;
    std::unordered_map<std::string_view, const std::string*> ids;
  };

  StringPool() = default;

  Shard shards_[kShards];
};

}  // namespace qf

#endif  // QF_RELATIONAL_STRING_POOL_H_
