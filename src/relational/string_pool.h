// Global string interning for Value. Every distinct string stored in a
// relation is kept once in a process-wide pool; Values carry a pointer to
// the pooled string. This makes Value trivially copyable (tuple copies are
// flat loops), equality a pointer compare, and hashing a pointer mix — the
// operations hash joins and set-semantics deduplication live on. Ordering
// dereferences the pooled bytes, preserving lexicographic semantics for
// the paper's "$1 < $2" subgoals.
#ifndef QF_RELATIONAL_STRING_POOL_H_
#define QF_RELATIONAL_STRING_POOL_H_

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace qf {

class StringPool {
 public:
  // The process-wide pool. Never destroyed (intentionally leaked, so
  // interned pointers stay valid through static destruction).
  static StringPool& Instance();

  // Returns the canonical pooled instance of `s`, interning it on first
  // sight. The returned pointer is stable for the process lifetime; two
  // equal strings always intern to the same pointer. Thread-safe.
  const std::string* Intern(std::string_view s);

  std::size_t size() const;

 private:
  StringPool() = default;

  mutable std::mutex mutex_;
  // deque: stable addresses under growth.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, const std::string*> ids_;
};

}  // namespace qf

#endif  // QF_RELATIONAL_STRING_POOL_H_
