// Schema: ordered, named columns of a relation. The data model is untyped
// (Datalog-style), so a schema is a list of distinct column names.
#ifndef QF_RELATIONAL_SCHEMA_H_
#define QF_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qf {

class Schema {
 public:
  Schema() = default;
  // Column names must be pairwise distinct; duplicates abort.
  explicit Schema(std::vector<std::string> columns);
  Schema(std::initializer_list<std::string> columns)
      : Schema(std::vector<std::string>(columns)) {}

  std::size_t arity() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& column(std::size_t i) const { return columns_[i]; }

  // Returns the index of `name`, or nullopt if absent.
  std::optional<std::size_t> IndexOf(std::string_view name) const;

  // Returns the index of `name`; aborts if absent.
  std::size_t IndexOfOrDie(std::string_view name) const;

  bool Contains(std::string_view name) const {
    return IndexOf(name).has_value();
  }

  // Renders "(c1, c2, ...)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<std::string> columns_;
};

}  // namespace qf

#endif  // QF_RELATIONAL_SCHEMA_H_
