#include "relational/schema.h"

#include <unordered_set>

#include "common/check.h"

namespace qf {

Schema::Schema(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& c : columns_) {
    QF_CHECK_MSG(seen.insert(c).second, "duplicate column name in schema");
  }
}

std::optional<std::size_t> Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return std::nullopt;
}

std::size_t Schema::IndexOfOrDie(std::string_view name) const {
  std::optional<std::size_t> i = IndexOf(name);
  QF_CHECK_MSG(i.has_value(), "column not found in schema");
  return *i;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i];
  }
  out += ")";
  return out;
}

}  // namespace qf
