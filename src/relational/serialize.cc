#include "relational/serialize.h"

#include <cstring>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace qf {

void PutU32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 4);
}

void PutU64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 8);
}

void PutI64(std::string& out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void PutValue(std::string& out, const Value& v) {
  out.push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kInt:
      PutI64(out, v.AsInt());
      break;
    case Value::Kind::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case Value::Kind::kString:
      PutString(out, v.AsString());
      break;
  }
}

bool ByteReader::Take(std::size_t n, const char** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::GetU32(std::uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::GetU64(std::uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::GetI64(std::int64_t* v) {
  std::uint64_t bits;
  if (!GetU64(&bits)) return false;
  *v = static_cast<std::int64_t>(bits);
  return true;
}

bool ByteReader::GetF64(double* v) {
  std::uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::GetString(std::string_view* s) {
  std::uint32_t len;
  if (!GetU32(&len)) return false;
  return GetBytes(len, s);
}

bool ByteReader::GetBytes(std::size_t n, std::string_view* s) {
  const char* p;
  if (!Take(n, &p)) return false;
  *s = std::string_view(p, n);
  return true;
}

bool ByteReader::GetValue(Value* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  switch (*p) {
    case static_cast<char>(Value::Kind::kInt): {
      std::int64_t i;
      if (!GetI64(&i)) return false;
      *v = Value(i);
      return true;
    }
    case static_cast<char>(Value::Kind::kDouble): {
      double d;
      if (!GetF64(&d)) return false;
      *v = Value(d);
      return true;
    }
    case static_cast<char>(Value::Kind::kString): {
      std::string_view s;
      if (!GetString(&s)) return false;
      *v = Value(s);
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

Status EncodeRelation(const Relation& rel, std::string& out,
                      QueryContext* ctx) {
  PutString(out, rel.name());
  PutU32(out, static_cast<std::uint32_t>(rel.arity()));
  for (std::size_t c = 0; c < rel.arity(); ++c) {
    PutString(out, rel.schema().column(c));
  }
  PutU64(out, rel.size());
  std::size_t since_poll = 0;
  for (const Tuple& t : rel.rows()) {
    if (ctx != nullptr && ++since_poll >= QueryContext::kPollStride) {
      since_poll = 0;
      if (!ctx->Poll()) return ctx->Check();
    }
    for (const Value& v : t) PutValue(out, v);
  }
  return Status::Ok();
}

Result<Relation> DecodeRelation(ByteReader& in, QueryContext* ctx) {
  auto corrupt = [&]() {
    return CorruptWalError("malformed relation record at byte " +
                           std::to_string(in.position()));
  };
  std::string_view name;
  std::uint32_t arity;
  if (!in.GetString(&name) || !in.GetU32(&arity)) return corrupt();
  // Arities beyond this are impossible in practice and only arise from
  // corrupt length fields; reject before allocating.
  if (arity > 4096) return corrupt();
  std::vector<std::string> columns;
  columns.reserve(arity);
  for (std::uint32_t c = 0; c < arity; ++c) {
    std::string_view col;
    if (!in.GetString(&col)) return corrupt();
    // Schema aborts on duplicate names; corrupt bytes must error instead.
    for (const std::string& prev : columns) {
      if (prev == col) return corrupt();
    }
    columns.emplace_back(col);
  }
  std::uint64_t n_rows;
  if (!in.GetU64(&n_rows)) return corrupt();
  // Every row costs at least one tag byte per column, so a row count the
  // remaining input cannot possibly hold is a corrupt length field —
  // reject before looping (a flipped high bit must not become a 2^60
  // iteration allocation loop). Arity-0 relations hold at most one row.
  std::uint64_t max_rows = arity == 0 ? 1 : in.remaining() / arity;
  if (n_rows > max_rows) return corrupt();
  Relation rel(std::string(name), Schema(std::move(columns)));
  std::size_t since_poll = 0;
  for (std::uint64_t r = 0; r < n_rows; ++r) {
    if (ctx != nullptr && ++since_poll >= QueryContext::kPollStride) {
      since_poll = 0;
      if (!ctx->Poll()) return ctx->Check();
    }
    Tuple t;
    t.reserve(arity);
    for (std::uint32_t c = 0; c < arity; ++c) {
      Value v;
      if (!in.GetValue(&v)) return corrupt();
      t.push_back(v);
    }
    rel.Add(std::move(t));
  }
  return rel;
}

}  // namespace qf
