// Relation: a named, schema-ed collection of tuples with set semantics.
//
// Section 2.3 of the paper fixes set semantics for the query language
// ("some of our claims would not hold for bag semantics"), so every operator
// in relational/ops.h produces duplicate-free output. Builders may append
// duplicates and call Dedup() once at the end, which the workload generators
// rely on.
#ifndef QF_RELATIONAL_RELATION_H_
#define QF_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace qf {

class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  std::size_t arity() const { return schema_.arity(); }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>& mutable_rows() { return rows_; }

  // Appends a tuple; aborts on arity mismatch. May introduce duplicates —
  // call Dedup() before handing the relation to set-semantics consumers.
  void Add(Tuple t);

  // Convenience for literals in tests: r.AddRow({Value(1), Value("a")}).
  void AddRow(std::initializer_list<Value> values);

  // Removes duplicate tuples in place; the first occurrence of each
  // tuple survives, in its original relative order.
  void Dedup();

  // True if `t` occurs in the relation (linear scan; intended for tests).
  bool Contains(const Tuple& t) const;

  // Sorts rows lexicographically; gives deterministic output for printing
  // and golden tests.
  void SortRows();

  // Renders up to `max_rows` rows, e.g. for example programs.
  std::string ToString(std::size_t max_rows = 20) const;

  // Delta-batch metadata (incremental evaluation; DESIGN.md §13). A
  // relation produced by AppendRelation carries the append generation
  // (`epoch`, 0 for a relation loaded whole) and the number of leading
  // rows shared verbatim with its predecessor (`base_rows`); the slice
  // [base_rows, size) is the relation's delta batch. In-memory only: the
  // catalog serializes rows, never these fields — lineage across the
  // durable path is tracked by shared_ptr identity (shell append chains),
  // not by epochs, so round-tripping through the WAL resets them to 0.
  std::uint64_t epoch() const { return epoch_; }
  std::size_t base_rows() const { return base_rows_; }
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  void set_base_rows(std::size_t n) { base_rows_ = n; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::uint64_t epoch_ = 0;
  std::size_t base_rows_ = 0;
};

// Set-semantics append: `base`'s rows followed by those rows of `delta`
// not already present, first-occurrence order (delta-internal duplicates
// collapse too). The result's leading base.size() rows are bit-identical
// to base's — the prefix stability incremental delta slices rely on — and
// it carries epoch = base.epoch()+1, base_rows = base.size(). Errors when
// the column names disagree; the relation names may differ (the result
// keeps base's name).
Result<Relation> AppendRelation(const Relation& base, const Relation& delta);

}  // namespace qf

#endif  // QF_RELATIONAL_RELATION_H_
