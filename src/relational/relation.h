// Relation: a named, schema-ed collection of tuples with set semantics.
//
// Section 2.3 of the paper fixes set semantics for the query language
// ("some of our claims would not hold for bag semantics"), so every operator
// in relational/ops.h produces duplicate-free output. Builders may append
// duplicates and call Dedup() once at the end, which the workload generators
// rely on.
#ifndef QF_RELATIONAL_RELATION_H_
#define QF_RELATIONAL_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace qf {

class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  std::size_t arity() const { return schema_.arity(); }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>& mutable_rows() { return rows_; }

  // Appends a tuple; aborts on arity mismatch. May introduce duplicates —
  // call Dedup() before handing the relation to set-semantics consumers.
  void Add(Tuple t);

  // Convenience for literals in tests: r.AddRow({Value(1), Value("a")}).
  void AddRow(std::initializer_list<Value> values);

  // Removes duplicate tuples in place; the first occurrence of each
  // tuple survives, in its original relative order.
  void Dedup();

  // True if `t` occurs in the relation (linear scan; intended for tests).
  bool Contains(const Tuple& t) const;

  // Sorts rows lexicographically; gives deterministic output for printing
  // and golden tests.
  void SortRows();

  // Renders up to `max_rows` rows, e.g. for example programs.
  std::string ToString(std::size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace qf

#endif  // QF_RELATIONAL_RELATION_H_
