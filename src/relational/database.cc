#include "relational/database.h"

#include "common/check.h"

namespace qf {

Status Database::AddRelation(Relation rel) {
  if (rel.name().empty()) {
    return InvalidArgumentError("relation must be named to enter a database");
  }
  std::string name = rel.name();
  auto [it, inserted] = relations_.emplace(
      name, std::make_shared<const Relation>(std::move(rel)));
  if (!inserted) {
    return AlreadyExistsError("relation already exists: " + name);
  }
  ++generation_;
  return Status::Ok();
}

void Database::PutRelation(Relation rel) {
  PutRelation(std::make_shared<const Relation>(std::move(rel)));
}

void Database::PutRelation(std::shared_ptr<const Relation> rel) {
  QF_CHECK_MSG(rel != nullptr && !rel->name().empty(),
               "relation must be named");
  std::string name = rel->name();
  relations_.insert_or_assign(std::move(name), std::move(rel));
  ++generation_;
}

bool Database::Has(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

const Relation& Database::Get(std::string_view name) const {
  auto it = relations_.find(name);
  QF_CHECK_MSG(it != relations_.end(), "relation not found in database");
  return *it->second;
}

std::shared_ptr<const Relation> Database::GetShared(
    std::string_view name) const {
  auto it = relations_.find(name);
  QF_CHECK_MSG(it != relations_.end(), "relation not found in database");
  return it->second;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace qf
