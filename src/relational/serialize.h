// Binary (de)serialization of relational state for the durable catalog
// (storage/): little-endian, length-prefixed, bounds-checked. The byte
// layout is deterministic — two Relations with equal schemas and equal
// row sequences encode to identical bytes, which the crash-recovery
// torture tests rely on for bit-for-bit oracle comparison.
//
// Encoding is *not* checksummed here; the WAL and snapshot framing
// (storage/wal.h, storage/catalog.h) add CRC32C around whole records.
// Decoders never trust lengths: every read is bounds-checked against the
// remaining input and a malformed buffer yields CORRUPT_WAL, never UB —
// the recovery fuzzer feeds bit-flipped records straight in here.
#ifndef QF_RELATIONAL_SERIALIZE_H_
#define QF_RELATIONAL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/resource.h"
#include "common/status.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace qf {

// --- primitive writers (append to `out`) ---
void PutU32(std::string& out, std::uint32_t v);
void PutU64(std::string& out, std::uint64_t v);
void PutI64(std::string& out, std::int64_t v);
void PutF64(std::string& out, double v);
// u32 length prefix + bytes.
void PutString(std::string& out, std::string_view s);
void PutValue(std::string& out, const Value& v);

// --- bounds-checked reader ---
// All Get* methods return false (and leave outputs unspecified) once the
// input is exhausted or malformed; `ok()` stays false from then on.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  bool GetU32(std::uint32_t* v);
  bool GetU64(std::uint64_t* v);
  bool GetI64(std::int64_t* v);
  bool GetF64(double* v);
  bool GetString(std::string_view* s);
  bool GetValue(Value* v);
  // Raw view of the next `n` bytes.
  bool GetBytes(std::size_t n, std::string_view* s);

 private:
  bool Take(std::size_t n, const char** p);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Appends `rel` (name, schema, rows in stored order) to `out`. Polls
// `ctx` every QueryContext::kPollStride rows so snapshotting a huge
// relation stays interruptible; returns the governor's typed status on
// abort (with `out` in an unspecified, discardable state).
Status EncodeRelation(const Relation& rel, std::string& out,
                      QueryContext* ctx = nullptr);

// Decodes one relation from `in` (advancing it). Malformed input yields
// CORRUPT_WAL; a tripped governor yields its typed status.
Result<Relation> DecodeRelation(ByteReader& in, QueryContext* ctx = nullptr);

}  // namespace qf

#endif  // QF_RELATIONAL_SERIALIZE_H_
