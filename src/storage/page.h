// Paged columnar relation files — the out-of-core relation format behind
// the Vfs seam.
//
// Why: the catalog snapshot used to hold every relation inline, so a
// checkpoint encoded the whole database into one contiguous string and a
// reopen decoded it back — both O(database) in memory and unverifiable at
// any granularity finer than the whole file. A paged sidecar file stores
// one relation as fixed-target-size pages of *column segments*, each page
// independently CRC32C-framed, so writers stream (bounded scratch),
// readers stream (one page resident at a time, optionally cached by the
// buffer pool), and corruption is detected per page with a typed error.
//
// File layout ("QFPAGE01"):
//
//   [8B magic]
//   page 0: [u32 payload_len][u32 masked CRC32C][payload]
//   page 1: ...
//   directory: [u32 len][u32 masked CRC32C][payload]
//   footer (20B): [u64 directory_offset][u32 masked CRC32C of those 8
//                 bytes][8B magic]
//
// A page payload is `u32 n_rows` followed by the relation's columns in
// schema order, each column a run of n_rows PutValue-encoded values —
// columnar within the page, so per-column scans touch contiguous bytes.
// The directory payload carries the relation name, schema, row count, and
// one {file_offset, framed_len, first_row} entry per page. Readers locate
// the footer with Vfs::FileSize, so the format needs no separate index
// file.
//
// Durability: WritePagedRelation syncs the file before returning; callers
// (the catalog) sync the *directory* and only then publish a reference to
// the file — the standard write-then-rename-era ordering, here
// write-then-snapshot-rotation.
#ifndef QF_STORAGE_PAGE_H_
#define QF_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "relational/relation.h"

namespace qf {

class BufferPool;

inline constexpr char kPageMagic[] = "QFPAGE01";  // 8 bytes, both ends
inline constexpr std::size_t kPageMagicLen = 8;
inline constexpr std::size_t kPageFooterLen = 8 + 4 + kPageMagicLen;
// Target encoded payload bytes per page; the last page of a relation and
// any single oversized row may be smaller/larger.
inline constexpr std::size_t kDefaultPageBytes = 64 * 1024;

struct PagedWriteInfo {
  std::uint64_t pages = 0;
  std::uint64_t bytes = 0;  // total file size
};

// Writes `rel` (name, schema, rows in stored order) to `path` as a paged
// file, replacing any existing file. Streams: peak scratch is one page.
// The file is fsynced before returning OK. Governor-pollable.
Result<PagedWriteInfo> WritePagedRelation(
    Vfs& vfs, const std::string& path, const Relation& rel,
    QueryContext* ctx = nullptr, std::size_t page_bytes = kDefaultPageBytes);

// One decoded page, shaped for the buffer pool: immutable after load.
struct RelationPage {
  std::vector<Tuple> rows;
  std::uint64_t bytes = 0;  // accounting charge (ApproxTupleBytes sum)
};

// A paged relation file opened for reading. Construction reads and
// verifies only the footer and directory; pages load on demand. When a
// BufferPool is supplied, page loads go through it (shared, cached,
// pinned while in use); otherwise each load reads directly via the Vfs.
class DiskRelation {
 public:
  static Result<std::unique_ptr<DiskRelation>> Open(
      Vfs& vfs, std::string path, BufferPool* pool = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::uint64_t row_count() const { return row_count_; }
  std::uint64_t page_count() const { return pages_.size(); }
  const std::string& path() const { return path_; }

  // Loads and verifies one page (CRC + row-count cross-check). The result
  // is immutable and possibly shared with the buffer pool. While the
  // caller holds the returned pointer the page stays pinned in the pool.
  Result<std::shared_ptr<const RelationPage>> ReadPage(
      std::size_t index, QueryContext* ctx = nullptr) const;

  // Streams every row in stored order, one page resident at a time.
  Status Scan(const std::function<Status(const Tuple&)>& fn,
              QueryContext* ctx = nullptr) const;

  // Materializes the whole relation (name and schema set). Charges `ctx`
  // for the output like any operator; the caller owns the bytes.
  Result<Relation> ReadAll(QueryContext* ctx = nullptr) const;

 private:
  struct PageEntry {
    std::uint64_t offset = 0;     // file offset of the frame header
    std::uint32_t stored_len = 0; // framed bytes (header + payload)
    std::uint64_t first_row = 0;
  };

  DiskRelation(Vfs& vfs, std::string path, BufferPool* pool)
      : vfs_(&vfs), path_(std::move(path)), pool_(pool) {}

  // Reads page `index` from disk, bypassing the pool.
  Result<std::shared_ptr<const RelationPage>> FetchPage(
      std::size_t index) const;

  Vfs* vfs_;
  std::string path_;
  BufferPool* pool_;
  std::string name_;
  Schema schema_;
  std::uint64_t row_count_ = 0;
  std::vector<PageEntry> pages_;
};

}  // namespace qf

#endif  // QF_STORAGE_PAGE_H_
