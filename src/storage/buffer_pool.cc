#include "storage/buffer_pool.h"

namespace qf {

BufferPool::PageRef& BufferPool::PageRef::operator=(
    PageRef&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = std::move(other.data_);
    ctx_ = other.ctx_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.ctx_ = nullptr;
  }
  return *this;
}

void BufferPool::PageRef::Reset() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->Unpin(frame_);
  }
  if (ctx_ != nullptr && data_ != nullptr) {
    ctx_->Release(data_->bytes);
  }
  pool_ = nullptr;
  frame_ = nullptr;
  ctx_ = nullptr;
  data_.reset();
}

Result<BufferPool::PageRef> BufferPool::Pin(const std::string& file,
                                            std::uint64_t page,
                                            const FetchFn& fetch,
                                            QueryContext* ctx) {
  const std::string key = file + "#" + std::to_string(page);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  Frame* frame = nullptr;
  if (it != index_.end()) {
    ++stats_.hits;
    frame = &*it->second;
    frame->referenced = true;
    ++frame->pins;
  } else {
    ++stats_.misses;
    // Fetch under the lock: simple, and a second pinner of the same page
    // cannot race a duplicate load.
    Result<std::shared_ptr<const RelationPage>> data = fetch();
    if (!data.ok()) return data.status();
    EvictFor((*data)->bytes);
    frames_.push_back(Frame{key, *data, (*data)->bytes, /*pins=*/1,
                            /*referenced=*/true, /*mapped=*/true});
    auto inserted = std::prev(frames_.end());
    index_[key] = inserted;
    if (hand_ == frames_.end()) hand_ = inserted;
    stats_.resident_bytes += (*data)->bytes;
    ++stats_.resident_pages;
    frame = &*inserted;
  }
  // Governed pins charge the statement for the page while held. The
  // charge may trip the budget — surface that as the pool does not
  // admit the pin (the page itself stays cached for others).
  if (ctx != nullptr) {
    ctx->Charge(frame->data->bytes);
    if (Status s = ctx->Check(); !s.ok()) {
      ctx->Release(frame->data->bytes);
      --frame->pins;
      return s;
    }
  }
  PageRef ref;
  ref.pool_ = this;
  ref.frame_ = frame;
  ref.data_ = frame->data;
  ref.ctx_ = ctx;
  return ref;
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  --frame->pins;
  frame->referenced = true;
}

void BufferPool::Erase(std::list<Frame>::iterator it) {
  if (it->mapped) index_.erase(it->key);
  stats_.resident_bytes -= it->bytes;
  --stats_.resident_pages;
  if (hand_ == it) ++hand_;
  frames_.erase(it);
  if (hand_ == frames_.end() && !frames_.empty()) hand_ = frames_.begin();
}

void BufferPool::EvictFor(std::uint64_t incoming_bytes) {
  if (frames_.empty()) return;
  // Clock sweep: each resident frame gets one second chance (its
  // referenced bit) per lap. Two full laps bound the sweep — after the
  // first lap every unpinned frame's bit is clear, so the second lap
  // either evicts or proves everything is pinned.
  std::size_t budget = frames_.size() * 2;
  while (stats_.resident_bytes + incoming_bytes > capacity_bytes_ &&
         budget-- > 0 && !frames_.empty()) {
    if (hand_ == frames_.end()) hand_ = frames_.begin();
    std::list<Frame>::iterator it = hand_;
    if (it->pins > 0) {
      ++hand_;
      continue;
    }
    if (!it->mapped) {
      // Invalidated leftover: reclaim regardless of its bit.
      Erase(it);
      continue;
    }
    if (it->referenced) {
      it->referenced = false;
      ++hand_;
      continue;
    }
    ++stats_.evictions;
    Erase(it);
  }
}

void BufferPool::InvalidateFile(const std::string& file) {
  const std::string prefix = file + "#";
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = index_.lower_bound(prefix);
       it != index_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       it = index_.erase(it)) {
    Frame& f = *it->second;
    f.mapped = false;
    if (f.pins == 0) {
      // Free now; pinned frames linger (their holders keep valid data)
      // and are reclaimed by a later sweep.
      std::list<Frame>::iterator victim = it->second;
      stats_.resident_bytes -= victim->bytes;
      --stats_.resident_pages;
      if (hand_ == victim) ++hand_;
      frames_.erase(victim);
      if (hand_ == frames_.end() && !frames_.empty()) {
        hand_ = frames_.begin();
      }
    }
  }
}

void BufferPool::set_capacity_bytes(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = bytes;
  EvictFor(0);
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BufferPoolStats s = stats_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

}  // namespace qf
