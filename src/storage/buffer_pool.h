// Buffer pool: a bounded cache of decoded relation pages with clock
// (second-chance) replacement.
//
// Pages are keyed by (file path, page index). A Pin either hits the cache
// or invokes the caller's fetch function, then returns a shared handle;
// while any handle to a page is alive the page cannot be evicted. The
// clock replacer gives every resident page one "recently referenced" bit:
// eviction sweeps the frames in admission order, clearing set bits, and
// evicts the first unpinned frame whose bit is already clear — LRU-like
// behavior at O(1) state per page. When every frame is pinned the pool
// admits past capacity rather than failing: a pin is a promise.
//
// Accounting: `stats().resident_bytes` is the pool's own footprint.
// Additionally, each Pin charges the pinning statement's QueryContext for
// the page's bytes and releases on unpin — governed statements see the
// pages they actively hold, so a scan over a paged relation participates
// in the same budget (and spill-activation) arithmetic as any operator.
//
// Concurrency: one mutex guards the whole pool (frame map, clock, stats).
// Fetches run under the lock — simple and TSan-clean; the pool serves
// catalog open and shell scans, not a parallel inner loop. Handles only
// touch the pool in their destructor.
#ifndef QF_STORAGE_BUFFER_POOL_H_
#define QF_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/resource.h"
#include "common/status.h"
#include "storage/page.h"

namespace qf {

struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_pages = 0;
  std::uint64_t capacity_bytes = 0;
};

class BufferPool {
 public:
  class PageRef;

  // One resident page. Nested (not namespace scope) so the name cannot
  // collide with unrelated Frame types elsewhere; treat as opaque outside
  // buffer_pool.cc.
  struct Frame {
    std::string key;
    std::shared_ptr<const RelationPage> data;
    std::uint64_t bytes = 0;
    int pins = 0;
    bool referenced = false;
    // False once InvalidateFile unmapped the frame: it is no longer in
    // the index (future pins refetch) and is reclaimed by the next
    // eviction sweep that finds it unpinned.
    bool mapped = true;
  };

  using FetchFn =
      std::function<Result<std::shared_ptr<const RelationPage>>()>;

  explicit BufferPool(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  // Returns a pinned handle to (file, page), fetching on miss. On a
  // governed pin the page's bytes are charged to `ctx` until the handle
  // dies. A fetch error is returned verbatim and caches nothing.
  Result<PageRef> Pin(const std::string& file, std::uint64_t page,
                      const FetchFn& fetch, QueryContext* ctx = nullptr);

  // Drops every unpinned frame of `file` (the file is being replaced or
  // deleted). Pinned frames survive — their holders keep valid data — but
  // are unmapped, so future pins refetch.
  void InvalidateFile(const std::string& file);

  // Runtime resize (SET BUFFER). Shrinking evicts unpinned frames down to
  // the new capacity on the next pin.
  void set_capacity_bytes(std::uint64_t bytes);
  BufferPoolStats stats() const;

  // RAII pin. Movable, not copyable; unpins (and releases the context
  // charge) on destruction.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { Reset(); }

    const std::shared_ptr<const RelationPage>& page() const { return data_; }
    void Reset();

   private:
    friend class BufferPool;
    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
    std::shared_ptr<const RelationPage> data_;
    QueryContext* ctx_ = nullptr;
  };

 private:
  friend class PageRef;

  void Unpin(Frame* frame);
  // Evicts unpinned frames (clock order) until resident bytes + incoming
  // fit capacity or nothing more is evictable. Caller holds the mutex.
  void EvictFor(std::uint64_t incoming_bytes);
  // Erases one frame from the clock, keeping the hand valid. Caller holds
  // the mutex; the frame must be unpinned.
  void Erase(std::list<Frame>::iterator it);

  mutable std::mutex mutex_;
  std::uint64_t capacity_bytes_;
  // Admission-ordered frame ring (the clock); the map indexes it by key.
  // std::list: frame addresses are stable, so PageRef can hold Frame*.
  std::list<Frame> frames_;
  std::map<std::string, std::list<Frame>::iterator> index_;
  std::list<Frame>::iterator hand_ = frames_.end();
  BufferPoolStats stats_;
};

}  // namespace qf

#endif  // QF_STORAGE_BUFFER_POOL_H_
