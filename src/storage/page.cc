#include "storage/page.h"

#include <utility>

#include "common/crc32c.h"
#include "relational/serialize.h"
#include "storage/buffer_pool.h"

namespace qf {
namespace {

// Frames `payload` as [u32 len][u32 masked CRC32C][payload].
void AppendFramed(std::string& out, std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32cMask(Crc32c(payload)));
  out.append(payload.data(), payload.size());
}

// Verifies and strips a frame read from `file_bytes` at its start.
Result<std::string_view> ParseFramed(std::string_view framed,
                                     const std::string& path,
                                     const char* what) {
  ByteReader in(framed);
  std::uint32_t len = 0;
  std::uint32_t masked = 0;
  std::string_view payload;
  if (!in.GetU32(&len) || !in.GetU32(&masked) || !in.GetBytes(len, &payload)) {
    return IoError(std::string("paged relation: truncated ") + what + " in " +
                   path);
  }
  if (Crc32c(payload) != Crc32cUnmask(masked)) {
    return IoError(std::string("paged relation: checksum mismatch in ") +
                   what + " of " + path);
  }
  return payload;
}

}  // namespace

Result<PagedWriteInfo> WritePagedRelation(Vfs& vfs, const std::string& path,
                                          const Relation& rel,
                                          QueryContext* ctx,
                                          std::size_t page_bytes) {
  Result<std::unique_ptr<WritableFile>> file = vfs.OpenTrunc(path);
  if (!file.ok()) return file.status();

  PagedWriteInfo info;
  std::uint64_t offset = 0;
  auto write = [&](std::string_view bytes) -> Status {
    Status s = (*file)->Append(bytes);
    if (s.ok()) offset += bytes.size();
    return s;
  };
  if (Status s = write(std::string_view(kPageMagic, kPageMagicLen)); !s.ok()) {
    return s;
  }

  const std::size_t arity = rel.arity();
  // Per-column scratch for the page being accumulated; flushed when the
  // combined encoded size reaches the target.
  std::vector<std::string> cols(arity);
  std::size_t pending_rows = 0;
  std::uint64_t first_row = 0;
  std::string frame;
  std::string dir_payload;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> page_frames;
  std::vector<std::uint64_t> page_first_rows;

  auto flush_page = [&]() -> Status {
    if (pending_rows == 0) return Status::Ok();
    frame.clear();
    std::string payload;
    PutU32(payload, static_cast<std::uint32_t>(pending_rows));
    for (std::string& c : cols) {
      payload += c;
      c.clear();
    }
    AppendFramed(frame, payload);
    std::uint64_t page_offset = offset;
    if (Status s = write(frame); !s.ok()) return s;
    page_frames.emplace_back(page_offset,
                             static_cast<std::uint32_t>(frame.size()));
    page_first_rows.push_back(first_row);
    first_row += pending_rows;
    pending_rows = 0;
    ++info.pages;
    return Status::Ok();
  };

  for (std::size_t r = 0; r < rel.size(); ++r) {
    if (ctx != nullptr && r % QueryContext::kPollStride == 0 &&
        !ctx->Poll()) {
      return ctx->Check();
    }
    const Tuple& row = rel.rows()[r];
    std::size_t encoded = 0;
    for (std::size_t c = 0; c < arity; ++c) {
      PutValue(cols[c], row[c]);
      encoded += cols[c].size();
    }
    ++pending_rows;
    if (encoded >= page_bytes) {
      if (Status s = flush_page(); !s.ok()) return s;
    }
  }
  if (Status s = flush_page(); !s.ok()) return s;

  // Directory.
  PutString(dir_payload, rel.name());
  PutU32(dir_payload, static_cast<std::uint32_t>(arity));
  for (const std::string& c : rel.schema().columns()) {
    PutString(dir_payload, c);
  }
  PutU64(dir_payload, static_cast<std::uint64_t>(rel.size()));
  PutU32(dir_payload, static_cast<std::uint32_t>(page_frames.size()));
  for (std::size_t i = 0; i < page_frames.size(); ++i) {
    PutU64(dir_payload, page_frames[i].first);
    PutU32(dir_payload, page_frames[i].second);
    PutU64(dir_payload, page_first_rows[i]);
  }
  std::uint64_t dir_offset = offset;
  frame.clear();
  AppendFramed(frame, dir_payload);
  if (Status s = write(frame); !s.ok()) return s;

  // Footer: fixed-size, so readers find the directory from FileSize.
  std::string footer;
  std::string offset_bytes;
  PutU64(offset_bytes, dir_offset);
  footer += offset_bytes;
  PutU32(footer, Crc32cMask(Crc32c(offset_bytes)));
  footer.append(kPageMagic, kPageMagicLen);
  if (Status s = write(footer); !s.ok()) return s;

  if (Status s = (*file)->Sync(); !s.ok()) return s;
  if (Status s = (*file)->Close(); !s.ok()) return s;
  info.bytes = offset;
  return info;
}

Result<std::unique_ptr<DiskRelation>> DiskRelation::Open(Vfs& vfs,
                                                         std::string path,
                                                         BufferPool* pool) {
  std::unique_ptr<DiskRelation> rel(
      new DiskRelation(vfs, std::move(path), pool));
  const std::string& p = rel->path_;

  Result<std::uint64_t> size = vfs.FileSize(p);
  if (!size.ok()) return size.status();
  if (*size < kPageMagicLen + kPageFooterLen) {
    return IoError("paged relation: file too short: " + p);
  }
  Result<std::string> head = vfs.ReadAt(p, 0, kPageMagicLen);
  if (!head.ok()) return head.status();
  if (*head != std::string_view(kPageMagic, kPageMagicLen)) {
    return IoError("paged relation: bad magic in " + p);
  }
  Result<std::string> footer =
      vfs.ReadAt(p, *size - kPageFooterLen, kPageFooterLen);
  if (!footer.ok()) return footer.status();
  ByteReader f(*footer);
  std::string_view offset_bytes;
  std::uint32_t masked = 0;
  std::string_view tail_magic;
  if (!f.GetBytes(8, &offset_bytes) || !f.GetU32(&masked) ||
      !f.GetBytes(kPageMagicLen, &tail_magic) ||
      tail_magic != std::string_view(kPageMagic, kPageMagicLen)) {
    return IoError("paged relation: bad footer in " + p);
  }
  if (Crc32c(offset_bytes) != Crc32cUnmask(masked)) {
    return IoError("paged relation: footer checksum mismatch in " + p);
  }
  ByteReader ob(offset_bytes);
  std::uint64_t dir_offset = 0;
  ob.GetU64(&dir_offset);
  if (dir_offset < kPageMagicLen || dir_offset >= *size - kPageFooterLen) {
    return IoError("paged relation: directory offset out of range in " + p);
  }

  Result<std::string> dir_framed =
      vfs.ReadAt(p, dir_offset, *size - kPageFooterLen - dir_offset);
  if (!dir_framed.ok()) return dir_framed.status();
  Result<std::string_view> dir_payload =
      ParseFramed(*dir_framed, p, "directory");
  if (!dir_payload.ok()) return dir_payload.status();

  ByteReader d(*dir_payload);
  std::string_view name;
  std::uint32_t arity = 0;
  if (!d.GetString(&name) || !d.GetU32(&arity)) {
    return IoError("paged relation: malformed directory in " + p);
  }
  std::vector<std::string> columns;
  columns.reserve(arity);
  for (std::uint32_t i = 0; i < arity; ++i) {
    std::string_view col;
    if (!d.GetString(&col)) {
      return IoError("paged relation: malformed directory in " + p);
    }
    columns.emplace_back(col);
  }
  std::uint32_t n_pages = 0;
  if (!d.GetU64(&rel->row_count_) || !d.GetU32(&n_pages)) {
    return IoError("paged relation: malformed directory in " + p);
  }
  rel->pages_.reserve(n_pages);
  // Offsets must land inside the data region and first_row must start at
  // zero and never decrease; exact per-page row counts are cross-checked
  // against the decoded payload in ReadPage.
  std::uint64_t prev_first = 0;
  for (std::uint32_t i = 0; i < n_pages; ++i) {
    PageEntry e;
    if (!d.GetU64(&e.offset) || !d.GetU32(&e.stored_len) ||
        !d.GetU64(&e.first_row)) {
      return IoError("paged relation: malformed page table in " + p);
    }
    if (e.offset < kPageMagicLen || e.offset + e.stored_len > dir_offset ||
        (i == 0 ? e.first_row != 0 : e.first_row < prev_first)) {
      return IoError("paged relation: inconsistent page table in " + p);
    }
    prev_first = e.first_row;
    rel->pages_.push_back(e);
  }
  if (!d.AtEnd()) {
    return IoError("paged relation: trailing directory bytes in " + p);
  }
  rel->name_ = std::string(name);
  rel->schema_ = Schema(std::move(columns));
  return rel;
}

Result<std::shared_ptr<const RelationPage>> DiskRelation::FetchPage(
    std::size_t index) const {
  const PageEntry& e = pages_[index];
  Result<std::string> framed = vfs_->ReadAt(path_, e.offset, e.stored_len);
  if (!framed.ok()) return framed.status();
  if (framed->size() != e.stored_len) {
    return IoError("paged relation: short page read in " + path_);
  }
  Result<std::string_view> payload = ParseFramed(*framed, path_, "page");
  if (!payload.ok()) return payload.status();

  ByteReader in(*payload);
  std::uint32_t n_rows = 0;
  if (!in.GetU32(&n_rows)) {
    return IoError("paged relation: malformed page in " + path_);
  }
  auto page = std::make_shared<RelationPage>();
  page->rows.assign(n_rows, Tuple());
  const std::size_t arity = schema_.arity();
  for (std::uint32_t r = 0; r < n_rows; ++r) page->rows[r].reserve(arity);
  // Columnar: each column is a contiguous run of n_rows values.
  for (std::size_t c = 0; c < arity; ++c) {
    for (std::uint32_t r = 0; r < n_rows; ++r) {
      Value v;
      if (!in.GetValue(&v)) {
        return IoError("paged relation: malformed page in " + path_);
      }
      page->rows[r].push_back(std::move(v));
    }
  }
  if (!in.AtEnd()) {
    return IoError("paged relation: trailing page bytes in " + path_);
  }
  std::uint64_t expect =
      (index + 1 < pages_.size() ? pages_[index + 1].first_row
                                 : row_count_) -
      e.first_row;
  if (n_rows != expect) {
    return IoError("paged relation: page row count mismatch in " + path_);
  }
  page->bytes = static_cast<std::uint64_t>(n_rows) * ApproxTupleBytes(arity);
  return std::shared_ptr<const RelationPage>(std::move(page));
}

Result<std::shared_ptr<const RelationPage>> DiskRelation::ReadPage(
    std::size_t index, QueryContext* ctx) const {
  if (index >= pages_.size()) {
    return InvalidArgumentError("page index out of range");
  }
  if (pool_ == nullptr) {
    return FetchPage(index);
  }
  Result<BufferPool::PageRef> ref = pool_->Pin(
      path_, index, [this, index]() { return FetchPage(index); }, ctx);
  if (!ref.ok()) return ref.status();
  // The shared_ptr outlives the ref: the pool frame holds the page alive
  // (and on eviction the caller's copy keeps the data valid).
  return ref->page();
}

Status DiskRelation::Scan(const std::function<Status(const Tuple&)>& fn,
                          QueryContext* ctx) const {
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    Result<std::shared_ptr<const RelationPage>> page = ReadPage(i, ctx);
    if (!page.ok()) return page.status();
    for (const Tuple& row : (*page)->rows) {
      if (Status s = fn(row); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

Result<Relation> DiskRelation::ReadAll(QueryContext* ctx) const {
  Relation out{schema_};
  out.mutable_rows().reserve(row_count_);
  OpGovernor gov(ctx, ApproxTupleBytes(schema_.arity()));
  Status admit;
  Status scan = Scan(
      [&](const Tuple& row) {
        if (!gov.Admit()) {
          admit = ctx != nullptr ? ctx->Check()
                                 : InternalError("governor tripped");
          return admit;
        }
        out.Add(row);
        return Status::Ok();
      },
      ctx);
  gov.Flush();
  if (!scan.ok()) return scan;
  if (ctx != nullptr) {
    if (Status s = ctx->Check(); !s.ok()) return s;
  }
  if (out.size() != row_count_) {
    return IoError("paged relation: row count mismatch in " + path_);
  }
  out.set_name(name_);
  return out;
}

}  // namespace qf
