#include "storage/wal.h"

#include <utility>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "relational/serialize.h"

namespace qf {

namespace {
constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 masked crc
}  // namespace

void AppendWalFrame(std::string& out, std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32cMask(Crc32c(payload)));
  out.append(payload);
}

WalReadResult ParseWal(std::string_view data) {
  WalReadResult out;
  std::size_t pos = 0;
  while (data.size() - pos >= kFrameHeaderBytes) {
    ByteReader header(data.substr(pos, kFrameHeaderBytes));
    std::uint32_t len = 0;
    std::uint32_t masked_crc = 0;
    header.GetU32(&len);
    header.GetU32(&masked_crc);
    if (data.size() - pos - kFrameHeaderBytes < len) break;  // torn payload
    std::string_view payload = data.substr(pos + kFrameHeaderBytes, len);
    if (Crc32c(payload) != Crc32cUnmask(masked_crc)) break;  // corrupt
    out.payloads.emplace_back(payload);
    pos += kFrameHeaderBytes + len;
  }
  out.valid_bytes = pos;
  out.dropped_bytes = data.size() - pos;
  return out;
}

Result<WalReadResult> ReadWal(Vfs& vfs, const std::string& path) {
  if (!vfs.Exists(path)) return WalReadResult{};
  Result<std::string> data = vfs.ReadFile(path);
  if (!data.ok()) return data.status();
  return ParseWal(*data);
}

WalWriter::WalWriter(Vfs& vfs, std::string path, StorageStats* stats)
    : vfs_(vfs), path_(std::move(path)), stats_(stats) {}

Status WalWriter::Open() {
  Result<std::unique_ptr<WritableFile>> file = vfs_.OpenAppend(path_);
  if (!file.ok()) return file.status();
  // The open may have created the file, and fsyncing record content does
  // not make the *directory entry* durable: without a dir fsync here a
  // crash could drop the entire log even though every commit synced.
  if (Status s = vfs_.SyncDir(VfsDirName(path_)); !s.ok()) return s;
  if (stats_ != nullptr) ++stats_->fsyncs;
  file_ = std::move(*file);
  return Status::Ok();
}

Status WalWriter::ReplaceWith(const std::string& content) {
  file_.reset();
  // Never truncate the live log in place: POSIX gives no ordering between
  // an O_TRUNC reaching stable storage and the rewritten bytes doing so,
  // so a crash (or ENOSPC) in that window would destroy the valid prefix
  // and with it acknowledged commits. Temp + fsync + rename + dir fsync
  // keeps the old log intact until the new one is fully durable.
  if (Status s = AtomicWriteFile(vfs_, path_, content); !s.ok()) return s;
  Result<std::unique_ptr<WritableFile>> file = vfs_.OpenAppend(path_);
  if (!file.ok()) return file.status();
  if (stats_ != nullptr) stats_->fsyncs += 2;  // AtomicWriteFile's pair
  file_ = std::move(*file);
  return Status::Ok();
}

Status WalWriter::Reset() { return ReplaceWith(std::string()); }

Status WalWriter::Rewrite(const std::vector<std::string>& payloads) {
  std::string content;
  for (const std::string& payload : payloads) {
    AppendWalFrame(content, payload);
  }
  return ReplaceWith(content);
}

Status WalWriter::Append(const std::vector<std::string>& payloads) {
  if (file_ == nullptr) {
    return FailedPreconditionError("WAL writer is not open: " + path_);
  }
  std::string batch;
  for (const std::string& payload : payloads) {
    AppendWalFrame(batch, payload);
  }
  if (Status s = file_->Append(batch); !s.ok()) return s;
  std::uint64_t t0 = MetricsNowNs();
  if (Status s = file_->Sync(); !s.ok()) return s;
  if (stats_ != nullptr) {
    stats_->wal_sync_ns += MetricsNowNs() - t0;
    ++stats_->fsyncs;
    stats_->wal_records += payloads.size();
    stats_->wal_bytes += batch.size();
  }
  return Status::Ok();
}

}  // namespace qf
