// Durable catalog: the named relations, intermediate-predicate rules,
// flock definitions, and session knobs of a query-flocks session,
// persisted so that no acknowledged statement is ever silently lost or
// half-applied across a crash (the mining-inside-the-DBMS assumption —
// mined relations and session state survive interactive sessions).
//
// Persistence = checksummed snapshot + write-ahead log, in one directory:
//
//   <dir>/catalog.snap   snapshot: "QFSNAP01" magic, u32 payload length,
//                        u32 masked CRC32C, payload = u64 last-applied
//                        LSN + EncodeCatalogState bytes. Rotated via
//                        catalog.snap.tmp + fsync + rename + dir fsync.
//   <dir>/catalog.wal    frames (storage/wal.h); each frame payload is
//                        one *commit*: u64 LSN, u32 record count, then
//                        that many length-prefixed records (u8 type +
//                        body each). A multi-record commit shares one
//                        frame and one CRC, so it is all-or-nothing
//                        across a torn write.
//
// Commit protocol: a mutation is encoded, appended to the WAL, fsynced,
// and only then applied in memory and acknowledged. The in-memory apply
// *decodes the very bytes that were logged*, so replay is the same code
// path as the original execution — what the WAL holds is exactly what
// recovery rebuilds.
//
// Recovery (Open): load + verify the snapshot (corrupt snapshot =>
// CORRUPT_WAL error, nothing is guessed), then replay WAL records with
// LSN > snapshot LSN. The first torn or checksum-failing record truncates
// the log (crash artifact — see wal.h); a record that checksums but does
// not decode also truncates, and the file is rewritten to the valid
// prefix so future commits append after good bytes. LSNs make the
// snapshot-then-truncate rotation crash-safe at every intermediate point:
// stale records (LSN <= snapshot) replay as no-ops.
//
// Failure containment: after any I/O error on the commit path the
// catalog latches read-only — further mutations return the latched
// IO_ERROR (the WAL tail may be torn; appending after it would orphan
// later commits). Reopening the directory recovers the acknowledged
// prefix. Long replays and snapshot encodes poll the resource governor,
// so recovery of a huge catalog is still interruptible.
#ifndef QF_STORAGE_CATALOG_H_
#define QF_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "optimizer/history.h"
#include "relational/database.h"
#include "storage/wal.h"

namespace qf {

class BufferPool;

// Everything the catalog makes durable. Plain value type so tests can
// keep in-memory oracles and compare bit-for-bit via EncodeCatalogState.
struct CatalogState {
  Database db;
  // DEFINE sources, in definition order (order matters for validation).
  std::vector<std::string> rules;
  // Flock name -> declaration source ("<name> QUERY ... FILTER ...",
  // minus the name; re-parsed by the shell on adoption).
  std::map<std::string, std::string> flocks;
  // Session knobs ("THREADS", "TIMEOUT_MS", "MEMORY_MB").
  std::map<std::string, std::int64_t> knobs;
  // Learned-optimizer outcome history (optimizer/history.h): one
  // kBanditOutcome WAL record per learned RUN, folded into aggregates.
  OutcomeHistory bandit;
};

// Deterministic encoding of `state` (relations in name order, rows in
// stored order). Equal states encode to identical bytes — the oracle
// comparison the crash-recovery tests rely on. Governor-pollable.
Result<std::string> EncodeCatalogState(const CatalogState& state,
                                       QueryContext* ctx = nullptr);
Result<CatalogState> DecodeCatalogState(std::string_view bytes,
                                        QueryContext* ctx = nullptr);

// Out-of-core knobs for a catalog (all defaults preserve the original
// all-inline behavior for existing data sets).
struct CatalogOptions {
  // A relation whose estimated footprint (rows * ApproxTupleBytes) meets
  // this threshold is checkpointed as a paged sidecar file under
  // <dir>/pages/ (storage/page.h) instead of inline snapshot bytes; the
  // snapshot then uses the "QFSNAP02" layout with a per-relation stub.
  // Relations whose names are not clean file names ([A-Za-z0-9_]) stay
  // inline regardless of size.
  std::uint64_t paged_threshold_bytes = 256 * 1024;
  // When set, paged relations are read back through this pool at Open
  // (shared page cache); null reads directly.
  BufferPool* pool = nullptr;
};

class Catalog {
 public:
  struct OpenInfo {
    bool snapshot_loaded = false;
    std::uint64_t snapshot_lsn = 0;
    std::uint64_t replayed_records = 0;  // applied (LSN > snapshot)
    std::uint64_t skipped_records = 0;   // stale (LSN <= snapshot)
    std::uint64_t truncated_bytes = 0;   // torn/corrupt tail dropped
    std::uint64_t paged_relations = 0;   // stubs resolved from page files
    std::uint64_t orphans_removed = 0;   // stale page + spill files swept
    double replay_ms = 0.0;
  };

  // Opens (creating if needed) the catalog in `dir`, recovering state
  // from snapshot + WAL. Returns CORRUPT_WAL for an unreadable snapshot,
  // IO_ERROR for OS failures, and the governor's typed status if `ctx`
  // trips mid-recovery. Unreferenced page files and orphaned spill files
  // under the directory are swept (crash leftovers; best-effort).
  static Result<std::unique_ptr<Catalog>> Open(Vfs& vfs, std::string dir,
                                               QueryContext* ctx = nullptr,
                                               CatalogOptions options = {});

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- mutations (logged, fsynced, then applied; see commit protocol) ---

  Status PutRelation(const Relation& rel, QueryContext* ctx = nullptr);
  // One commit (single fsync) covering several relations — all-or-nothing
  // across a crash, for multi-relation statements like GEN MEDICAL.
  Status PutRelations(const std::vector<const Relation*>& rels,
                      QueryContext* ctx = nullptr);
  Status DefineRule(const std::string& rule_text);
  Status PutFlock(const std::string& name, const std::string& source);
  Status SetKnob(const std::string& key, std::int64_t value);
  // Logs one learned-RUN outcome and folds it into state().bandit. Same
  // durability contract as every mutation: WAL append + fsync before the
  // in-memory apply, so the optimizer's learning replays after a crash.
  Status RecordBanditOutcome(const BanditOutcome& outcome);

  // Writes a fresh snapshot (temp + fsync + rename + dir fsync) and
  // resets the WAL. The snapshot is durable before the log shrinks. A
  // failed snapshot rotation leaves both the old snapshot and the WAL
  // intact, so it returns the error without latching — a transient
  // ENOSPC here is retryable.
  Status Checkpoint(QueryContext* ctx = nullptr);

  // --- inspection ---

  const CatalogState& state() const { return state_; }
  const std::string& dir() const { return dir_; }
  const StorageStats& stats() const { return stats_; }
  const OpenInfo& open_info() const { return open_info_; }
  // OK while the catalog accepts mutations; the latched IO_ERROR after a
  // commit-path failure.
  Status Healthy() const { return latched_; }

  // Directory holding this catalog's paged relation sidecars.
  std::string PagesDir() const { return dir_ + "/pages"; }
  // Directory the shell points spill grants at for this catalog.
  std::string SpillDir() const { return dir_ + "/spill"; }

 private:
  Catalog(Vfs& vfs, std::string dir, CatalogOptions options);

  // Appends `payloads` as one WAL commit, then applies them in memory.
  Status Commit(const std::vector<std::string>& payloads, QueryContext* ctx);
  Status Latch(Status s);
  // Removes page files under PagesDir() not named in `referenced`, plus
  // (at Open only) orphaned spill files under SpillDir(). Best-effort:
  // I/O errors are swallowed (a failed sweep leaves garbage for the next
  // one, never damage).
  void SweepOrphans(const std::vector<std::string>& referenced,
                    bool sweep_spill);

  Vfs& vfs_;
  std::string dir_;
  CatalogOptions options_;
  CatalogState state_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_lsn_ = 1;
  StorageStats stats_;
  OpenInfo open_info_;
  Status latched_;  // OK, or the first commit-path I/O error
};

}  // namespace qf

#endif  // QF_STORAGE_CATALOG_H_
