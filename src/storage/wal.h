// Write-ahead log: the durability primitive of the catalog (catalog.h).
//
// On-disk format — a sequence of frames, nothing else:
//
//   +----------+---------------+------------------+
//   | u32 len  | u32 crc32c    | payload (len B)  |
//   +----------+---------------+------------------+
//
// `len` is the payload length (little-endian); `crc` is the *masked*
// CRC32C (common/crc32c.h) of the payload bytes. The writer appends
// frames and fsyncs once per commit batch, so a statement is acknowledged
// only after its records are on stable storage.
//
// The reader applies the torn-write truncation rule: scanning from the
// start, the first frame whose header is short, whose payload extends
// past end-of-file, or whose checksum mismatches ends the log — it and
// everything after it are crash artifacts (a record that never finished
// committing) and are dropped. A well-formed prefix is always recovered
// in full. Callers that find a dropped tail rewrite the file to the
// valid prefix before appending again, so new commits never land beyond
// garbage.
#ifndef QF_STORAGE_WAL_H_
#define QF_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/vfs.h"

namespace qf {

// Storage-layer counters, rendered by the shell into the EXPLAIN ANALYZE
// metrics tree ("storage" subtree) and OPEN/CHECKPOINT output.
struct StorageStats {
  std::uint64_t wal_records = 0;   // records appended this session
  std::uint64_t wal_bytes = 0;     // frame bytes appended (headers incl.)
  std::uint64_t fsyncs = 0;        // file + directory syncs issued
  std::uint64_t wal_sync_ns = 0;   // wall time inside commit fsyncs
  std::uint64_t snapshots = 0;     // checkpoints completed
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshot_ns = 0;
  std::uint64_t replayed_records = 0;  // WAL records applied at Open
  std::uint64_t truncated_bytes = 0;   // torn/corrupt tail dropped at Open
  std::uint64_t replay_ns = 0;         // snapshot load + WAL replay time
};

// Appends one frame (header + payload) to `out`.
void AppendWalFrame(std::string& out, std::string_view payload);

struct WalReadResult {
  std::vector<std::string> payloads;
  // Bytes of the well-formed prefix (survives) and of the dropped tail.
  std::uint64_t valid_bytes = 0;
  std::uint64_t dropped_bytes = 0;
};

// Parses `data` per the truncation rule above. Never fails: a fully
// garbage log is simply zero records with everything dropped.
WalReadResult ParseWal(std::string_view data);

// Reads and parses `path`; a missing file is an empty log.
Result<WalReadResult> ReadWal(Vfs& vfs, const std::string& path);

// Append-side handle. Not thread-safe; the catalog serializes commits.
class WalWriter {
 public:
  // `stats` may be null. Call Open() (or Reset()) before Append().
  WalWriter(Vfs& vfs, std::string path, StorageStats* stats);

  // Opens in append mode (creating the file if absent).
  Status Open();

  // Truncates the log to empty, durably, and leaves the handle ready to
  // append — the post-checkpoint reset.
  Status Reset();

  // Rewrites the log to exactly `payloads` (the recovery path after a
  // torn tail), durably, leaving the handle ready to append.
  //
  // Both go through an atomic temp + fsync + rename + dir-fsync rewrite
  // (never an in-place truncation): at every crash point the on-disk log
  // is either the complete old content or the complete new content, so
  // the valid prefix — acknowledged commits — can never be lost.
  Status Rewrite(const std::vector<std::string>& payloads);

  // Commits a batch: frames every payload, appends them with one write,
  // and fsyncs once. On return OK the batch is on stable storage.
  Status Append(const std::vector<std::string>& payloads);

 private:
  Status ReplaceWith(const std::string& content);

  Vfs& vfs_;
  std::string path_;
  StorageStats* stats_;
  std::unique_ptr<WritableFile> file_;
};

}  // namespace qf

#endif  // QF_STORAGE_WAL_H_
