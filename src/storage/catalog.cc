#include "storage/catalog.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "relational/serialize.h"
#include "relational/spill.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace qf {
namespace {

constexpr std::string_view kSnapshotMagic = "QFSNAP01";
// Same layout as QFSNAP01 except each relation is preceded by a marker
// byte: 0 = inline EncodeRelation bytes, 1 = a stub {name, page-file
// name, row count} whose rows live in a paged sidecar (storage/page.h)
// under <dir>/pages/. Snapshots with no paged relation keep the QFSNAP01
// magic, byte-identical to previous releases.
constexpr std::string_view kSnapshotMagic2 = "QFSNAP02";
constexpr std::string_view kSnapshotFile = "catalog.snap";
constexpr std::string_view kWalFile = "catalog.wal";
constexpr std::string_view kPageFileSuffix = ".qfp";

enum : unsigned char { kRelInline = 0, kRelPaged = 1 };

// Paged sidecars are named after the relation, so only clean identifiers
// qualify (anything else stays inline — correct, just not out-of-core).
bool SafeFileName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!(c == '_' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') ||
          (c >= 'a' && c <= 'z'))) {
      return false;
    }
  }
  return true;
}

std::uint64_t EstimatedRelationBytes(const Relation& rel) {
  return static_cast<std::uint64_t>(rel.size()) *
         ApproxTupleBytes(rel.arity());
}

// WAL record types (the u8 after the LSN in every payload).
enum class WalRecordType : unsigned char {
  kPutRelation = 1,
  kDefineRule = 2,
  kPutFlock = 3,
  kSetKnob = 4,
  kBanditOutcome = 5,
};

bool IsGovernorAbort(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

// Forward declaration; defined below ApplyRecordBody.
Status ApplyCommitBody(CatalogState& state, ByteReader& in, QueryContext* ctx);

// Decodes the record body after the LSN and applies it to `state`.
Status ApplyRecordBody(CatalogState& state, ByteReader& in,
                       QueryContext* ctx) {
  std::string_view type_byte;
  if (!in.GetBytes(1, &type_byte)) {
    return CorruptWalError("record body missing type byte");
  }
  switch (static_cast<WalRecordType>(type_byte[0])) {
    case WalRecordType::kPutRelation: {
      Result<Relation> rel = DecodeRelation(in, ctx);
      if (!rel.ok()) return rel.status();
      state.db.PutRelation(std::move(*rel));
      break;
    }
    case WalRecordType::kDefineRule: {
      std::string_view rule;
      if (!in.GetString(&rule)) {
        return CorruptWalError("malformed DEFINE record");
      }
      state.rules.emplace_back(rule);
      break;
    }
    case WalRecordType::kPutFlock: {
      std::string_view name;
      std::string_view source;
      if (!in.GetString(&name) || !in.GetString(&source)) {
        return CorruptWalError("malformed FLOCK record");
      }
      state.flocks[std::string(name)] = std::string(source);
      break;
    }
    case WalRecordType::kSetKnob: {
      std::string_view key;
      std::int64_t value;
      if (!in.GetString(&key) || !in.GetI64(&value)) {
        return CorruptWalError("malformed knob record");
      }
      state.knobs[std::string(key)] = value;
      break;
    }
    case WalRecordType::kBanditOutcome: {
      BanditOutcome outcome;
      if (Status s = DecodeBanditOutcome(in, &outcome); !s.ok()) return s;
      state.bandit.Record(outcome);
      break;
    }
    default:
      return CorruptWalError("unknown WAL record type " +
                             std::to_string(type_byte[0]));
  }
  if (!in.AtEnd()) {
    return CorruptWalError("trailing bytes after WAL record body");
  }
  return Status::Ok();
}

// Decodes and applies everything after the LSN of a commit payload: a
// u32 record count followed by that many length-prefixed record bodies.
// The whole batch shares one frame (and one CRC), which is what makes a
// multi-record commit all-or-nothing across a torn write.
Status ApplyCommitBody(CatalogState& state, ByteReader& in,
                       QueryContext* ctx) {
  std::uint32_t n = 0;
  // Each record needs >= 5 bytes (u32 length + type byte).
  if (!in.GetU32(&n) || n > in.remaining() / 5 + 1) {
    return CorruptWalError("bad commit batch count");
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    std::string_view body;
    if (!in.GetString(&body)) {
      return CorruptWalError("truncated commit batch record");
    }
    ByteReader sub(body);
    if (Status s = ApplyRecordBody(state, sub, ctx); !s.ok()) return s;
  }
  if (!in.AtEnd()) {
    return CorruptWalError("trailing bytes after commit batch");
  }
  return Status::Ok();
}

std::string RelationBody(const Relation& rel, QueryContext* ctx,
                         Status* status) {
  std::string body;
  body.push_back(static_cast<char>(WalRecordType::kPutRelation));
  *status = EncodeRelation(rel, body, ctx);
  return body;
}

double MsSince(std::uint64_t t0_ns) {
  return static_cast<double>(MetricsNowNs() - t0_ns) / 1e6;
}

// Rules + flocks + knobs — everything ahead of the relation section,
// shared verbatim by both snapshot layouts.
void EncodeStateHeader(const CatalogState& state, std::string& out) {
  PutU32(out, static_cast<std::uint32_t>(state.rules.size()));
  for (const std::string& rule : state.rules) PutString(out, rule);
  PutU32(out, static_cast<std::uint32_t>(state.flocks.size()));
  for (const auto& [name, source] : state.flocks) {
    PutString(out, name);
    PutString(out, source);
  }
  PutU32(out, static_cast<std::uint32_t>(state.knobs.size()));
  for (const auto& [key, value] : state.knobs) {
    PutString(out, key);
    PutI64(out, value);
  }
  state.bandit.EncodeTo(out);
}

Status DecodeStateHeader(ByteReader& in, CatalogState& state) {
  auto corrupt = [&](const char* what) {
    return CorruptWalError(std::string("snapshot: ") + what + " at byte " +
                           std::to_string(in.position()));
  };
  std::uint32_t n_rules;
  if (!in.GetU32(&n_rules) || n_rules > in.remaining() / 4) {
    return corrupt("bad rule count");
  }
  for (std::uint32_t i = 0; i < n_rules; ++i) {
    std::string_view rule;
    if (!in.GetString(&rule)) return corrupt("bad rule");
    state.rules.emplace_back(rule);
  }
  std::uint32_t n_flocks;
  if (!in.GetU32(&n_flocks) || n_flocks > in.remaining() / 8) {
    return corrupt("bad flock count");
  }
  for (std::uint32_t i = 0; i < n_flocks; ++i) {
    std::string_view name;
    std::string_view source;
    if (!in.GetString(&name) || !in.GetString(&source)) {
      return corrupt("bad flock");
    }
    state.flocks[std::string(name)] = std::string(source);
  }
  std::uint32_t n_knobs;
  if (!in.GetU32(&n_knobs) || n_knobs > in.remaining() / 12) {
    return corrupt("bad knob count");
  }
  for (std::uint32_t i = 0; i < n_knobs; ++i) {
    std::string_view key;
    std::int64_t value;
    if (!in.GetString(&key) || !in.GetI64(&value)) {
      return corrupt("bad knob");
    }
    state.knobs[std::string(key)] = value;
  }
  if (Status s = state.bandit.DecodeFrom(in); !s.ok()) return s;
  return Status::Ok();
}

}  // namespace

Result<std::string> EncodeCatalogState(const CatalogState& state,
                                       QueryContext* ctx) {
  std::string out;
  EncodeStateHeader(state, out);
  std::vector<std::string> names = state.db.Names();
  PutU32(out, static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    if (Status s = EncodeRelation(state.db.Get(name), out, ctx); !s.ok()) {
      return s;
    }
  }
  return out;
}

Result<CatalogState> DecodeCatalogState(std::string_view bytes,
                                        QueryContext* ctx) {
  ByteReader in(bytes);
  CatalogState state;
  auto corrupt = [&](const char* what) {
    return CorruptWalError(std::string("snapshot: ") + what + " at byte " +
                           std::to_string(in.position()));
  };
  if (Status s = DecodeStateHeader(in, state); !s.ok()) return s;
  std::uint32_t n_relations;
  if (!in.GetU32(&n_relations) || n_relations > in.remaining() / 4) {
    return corrupt("bad relation count");
  }
  for (std::uint32_t i = 0; i < n_relations; ++i) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    Result<Relation> rel = DecodeRelation(in, ctx);
    if (!rel.ok()) return rel.status();
    state.db.PutRelation(std::move(*rel));
  }
  if (!in.AtEnd()) return corrupt("trailing bytes");
  return state;
}

Catalog::Catalog(Vfs& vfs, std::string dir, CatalogOptions options)
    : vfs_(vfs), dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<Catalog>> Catalog::Open(Vfs& vfs, std::string dir,
                                               QueryContext* ctx,
                                               CatalogOptions options) {
  std::uint64_t t0 = MetricsNowNs();
  if (Status s = vfs.CreateDirs(dir); !s.ok()) return s;
  std::unique_ptr<Catalog> cat(new Catalog(vfs, std::move(dir), options));
  const std::string snap_path = cat->dir_ + "/" + std::string(kSnapshotFile);
  const std::string wal_path = cat->dir_ + "/" + std::string(kWalFile);

  // A stale rotation temp file is a crash artifact; the real snapshot /
  // log (if any) was never replaced, so the temp is garbage.
  if (vfs.Exists(snap_path + ".tmp")) vfs.Remove(snap_path + ".tmp");
  if (vfs.Exists(wal_path + ".tmp")) vfs.Remove(wal_path + ".tmp");

  std::uint64_t snap_lsn = 0;
  std::vector<std::string> referenced_pages;
  if (vfs.Exists(snap_path)) {
    Result<std::string> data = vfs.ReadFile(snap_path);
    if (!data.ok()) return data.status();
    ByteReader header(*data);
    std::string_view magic;
    std::uint32_t len = 0;
    std::uint32_t masked_crc = 0;
    std::string_view payload;
    if (!header.GetBytes(kSnapshotMagic.size(), &magic) ||
        (magic != kSnapshotMagic && magic != kSnapshotMagic2)) {
      return CorruptWalError("snapshot: bad magic in " + snap_path);
    }
    const bool paged_layout = magic == kSnapshotMagic2;
    if (!header.GetU32(&len) || !header.GetU32(&masked_crc) ||
        !header.GetBytes(len, &payload) || !header.AtEnd()) {
      return CorruptWalError("snapshot: truncated or oversized " +
                             snap_path);
    }
    if (Crc32c(payload) != Crc32cUnmask(masked_crc)) {
      return CorruptWalError("snapshot: checksum mismatch in " + snap_path);
    }
    ByteReader body(payload);
    std::string_view state_bytes;
    if (!body.GetU64(&snap_lsn) ||
        !body.GetBytes(body.remaining(), &state_bytes)) {
      return CorruptWalError("snapshot: missing LSN in " + snap_path);
    }
    if (!paged_layout) {
      Result<CatalogState> state = DecodeCatalogState(state_bytes, ctx);
      if (!state.ok()) return state.status();
      cat->state_ = std::move(*state);
    } else {
      // QFSNAP02: same header, then per-relation markers; stubs resolve
      // against their checksummed page sidecars (a missing or corrupt
      // sidecar is a typed error — a referenced sidecar was made durable
      // before this snapshot rotated in, so its absence is real damage).
      ByteReader sin(state_bytes);
      CatalogState state;
      if (Status s = DecodeStateHeader(sin, state); !s.ok()) return s;
      std::uint32_t n_relations = 0;
      if (!sin.GetU32(&n_relations) || n_relations > sin.remaining()) {
        return CorruptWalError("snapshot: bad relation count in " +
                               snap_path);
      }
      for (std::uint32_t i = 0; i < n_relations; ++i) {
        if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
        std::string_view marker;
        if (!sin.GetBytes(1, &marker)) {
          return CorruptWalError("snapshot: missing relation marker in " +
                                 snap_path);
        }
        if (static_cast<unsigned char>(marker[0]) == kRelInline) {
          Result<Relation> rel = DecodeRelation(sin, ctx);
          if (!rel.ok()) return rel.status();
          state.db.PutRelation(std::move(*rel));
        } else if (static_cast<unsigned char>(marker[0]) == kRelPaged) {
          std::string_view name;
          std::string_view file;
          std::uint64_t rows = 0;
          if (!sin.GetString(&name) || !sin.GetString(&file) ||
              !sin.GetU64(&rows)) {
            return CorruptWalError("snapshot: malformed paged stub in " +
                                   snap_path);
          }
          referenced_pages.emplace_back(file);
          Result<std::unique_ptr<DiskRelation>> disk = DiskRelation::Open(
              vfs, cat->PagesDir() + "/" + std::string(file),
              cat->options_.pool);
          if (!disk.ok()) return disk.status();
          if ((*disk)->name() != name || (*disk)->row_count() != rows) {
            return CorruptWalError("snapshot: paged stub mismatch for " +
                                   std::string(name));
          }
          Result<Relation> rel = (*disk)->ReadAll(ctx);
          if (!rel.ok()) return rel.status();
          state.db.PutRelation(std::move(*rel));
          ++cat->open_info_.paged_relations;
        } else {
          return CorruptWalError("snapshot: unknown relation marker in " +
                                 snap_path);
        }
      }
      if (!sin.AtEnd()) {
        return CorruptWalError("snapshot: trailing bytes at byte " +
                               std::to_string(sin.position()));
      }
      cat->state_ = std::move(state);
    }
    cat->open_info_.snapshot_loaded = true;
    cat->open_info_.snapshot_lsn = snap_lsn;
  }

  // Replay the log. `good` counts frames that survive (applied or
  // stale-skipped); the first undecodable record — like a torn frame —
  // truncates the log from that point on.
  Result<WalReadResult> wal_read = ReadWal(vfs, wal_path);
  if (!wal_read.ok()) return wal_read.status();
  std::uint64_t last_lsn = snap_lsn;
  std::size_t good = 0;
  std::uint64_t bad_body_bytes = 0;
  for (const std::string& payload : wal_read->payloads) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    ByteReader in(payload);
    std::uint64_t lsn = 0;
    Status applied = Status::Ok();
    if (!in.GetU64(&lsn)) {
      applied = CorruptWalError("record too short for LSN");
    } else if (lsn <= snap_lsn) {
      // Stale: logged before the snapshot that survived (the crash hit
      // between snapshot rotation and WAL reset). Skipping is the replay
      // idempotence rule.
      ++cat->open_info_.skipped_records;
    } else if (lsn != last_lsn + 1) {
      applied = CorruptWalError("LSN gap");
    } else {
      applied = ApplyCommitBody(cat->state_, in, ctx);
    }
    if (!applied.ok()) {
      if (IsGovernorAbort(applied)) return applied;
      break;  // truncate from this record
    }
    if (lsn > snap_lsn) {
      last_lsn = lsn;
      ++cat->open_info_.replayed_records;
    }
    ++good;
  }
  for (std::size_t i = good; i < wal_read->payloads.size(); ++i) {
    bad_body_bytes += 8 + wal_read->payloads[i].size();
  }
  cat->open_info_.truncated_bytes = wal_read->dropped_bytes + bad_body_bytes;
  cat->next_lsn_ = last_lsn + 1;

  cat->wal_ = std::make_unique<WalWriter>(vfs, wal_path, &cat->stats_);
  if (cat->open_info_.truncated_bytes > 0) {
    // Physically truncate to the valid prefix: appending after garbage
    // would orphan every future commit behind an undecodable record.
    std::vector<std::string> keep(wal_read->payloads.begin(),
                                  wal_read->payloads.begin() +
                                      static_cast<std::ptrdiff_t>(good));
    if (Status s = cat->wal_->Rewrite(keep); !s.ok()) return s;
  } else {
    if (Status s = cat->wal_->Open(); !s.ok()) return s;
  }

  // Crash leftovers: sidecars no snapshot references (written by a
  // checkpoint that never rotated in, or obsoleted by the one that did)
  // and temp spill files of statements a dead process never finished.
  cat->SweepOrphans(referenced_pages, /*sweep_spill=*/true);

  cat->open_info_.replay_ms = MsSince(t0);
  cat->stats_.replayed_records = cat->open_info_.replayed_records;
  cat->stats_.truncated_bytes = cat->open_info_.truncated_bytes;
  cat->stats_.replay_ns = MetricsNowNs() - t0;
  return cat;
}

void Catalog::SweepOrphans(const std::vector<std::string>& referenced,
                           bool sweep_spill) {
  std::set<std::string> keep(referenced.begin(), referenced.end());
  Result<std::vector<std::string>> names = vfs_.ListDir(PagesDir());
  if (names.ok()) {
    for (const std::string& n : *names) {
      if (keep.count(n) != 0) continue;
      if (n.size() < kPageFileSuffix.size() ||
          n.compare(n.size() - kPageFileSuffix.size(), kPageFileSuffix.size(),
                    kPageFileSuffix) != 0) {
        continue;  // not ours; leave it alone
      }
      const std::string path = PagesDir() + "/" + n;
      if (options_.pool != nullptr) options_.pool->InvalidateFile(path);
      if (vfs_.Remove(path).ok()) ++open_info_.orphans_removed;
    }
  }
  // Spill files are swept at Open only: no statement can be running yet.
  // During a Checkpoint a concurrent statement may legitimately own live
  // spill files (the server runs statements in parallel).
  if (sweep_spill) {
    Result<std::size_t> spilled = RemoveSpillFiles(vfs_, SpillDir());
    if (spilled.ok()) open_info_.orphans_removed += *spilled;
  }
}

Status Catalog::Latch(Status s) {
  if (latched_.ok()) latched_ = s;
  return s;
}

Status Catalog::Commit(const std::vector<std::string>& bodies,
                       QueryContext* ctx) {
  (void)ctx;  // encoding polls upstream; the apply below must not abort
  if (!latched_.ok()) return latched_;
  // One payload, one frame, one CRC for the whole batch: a torn write can
  // only drop the commit entirely, never apply a subset of its records.
  std::string payload;
  PutU64(payload, next_lsn_);
  PutU32(payload, static_cast<std::uint32_t>(bodies.size()));
  for (const std::string& body : bodies) PutString(payload, body);
  if (Status s = wal_->Append({payload}); !s.ok()) {
    // The tail may hold a torn frame; appending more would put committed
    // records behind garbage, so the catalog goes read-only until reopen.
    return Latch(std::move(s));
  }
  ++next_lsn_;
  // Acknowledge only what replay will rebuild: apply the logged bytes.
  // No governor here — these bytes are durable, so the in-memory state
  // must follow unconditionally.
  ByteReader in(payload);
  std::uint64_t lsn = 0;
  Status applied = in.GetU64(&lsn)
                       ? ApplyCommitBody(state_, in, nullptr)
                       : CorruptWalError("self-encoded commit too short");
  if (!applied.ok()) {
    return Latch(InternalError("logged commit failed to apply: " +
                               applied.ToString()));
  }
  return Status::Ok();
}

Status Catalog::PutRelation(const Relation& rel, QueryContext* ctx) {
  return PutRelations({&rel}, ctx);
}

Status Catalog::PutRelations(const std::vector<const Relation*>& rels,
                             QueryContext* ctx) {
  std::vector<std::string> bodies;
  bodies.reserve(rels.size());
  for (const Relation* rel : rels) {
    if (rel->name().empty()) {
      return InvalidArgumentError("cannot persist an unnamed relation");
    }
    Status encode_status;
    bodies.push_back(RelationBody(*rel, ctx, &encode_status));
    if (!encode_status.ok()) return encode_status;  // governor abort
  }
  return Commit(bodies, ctx);
}

Status Catalog::DefineRule(const std::string& rule_text) {
  std::string body;
  body.push_back(static_cast<char>(WalRecordType::kDefineRule));
  PutString(body, rule_text);
  return Commit({std::move(body)}, nullptr);
}

Status Catalog::PutFlock(const std::string& name, const std::string& source) {
  std::string body;
  body.push_back(static_cast<char>(WalRecordType::kPutFlock));
  PutString(body, name);
  PutString(body, source);
  return Commit({std::move(body)}, nullptr);
}

Status Catalog::SetKnob(const std::string& key, std::int64_t value) {
  std::string body;
  body.push_back(static_cast<char>(WalRecordType::kSetKnob));
  PutString(body, key);
  PutI64(body, value);
  return Commit({std::move(body)}, nullptr);
}

Status Catalog::RecordBanditOutcome(const BanditOutcome& outcome) {
  std::string body;
  body.push_back(static_cast<char>(WalRecordType::kBanditOutcome));
  EncodeBanditOutcome(outcome, body);
  return Commit({std::move(body)}, nullptr);
}

Status Catalog::Checkpoint(QueryContext* ctx) {
  if (!latched_.ok()) return latched_;
  std::uint64_t t0 = MetricsNowNs();
  const std::uint64_t snap_lsn = next_lsn_ - 1;

  // Relations going out-of-core this checkpoint. Estimated (not encoded)
  // size keeps the decision O(1) per relation and deterministic.
  std::vector<std::string> names = state_.db.Names();
  std::set<std::string> paged;
  for (const std::string& name : names) {
    if (SafeFileName(name) &&
        EstimatedRelationBytes(state_.db.Get(name)) >=
            options_.paged_threshold_bytes) {
      paged.insert(name);
    }
  }
  auto page_file = [&](const std::string& name) {
    return name + "." + std::to_string(snap_lsn) +
           std::string(kPageFileSuffix);
  };

  std::string payload;
  PutU64(payload, snap_lsn);
  std::string_view magic = kSnapshotMagic;
  std::vector<std::string> referenced;
  if (paged.empty()) {
    // All inline: the QFSNAP01 layout, byte-identical to earlier builds.
    Result<std::string> state_bytes = EncodeCatalogState(state_, ctx);
    if (!state_bytes.ok()) return state_bytes.status();  // governor abort
    payload += *state_bytes;
  } else {
    magic = kSnapshotMagic2;
    // Sidecars first: every page file is written and fsynced, then the
    // pages directory entry is fsynced, all BEFORE the snapshot that
    // references them rotates in. A crash anywhere in between leaves the
    // old snapshot pointing at old (still present) sidecars; the new
    // files are unreferenced orphans swept at the next Open. Like the
    // snapshot rotation itself, a failure here latches nothing — the old
    // snapshot and the whole WAL are intact, so a retry is safe.
    if (Status s = vfs_.CreateDirs(PagesDir()); !s.ok()) return s;
    for (const std::string& name : paged) {
      const std::string file = page_file(name);
      Result<PagedWriteInfo> w = WritePagedRelation(
          vfs_, PagesDir() + "/" + file, state_.db.Get(name), ctx);
      if (!w.ok()) return w.status();
      referenced.push_back(file);
    }
    if (Status s = vfs_.SyncDir(PagesDir()); !s.ok()) return s;
    stats_.fsyncs += paged.size() + 1;

    EncodeStateHeader(state_, payload);
    PutU32(payload, static_cast<std::uint32_t>(names.size()));
    for (const std::string& name : names) {
      if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
      const Relation& rel = state_.db.Get(name);
      if (paged.count(name) != 0) {
        payload.push_back(static_cast<char>(kRelPaged));
        PutString(payload, name);
        PutString(payload, page_file(name));
        PutU64(payload, static_cast<std::uint64_t>(rel.size()));
      } else {
        payload.push_back(static_cast<char>(kRelInline));
        if (Status s = EncodeRelation(rel, payload, ctx); !s.ok()) return s;
      }
    }
  }

  std::string file_bytes;
  file_bytes.reserve(magic.size() + 8 + payload.size());
  file_bytes += magic;
  PutU32(file_bytes, static_cast<std::uint32_t>(payload.size()));
  PutU32(file_bytes, Crc32cMask(Crc32c(payload)));
  file_bytes += payload;

  const std::string snap_path = dir_ + "/" + std::string(kSnapshotFile);
  if (Status s = AtomicWriteFile(vfs_, snap_path, file_bytes); !s.ok()) {
    // A failed rotation leaves the previous snapshot and the whole WAL
    // intact — nothing is torn, so the catalog keeps accepting commits
    // and the caller may simply retry CHECKPOINT. Latching is reserved
    // for WAL failures, where the tail may actually be damaged.
    return s;
  }
  stats_.fsyncs += 2;  // AtomicWriteFile: file sync + dir sync
  // Only now, with the snapshot durable, may the log shrink. A crash
  // in between replays stale records, which LSN skipping neutralizes.
  // The reset is an atomic rewrite, so a failure cannot tear the log —
  // but it can leave the writer without an append handle, so the
  // catalog still latches until reopen.
  if (Status s = wal_->Reset(); !s.ok()) {
    return Latch(std::move(s));
  }
  // Previous-checkpoint sidecars are unreferenced now; sweep them (and
  // drop their cached pages). Best-effort — failures leave garbage for
  // the next Open's sweep, never damage.
  SweepOrphans(referenced, /*sweep_spill=*/false);
  ++stats_.snapshots;
  stats_.snapshot_bytes += file_bytes.size();
  stats_.snapshot_ns += MetricsNowNs() - t0;
  return Status::Ok();
}

}  // namespace qf
