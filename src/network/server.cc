#include "network/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <set>
#include <utility>

#include "network/protocol.h"
#include "network/socket.h"
#include "shell/statement.h"

namespace qf {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Replay-cache accounting charge per entry on top of the body bytes
// (map node, order entry, frame header).
constexpr std::size_t kCacheEntryOverhead = 64;

}  // namespace

// One client *session*: its private shell, its slice of the admission
// queue, its replay cache, and — while attached — its socket. The reader
// and one executor at a time touch the shell (statements of a session
// are strictly serialized by the `scheduled` flag); the write mutex
// serializes the socket between the reader's inline replies and the
// executor's results, and guards `fd` itself, which changes hands on
// resume (old connection -> -1 -> new connection). The fd is owned by
// whichever reader it is attached to: that reader closes it on exit
// after publishing fd = -1, so an executor finishing later skips the
// write instead of hitting a recycled descriptor.
struct Server::Session {
  std::uint64_t id = 0;
  SocketOps* ops = nullptr;
  // Tripped on teardown (v1 disconnect, BYE, reap, shutdown); every
  // governed statement of this session polls it via the shell's cancel
  // flag and aborts with CANCELLED. A detached v2 session keeps it
  // clear: its in-flight statements run to completion so their
  // WAL-committed effects match the replies the replay cache retains.
  std::atomic<bool> gone{false};
  Shell shell;

  // --- guarded by write_mu ---
  std::mutex write_mu;
  int fd = -1;

  // --- guarded by Server::mu_ ---
  std::uint32_t version = 1;    // negotiated protocol version
  std::uint64_t token = 0;      // resume token (v2; zero for v1)
  bool detached = false;        // v2 connection lost, awaiting RESUME
  std::chrono::steady_clock::time_point detach_time{};
  struct Pending {
    std::uint64_t request_id;
    std::string statement;
  };
  std::deque<Pending> pending;
  bool scheduled = false;  // queued in ready_ or currently executing
  // Exactly-once bookkeeping (v2): ids admitted but not yet answered,
  // and the bounded FIFO cache of already-sent replies. A replayed id is
  // always in exactly one of the two (the executor caches the reply
  // *before* sending it), so it is answered from the cache or
  // deduplicated — never re-executed.
  std::set<std::uint64_t> inflight;
  std::map<std::uint64_t, Frame> cache;
  std::deque<std::uint64_t> cache_order;
  std::size_t cache_bytes = 0;
  std::uint64_t received = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t resumes = 0;
  std::uint64_t replay_hits = 0;
  std::uint64_t exec_ns = 0;
  std::uint64_t output_bytes = 0;
  // Out-of-core counters, snapshotted from the shell by the executor
  // after each statement (the shell itself is only safe to touch while
  // the session is scheduled; STATS renders these copies instead).
  std::uint64_t spill_activations = 0;
  std::uint64_t spilled_rows = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_evictions = 0;
  // Learned-optimizer counters, same snapshot discipline: whether the
  // session runs in learned mode, and the shape of its outcome history.
  bool learned_optimizer = false;
  std::uint64_t learned_contexts = 0;
  std::uint64_t learned_plays = 0;

  // Covers sessions that never got a reader (accept rejection) or
  // whose server shut down before the reader released the fd.
  ~Session() {
    if (fd >= 0) CloseFd(fd);
  }

  // Serialized frame write. Returns false when the session is detached
  // (no connection to write to) or the write failed; callers that only
  // care about liveness probing (heartbeats) use the result, reply
  // paths ignore it — a lost reply is replayed from the cache later.
  bool Write(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (fd < 0) return false;
    return WriteFrame(fd, frame, ops).ok();
  }
  void WriteError(std::uint64_t request_id, const Status& status) {
    Write(Frame{FrameType::kError, request_id, EncodeErrorBody(status)});
  }
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.executors == 0) options_.executors = 1;
  std::random_device rd;
  token_rng_.seed((static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
                  static_cast<std::uint64_t>(NowNs()));
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  Result<int> listen_fd =
      TcpListen(server->options_.host, server->options_.port, /*backlog=*/128);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = *listen_fd;
  Result<std::uint16_t> port = LocalPort(server->listen_fd_);
  if (!port.ok()) {
    CloseFd(server->listen_fd_);
    return port.status();
  }
  server->port_ = *port;
  if (::pipe(server->wake_pipe_) != 0) {
    CloseFd(server->listen_fd_);
    return IoError("pipe: cannot create shutdown wake pipe");
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  for (unsigned i = 0; i < server->options_.executors; ++i) {
    server->executor_threads_.emplace_back(
        [s = server.get()] { s->ExecutorLoop(); });
  }
  if (server->options_.resume_timeout_ms > 0) {
    server->reaper_thread_ = std::thread([s = server.get()] { s->ReaperLoop(); });
  }
  return server;
}

Server::~Server() {
  Shutdown();
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
}

void Server::AcceptLoop() {
  while (WaitReadable(listen_fd_, wake_pipe_[0])) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket is gone
    }
    if (options_.idle_timeout_ms > 0) {
      // Bound mid-frame stalls too: a frame whose length prefix was
      // corrupted upward leaves the reader waiting for bytes that will
      // never come — a distributed deadlock no poll-before-read can
      // see. With kernel timeouts armed, that read fails mid-frame
      // (poisoned stream), the session detaches, and the client's
      // resume + replay make the wedge invisible.
      SetSocketTimeouts(fd, options_.idle_timeout_ms);
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->ops =
        options_.socket_ops != nullptr ? options_.socket_ops : DefaultSocketOps();
    session->shell.SeedDatabase(options_.base_db);
    if (options_.session_vfs != nullptr) {
      session->shell.set_vfs(options_.session_vfs);
    }
    session->shell.set_cancel_flag(&session->gone);

    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || sessions_.size() >= options_.max_sessions) {
        ++stats_.sessions_shed;
        reject = true;
      } else {
        session->id = next_session_id_++;
        sessions_[session->id] = session;
        ++stats_.sessions_opened;
        reader_threads_.emplace_back(
            [this, session] { ReaderLoop(session); });
      }
    }
    if (reject) {
      // The session was never registered; answer the handshake the
      // client is about to send with a typed rejection and hang up.
      session->WriteError(0, OverloadedError("session limit reached"));
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  // This reader owns the connection it was spawned for — even if a
  // RESUME swaps which Session the conversation continues on.
  const int fd = session->fd;
  SocketOps* ops = session->ops;

  // Handshake: the first frame must be a well-formed HELLO.
  ReadEvent event = ReadFrame(fd, ops);
  bool handshaken = false;
  bool clean = false;
  if (event.kind == ReadEvent::Kind::kFrame &&
      event.frame.type == FrameType::kHello) {
    Result<std::uint32_t> hello = CheckHelloBody(event.frame.body);
    if (hello.ok()) {
      Welcome welcome;
      welcome.version = *hello;
      welcome.session_id = session->id;
      {
        std::lock_guard<std::mutex> lock(mu_);
        session->version = *hello;
        if (*hello >= 2) {
          do {
            session->token = token_rng_();
          } while (session->token == 0);
          welcome.resume_token = session->token;
        }
      }
      session->Write(Frame{FrameType::kWelcome, event.frame.request_id,
                           EncodeWelcomeBody(welcome)});
      handshaken = true;
    } else {
      session->WriteError(event.frame.request_id, hello.status());
    }
  } else if (event.kind == ReadEvent::Kind::kFrame ||
             event.kind == ReadEvent::Kind::kError) {
    Status s = event.kind == ReadEvent::Kind::kError
                   ? event.status
                   : InvalidArgumentError("expected HELLO frame");
    std::uint64_t id =
        event.kind == ReadEvent::Kind::kFrame ? event.frame.request_id : 0;
    session->WriteError(id, s);
  }
  if (!handshaken && event.kind != ReadEvent::Kind::kEof) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.protocol_errors;
  }

  while (handshaken) {
    if (options_.idle_timeout_ms > 0) {
      int readable = PollReadable(fd, options_.idle_timeout_ms);
      if (readable < 0) break;
      if (readable == 0) {
        // Idle: probe the peer. TCP only reports a dead peer on a
        // write, so a quiet-but-alive client costs one heartbeat frame
        // per interval while a vanished one turns into a failed write
        // (after its RST arrives) and a detach.
        if (!session->Write(Frame{FrameType::kHeartbeat, 0, ""})) break;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.heartbeats_sent;
        continue;
      }
    }
    event = ReadFrame(fd, ops);
    if (event.kind == ReadEvent::Kind::kEof) break;
    if (event.kind == ReadEvent::Kind::kError) {
      // Framing is lost; report (best effort) and disconnect. Socket
      // errors during our own shutdown are routine, not protocol noise.
      if (event.status.code() != StatusCode::kIoError) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      session->WriteError(0, event.status);
      break;
    }
    const Frame& frame = event.frame;
    if (frame.type == FrameType::kStmt) {
      AdmitStatement(session, frame.request_id, frame.body);
      continue;
    }
    if (frame.type == FrameType::kPing) {
      session->Write(Frame{FrameType::kPong, frame.request_id, ""});
      continue;
    }
    if (frame.type == FrameType::kHeartbeat) {
      continue;  // client-side liveness probe; nothing to answer
    }
    if (frame.type == FrameType::kResume) {
      Result<std::shared_ptr<Session>> resumed =
          ResumeSession(session, fd, frame);
      if (resumed.ok()) {
        // The conversation continues on the resumed session; the fresh
        // one was discarded by ResumeSession.
        session = *resumed;
        std::string body;
        AppendU64(body, session->id);
        session->Write(Frame{FrameType::kResumed, frame.request_id, body});
      } else {
        session->WriteError(frame.request_id, resumed.status());
      }
      continue;
    }
    if (frame.type == FrameType::kStats) {
      session->Write(Frame{FrameType::kResult, frame.request_id,
                           MetricsText()});
      continue;
    }
    if (frame.type == FrameType::kBye) {
      session->Write(Frame{FrameType::kBye, frame.request_id, ""});
      clean = true;
      break;
    }
    // Server-to-client frame types (or a second HELLO) from a client are
    // protocol violations.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    session->WriteError(frame.request_id,
                        InvalidArgumentError("unexpected frame type"));
    break;
  }

  ReaderExit(session, fd, clean);
}

void Server::ReaderExit(const std::shared_ptr<Session>& session, int fd,
                        bool clean) {
  {
    std::lock_guard<std::mutex> lock(session->write_mu);
    if (session->fd != fd) {
      // The session was resumed onto another connection while this
      // reader was waking up; the session lives on, only this (already
      // shut down) fd dies.
      CloseFd(fd);
      return;
    }
    session->fd = -1;
  }
  bool resumable = !clean && session->version >= 2 &&
                   options_.resume_timeout_ms > 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      // Re-check under mu_: a RESUME can re-attach the session between
      // the fd release above and here, in which case neither detaching
      // nor tearing down is ours to do.
      std::lock_guard<std::mutex> wlock(session->write_mu);
      if (session->fd >= 0) {
        CloseFd(fd);
        return;
      }
    }
    auto it = sessions_.find(session->id);
    bool registered = it != sessions_.end() && it->second == session;
    if (resumable && registered && !draining_) {
      session->detached = true;
      session->detach_time = std::chrono::steady_clock::now();
      ++stats_.sessions_detached;
    } else {
      // Cancel whatever is running/queued and unregister. The Session
      // object stays alive until the last executor reference drops.
      session->gone.store(true, std::memory_order_relaxed);
      if (registered) sessions_.erase(it);
    }
  }
  CloseFd(fd);
}

Result<std::shared_ptr<Server::Session>> Server::ResumeSession(
    const std::shared_ptr<Session>& fresh, int fd, const Frame& frame) {
  Result<ResumeRequest> req = DecodeResumeBody(frame.body);
  if (!req.ok()) return req.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (fresh->version < 2) {
    return FailedPreconditionError("RESUME requires protocol version 2");
  }
  if (fresh->scheduled || !fresh->pending.empty() || !fresh->inflight.empty()) {
    return FailedPreconditionError(
        "RESUME must precede statements on this connection");
  }
  auto it = sessions_.find(req->session_id);
  if (it == sessions_.end() || it->second == fresh ||
      it->second->version < 2 || it->second->token != req->resume_token ||
      it->second->gone.load(std::memory_order_relaxed)) {
    // One answer for every miss — unknown id, wrong token, v1 target —
    // so the error does not confirm which sessions exist.
    return NotFoundError("no resumable session " +
                         std::to_string(req->session_id));
  }
  std::shared_ptr<Session> target = it->second;
  sessions_.erase(fresh->id);
  if (target->detached) {
    target->detached = false;
  }
  ++target->resumes;
  ++stats_.sessions_resumed;
  {
    // The connection belongs to `target` now; keep the fresh session's
    // destructor (and any stray write) away from it.
    std::lock_guard<std::mutex> wlock(fresh->write_mu);
    fresh->fd = -1;
  }
  int old_fd = -1;
  {
    std::lock_guard<std::mutex> wlock(target->write_mu);
    old_fd = target->fd;
    target->fd = fd;
  }
  if (old_fd >= 0) {
    // The session was still attached elsewhere (the server had not yet
    // noticed that connection die). Shut the old connection down; its
    // reader wakes, sees the fd changed hands, and closes it.
    ::shutdown(old_fd, SHUT_RDWR);
  }
  return target;
}

void Server::AdmitStatement(const std::shared_ptr<Session>& session,
                            std::uint64_t request_id, std::string statement) {
  Status shed;
  bool replay = false;
  Frame cached_reply;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++session->received;
    ++stats_.statements_received;
    if (session->version >= 2) {
      auto hit = session->cache.find(request_id);
      if (hit != session->cache.end()) {
        // Already executed and answered (perhaps into a dead socket):
        // replay the retained reply, do not re-execute.
        ++session->replay_hits;
        ++stats_.replayed_replies;
        replay = true;
        cached_reply = hit->second;
      } else if (session->inflight.count(request_id) != 0) {
        // Still queued or executing: the reply will arrive (and be
        // cached) when it finishes. Admitting again would run the
        // statement twice.
        ++session->replay_hits;
        ++stats_.replayed_replies;
        return;
      }
    }
    if (!replay) {
      std::size_t session_load =
          session->pending.size() + (session->scheduled ? 1 : 0);
      if (draining_) {
        shed = OverloadedError("server is shutting down");
        ++stats_.shed_draining;
      } else if (queued_ >= options_.max_queue) {
        shed = OverloadedError("admission queue full (" +
                               std::to_string(options_.max_queue) +
                               " statements)");
        ++stats_.shed_queue_full;
      } else if (session_load >= options_.session_quota) {
        shed = OverloadedError("session quota exceeded (" +
                               std::to_string(options_.session_quota) +
                               " statements in flight)");
        ++stats_.shed_quota;
      } else {
        session->pending.push_back(
            Session::Pending{request_id, std::move(statement)});
        if (session->version >= 2) session->inflight.insert(request_id);
        ++queued_;
        ++stats_.statements_admitted;
        if (!session->scheduled) {
          session->scheduled = true;
          ready_.push_back(session);
          work_cv_.notify_one();
        }
        return;
      }
      ++session->shed;
    }
  }
  if (replay) {
    session->Write(cached_reply);
    return;
  }
  session->WriteError(request_id, shed);
}

void Server::ExecutorLoop() {
  while (true) {
    std::shared_ptr<Session> session;
    Session::Pending item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_executors_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop requested, queue drained
      session = ready_.front();
      ready_.pop_front();
      item = std::move(session->pending.front());
      session->pending.pop_front();
      --queued_;
      ++executing_;
    }

    if (options_.statement_hook_for_test) options_.statement_hook_for_test();

    std::string span_detail;
    if (options_.trace != nullptr) {
      span_detail = "session=" + std::to_string(session->id) +
                    " req=" + std::to_string(item.request_id);
      options_.trace->BeginSpan("stmt", span_detail, NowNs());
    }
    std::uint64_t start_ns = NowNs();
    StatementOutcome outcome;
    if (session->gone.load(std::memory_order_relaxed)) {
      // The session was torn down (not merely detached); skip the work
      // rather than mine for nobody.
      outcome.status = CancelledError("client disconnected");
    } else {
      outcome = ExecuteStatement(session->shell, item.statement);
    }
    std::uint64_t elapsed_ns = NowNs() - start_ns;
    if (options_.trace != nullptr) {
      options_.trace->EndSpan("stmt", span_detail, NowNs(),
                              outcome.ok() ? 1 : 0);
    }

    Frame reply =
        outcome.ok()
            ? Frame{FrameType::kResult, item.request_id, outcome.output}
            : Frame{FrameType::kError, item.request_id,
                    EncodeErrorBody(outcome.status)};
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Count the statement as executed before its reply becomes
      // observable: a client that has the RESULT in hand must see the
      // counter already bumped (the chaos harness compares it against a
      // fault-free oracle).
      ++session->executed;
      ++stats_.statements_executed;
      if (!outcome.ok()) {
        ++session->failed;
        ++stats_.statements_failed;
      }
      if (session->version >= 2) {
        // Cache before sending: a replayed copy of this request racing
        // in from a resumed connection must find either the inflight
        // marker or this cache entry — a gap would re-execute it.
        auto [slot, inserted] = session->cache.emplace(item.request_id, reply);
        if (inserted) {
          session->cache_order.push_back(item.request_id);
          session->cache_bytes += reply.body.size() + kCacheEntryOverhead;
          while (!session->cache_order.empty() &&
                 (session->cache_order.size() > options_.resume_cache_entries ||
                  (session->cache_bytes > options_.resume_cache_bytes &&
                   session->cache_order.size() > 1))) {
            std::uint64_t victim = session->cache_order.front();
            session->cache_order.pop_front();
            auto vit = session->cache.find(victim);
            if (vit != session->cache.end()) {
              session->cache_bytes -=
                  std::min(session->cache_bytes,
                           vit->second.body.size() + kCacheEntryOverhead);
              session->cache.erase(vit);
            }
          }
        }
        session->inflight.erase(item.request_id);
      }
    }

    // Reply before releasing the session to the next statement: replies
    // of one session go out in admission order. A detached session
    // skips the write — the reply waits in the cache for the replay.
    session->Write(reply);

    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
      session->exec_ns += elapsed_ns;
      session->output_bytes += outcome.output.size();
      if (const SpillEnv* env = session->shell.spill_env(); env != nullptr) {
        session->spill_activations = env->stats.activations.load();
        session->spilled_rows = env->stats.spilled_rows.load();
        session->spill_bytes =
            env->stats.bytes_written.load() + env->stats.bytes_read.load();
      }
      if (const BufferPool* pool = session->shell.buffer_pool();
          pool != nullptr) {
        BufferPoolStats bp = pool->stats();
        session->pool_hits = bp.hits;
        session->pool_misses = bp.misses;
        session->pool_evictions = bp.evictions;
      }
      session->learned_optimizer = session->shell.learned_optimizer();
      const OutcomeHistory& history = session->shell.optimizer_history();
      session->learned_contexts = history.context_count();
      session->learned_plays = history.total_plays();
      if (!session->pending.empty()) {
        ready_.push_back(session);
        work_cv_.notify_one();
      } else {
        session->scheduled = false;
      }
      if (queued_ == 0 && executing_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::ReaperLoop() {
  const auto window = std::chrono::milliseconds(options_.resume_timeout_ms);
  const auto tick = std::chrono::milliseconds(
      std::clamp(options_.resume_timeout_ms / 4, 5, 250));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_reaper_) {
    reaper_cv_.wait_for(lock, tick);
    if (stop_reaper_) break;
    auto now = std::chrono::steady_clock::now();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& s = *it->second;
      if (s.detached && now - s.detach_time >= window) {
        // The resume window expired: cancel any still-running work and
        // forget the session. A later RESUME draws NOT_FOUND.
        s.gone.store(true, std::memory_order_relaxed);
        ++stats_.sessions_reaped;
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    draining_ = true;
  }
  // Wake and retire the accept loop: no new sessions.
  {
    char byte = 'x';
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: every admitted statement executes and is answered. Readers
  // keep shedding new arrivals with OVERLOADED meanwhile.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return queued_ == 0 && executing_ == 0; });
    stop_executors_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executor_threads_) t.join();
  executor_threads_.clear();

  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_reaper_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // Unblock and retire the readers (detached sessions have no reader
  // and no fd; attached ones wake from read/poll on the shutdown).
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      session->gone.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> wlock(session->write_mu);
      if (session->fd >= 0) ::shutdown(session->fd, SHUT_RDWR);
    }
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) t.join();

  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
    shut_down_ = true;
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.sessions_active = sessions_.size();
  return out;
}

std::string Server::MetricsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MetricsTextLocked();
}

std::string Server::MetricsTextLocked() const {
  OpMetrics root("server", "port=" + std::to_string(port_) + " sessions=" +
                               std::to_string(sessions_.size()));
  root.rows_in = stats_.statements_received;
  root.rows_out = stats_.statements_executed;

  OpMetrics* admission = root.AddChild(
      "admission",
      "queue_limit=" + std::to_string(options_.max_queue) +
          " quota=" + std::to_string(options_.session_quota) +
          " shed_queue=" + std::to_string(stats_.shed_queue_full) +
          " shed_quota=" + std::to_string(stats_.shed_quota) +
          " shed_drain=" + std::to_string(stats_.shed_draining));
  admission->rows_in = stats_.statements_received;
  admission->rows_out = stats_.statements_admitted;

  // Opt-in, like the per-session nodes below: servers that never lost a
  // connection keep the old STATS shape.
  if (stats_.sessions_detached + stats_.sessions_resumed +
          stats_.sessions_reaped + stats_.replayed_replies +
          stats_.heartbeats_sent >
      0) {
    OpMetrics* resumption = root.AddChild(
        "resumption",
        "detached=" + std::to_string(stats_.sessions_detached) +
            " resumed=" + std::to_string(stats_.sessions_resumed) +
            " reaped=" + std::to_string(stats_.sessions_reaped) +
            " heartbeats=" + std::to_string(stats_.heartbeats_sent));
    resumption->rows_out = stats_.replayed_replies;
  }

  for (const auto& [id, session] : sessions_) {
    std::string detail = "id=" + std::to_string(id) +
                         " shed=" + std::to_string(session->shed) +
                         " errors=" + std::to_string(session->failed);
    if (session->detached) detail += " detached=1";
    if (session->resumes > 0) {
      detail += " resumes=" + std::to_string(session->resumes) +
                " replayed=" + std::to_string(session->replay_hits);
    }
    OpMetrics* node = root.AddChild("session", detail);
    node->rows_in = session->received;
    node->rows_out = session->executed;
    node->wall_ns = session->exec_ns;
    node->mem_bytes = session->output_bytes;
    // Only sessions that actually touched the out-of-core machinery get
    // the extra node; all-in-memory sessions keep the old STATS shape.
    if (session->spill_activations > 0 ||
        session->pool_hits + session->pool_misses > 0) {
      OpMetrics* ooc = node->AddChild(
          "outofcore",
          "spills=" + std::to_string(session->spill_activations) +
              " pool_hits=" + std::to_string(session->pool_hits) +
              " pool_misses=" + std::to_string(session->pool_misses) +
              " pool_evictions=" + std::to_string(session->pool_evictions));
      ooc->rows_out = session->spilled_rows;
      ooc->mem_bytes = session->spill_bytes;
    }
    // Same opt-in shape: only sessions that turned on learned mode or
    // accumulated outcome history grow the optimizer node.
    if (session->learned_optimizer || session->learned_plays > 0) {
      OpMetrics* opt = node->AddChild(
          "optimizer",
          std::string("mode=") +
              (session->learned_optimizer ? "learned" : "static") +
              " contexts=" + std::to_string(session->learned_contexts));
      opt->rows_out = session->learned_plays;
    }
  }
  return root.ToString();
}

}  // namespace qf
