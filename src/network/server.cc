#include "network/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <utility>

#include "network/protocol.h"
#include "network/socket.h"
#include "shell/statement.h"

namespace qf {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// One client connection: its socket, its private shell, its slice of the
// admission queue, and its counters. The reader and one executor at a
// time touch the shell (statements of a session are strictly serialized
// by the `scheduled` flag); the write mutex serializes the socket between
// the reader's inline replies and the executor's results. The fd closes
// when the last shared_ptr drops, so an executor finishing after the
// reader exited never writes into a recycled descriptor.
struct Server::Session {
  std::uint64_t id = 0;
  int fd = -1;
  std::mutex write_mu;
  Shell shell;
  // Tripped when the connection drops (or the server stops); every
  // governed statement of this session polls it via the shell's cancel
  // flag and aborts with CANCELLED.
  std::atomic<bool> gone{false};

  // --- guarded by Server::mu_ ---
  struct Pending {
    std::uint64_t request_id;
    std::string statement;
  };
  std::deque<Pending> pending;
  bool scheduled = false;  // queued in ready_ or currently executing
  std::uint64_t received = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t exec_ns = 0;
  std::uint64_t output_bytes = 0;
  // Out-of-core counters, snapshotted from the shell by the executor
  // after each statement (the shell itself is only safe to touch while
  // the session is scheduled; STATS renders these copies instead).
  std::uint64_t spill_activations = 0;
  std::uint64_t spilled_rows = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_evictions = 0;
  // Learned-optimizer counters, same snapshot discipline: whether the
  // session runs in learned mode, and the shape of its outcome history.
  bool learned_optimizer = false;
  std::uint64_t learned_contexts = 0;
  std::uint64_t learned_plays = 0;

  ~Session() { CloseFd(fd); }

  // Serialized frame write; drops the frame silently once the peer is
  // gone (the socket is half-closed then — errors are expected).
  void Write(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    (void)WriteFrame(fd, frame);
  }
  void WriteError(std::uint64_t request_id, const Status& status) {
    Write(Frame{FrameType::kError, request_id, EncodeErrorBody(status)});
  }
};

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.executors == 0) options_.executors = 1;
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  Result<int> listen_fd =
      TcpListen(server->options_.host, server->options_.port, /*backlog=*/128);
  if (!listen_fd.ok()) return listen_fd.status();
  server->listen_fd_ = *listen_fd;
  Result<std::uint16_t> port = LocalPort(server->listen_fd_);
  if (!port.ok()) {
    CloseFd(server->listen_fd_);
    return port.status();
  }
  server->port_ = *port;
  if (::pipe(server->wake_pipe_) != 0) {
    CloseFd(server->listen_fd_);
    return IoError("pipe: cannot create shutdown wake pipe");
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  for (unsigned i = 0; i < server->options_.executors; ++i) {
    server->executor_threads_.emplace_back(
        [s = server.get()] { s->ExecutorLoop(); });
  }
  return server;
}

Server::~Server() {
  Shutdown();
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
}

void Server::AcceptLoop() {
  while (WaitReadable(listen_fd_, wake_pipe_[0])) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket is gone
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->shell.SeedDatabase(options_.base_db);
    if (options_.session_vfs != nullptr) {
      session->shell.set_vfs(options_.session_vfs);
    }
    session->shell.set_cancel_flag(&session->gone);

    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || sessions_.size() >= options_.max_sessions) {
        ++stats_.sessions_shed;
        reject = true;
      } else {
        session->id = next_session_id_++;
        sessions_[session->id] = session;
        ++stats_.sessions_opened;
        reader_threads_.emplace_back(
            [this, session] { ReaderLoop(session); });
      }
    }
    if (reject) {
      // The session was never registered; answer the handshake the
      // client is about to send with a typed rejection and hang up.
      session->WriteError(0, OverloadedError("session limit reached"));
    }
  }
}

void Server::ReaderLoop(std::shared_ptr<Session> session) {
  // Handshake: the first frame must be a well-formed HELLO.
  ReadEvent event = ReadFrame(session->fd);
  bool handshaken = false;
  if (event.kind == ReadEvent::Kind::kFrame &&
      event.frame.type == FrameType::kHello) {
    Status hello = CheckHelloBody(event.frame.body);
    if (hello.ok()) {
      session->Write(Frame{FrameType::kWelcome, event.frame.request_id,
                           EncodeWelcomeBody(session->id)});
      handshaken = true;
    } else {
      session->WriteError(event.frame.request_id, hello);
    }
  } else if (event.kind == ReadEvent::Kind::kFrame ||
             event.kind == ReadEvent::Kind::kError) {
    Status s = event.kind == ReadEvent::Kind::kError
                   ? event.status
                   : InvalidArgumentError("expected HELLO frame");
    std::uint64_t id =
        event.kind == ReadEvent::Kind::kFrame ? event.frame.request_id : 0;
    session->WriteError(id, s);
  }
  if (!handshaken && event.kind != ReadEvent::Kind::kEof) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.protocol_errors;
  }

  while (handshaken) {
    event = ReadFrame(session->fd);
    if (event.kind == ReadEvent::Kind::kEof) break;
    if (event.kind == ReadEvent::Kind::kError) {
      // Framing is lost; report (best effort) and disconnect. Socket
      // errors during our own shutdown are routine, not protocol noise.
      if (event.status.code() != StatusCode::kIoError) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.protocol_errors;
      }
      session->WriteError(0, event.status);
      break;
    }
    const Frame& frame = event.frame;
    if (frame.type == FrameType::kStmt) {
      AdmitStatement(session, frame.request_id, frame.body);
      continue;
    }
    if (frame.type == FrameType::kPing) {
      session->Write(Frame{FrameType::kPong, frame.request_id, ""});
      continue;
    }
    if (frame.type == FrameType::kStats) {
      session->Write(Frame{FrameType::kResult, frame.request_id,
                           MetricsText()});
      continue;
    }
    if (frame.type == FrameType::kBye) {
      session->Write(Frame{FrameType::kBye, frame.request_id, ""});
      break;
    }
    // Server-to-client frame types (or a second HELLO) from a client are
    // protocol violations.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    session->WriteError(frame.request_id,
                        InvalidArgumentError("unexpected frame type"));
    break;
  }

  // Cancel whatever is running/queued for this session and unregister.
  // The Session object (and its fd) stays alive until the last executor
  // reference drops.
  session->gone.store(true, std::memory_order_relaxed);
  ::shutdown(session->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session->id);
}

void Server::AdmitStatement(const std::shared_ptr<Session>& session,
                            std::uint64_t request_id, std::string statement) {
  Status shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++session->received;
    ++stats_.statements_received;
    std::size_t session_load =
        session->pending.size() + (session->scheduled ? 1 : 0);
    if (draining_) {
      shed = OverloadedError("server is shutting down");
      ++stats_.shed_draining;
    } else if (queued_ >= options_.max_queue) {
      shed = OverloadedError("admission queue full (" +
                             std::to_string(options_.max_queue) +
                             " statements)");
      ++stats_.shed_queue_full;
    } else if (session_load >= options_.session_quota) {
      shed = OverloadedError("session quota exceeded (" +
                             std::to_string(options_.session_quota) +
                             " statements in flight)");
      ++stats_.shed_quota;
    } else {
      session->pending.push_back(
          Session::Pending{request_id, std::move(statement)});
      ++queued_;
      ++stats_.statements_admitted;
      if (!session->scheduled) {
        session->scheduled = true;
        ready_.push_back(session);
        work_cv_.notify_one();
      }
      return;
    }
    ++session->shed;
  }
  session->WriteError(request_id, shed);
}

void Server::ExecutorLoop() {
  while (true) {
    std::shared_ptr<Session> session;
    Session::Pending item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_executors_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop requested, queue drained
      session = ready_.front();
      ready_.pop_front();
      item = std::move(session->pending.front());
      session->pending.pop_front();
      --queued_;
      ++executing_;
    }

    if (options_.statement_hook_for_test) options_.statement_hook_for_test();

    std::string span_detail;
    if (options_.trace != nullptr) {
      span_detail = "session=" + std::to_string(session->id) +
                    " req=" + std::to_string(item.request_id);
      options_.trace->BeginSpan("stmt", span_detail, NowNs());
    }
    std::uint64_t start_ns = NowNs();
    StatementOutcome outcome;
    if (session->gone.load(std::memory_order_relaxed)) {
      // The client is gone; skip the work rather than mine for nobody.
      outcome.status = CancelledError("client disconnected");
    } else {
      outcome = ExecuteStatement(session->shell, item.statement);
    }
    std::uint64_t elapsed_ns = NowNs() - start_ns;
    if (options_.trace != nullptr) {
      options_.trace->EndSpan("stmt", span_detail, NowNs(),
                              outcome.ok() ? 1 : 0);
    }

    // Reply before releasing the session to the next statement: replies
    // of one session go out in admission order.
    if (outcome.ok()) {
      session->Write(
          Frame{FrameType::kResult, item.request_id, outcome.output});
    } else {
      session->WriteError(item.request_id, outcome.status);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
      ++session->executed;
      ++stats_.statements_executed;
      if (!outcome.ok()) {
        ++session->failed;
        ++stats_.statements_failed;
      }
      session->exec_ns += elapsed_ns;
      session->output_bytes += outcome.output.size();
      if (const SpillEnv* env = session->shell.spill_env(); env != nullptr) {
        session->spill_activations = env->stats.activations.load();
        session->spilled_rows = env->stats.spilled_rows.load();
        session->spill_bytes =
            env->stats.bytes_written.load() + env->stats.bytes_read.load();
      }
      if (const BufferPool* pool = session->shell.buffer_pool();
          pool != nullptr) {
        BufferPoolStats bp = pool->stats();
        session->pool_hits = bp.hits;
        session->pool_misses = bp.misses;
        session->pool_evictions = bp.evictions;
      }
      session->learned_optimizer = session->shell.learned_optimizer();
      const OutcomeHistory& history = session->shell.optimizer_history();
      session->learned_contexts = history.context_count();
      session->learned_plays = history.total_plays();
      if (!session->pending.empty()) {
        ready_.push_back(session);
        work_cv_.notify_one();
      } else {
        session->scheduled = false;
      }
      if (queued_ == 0 && executing_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    draining_ = true;
  }
  // Wake and retire the accept loop: no new sessions.
  {
    char byte = 'x';
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: every admitted statement executes and is answered. Readers
  // keep shedding new arrivals with OVERLOADED meanwhile.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return queued_ == 0 && executing_ == 0; });
    stop_executors_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executor_threads_) t.join();
  executor_threads_.clear();

  // Unblock and retire the readers.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      session->gone.store(true, std::memory_order_relaxed);
      ::shutdown(session->fd, SHUT_RDWR);
    }
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) t.join();

  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
    shut_down_ = true;
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.sessions_active = sessions_.size();
  return out;
}

std::string Server::MetricsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MetricsTextLocked();
}

std::string Server::MetricsTextLocked() const {
  OpMetrics root("server", "port=" + std::to_string(port_) + " sessions=" +
                               std::to_string(sessions_.size()));
  root.rows_in = stats_.statements_received;
  root.rows_out = stats_.statements_executed;

  OpMetrics* admission = root.AddChild(
      "admission",
      "queue_limit=" + std::to_string(options_.max_queue) +
          " quota=" + std::to_string(options_.session_quota) +
          " shed_queue=" + std::to_string(stats_.shed_queue_full) +
          " shed_quota=" + std::to_string(stats_.shed_quota) +
          " shed_drain=" + std::to_string(stats_.shed_draining));
  admission->rows_in = stats_.statements_received;
  admission->rows_out = stats_.statements_admitted;

  for (const auto& [id, session] : sessions_) {
    OpMetrics* node = root.AddChild(
        "session", "id=" + std::to_string(id) +
                       " shed=" + std::to_string(session->shed) +
                       " errors=" + std::to_string(session->failed));
    node->rows_in = session->received;
    node->rows_out = session->executed;
    node->wall_ns = session->exec_ns;
    node->mem_bytes = session->output_bytes;
    // Only sessions that actually touched the out-of-core machinery get
    // the extra node; all-in-memory sessions keep the old STATS shape.
    if (session->spill_activations > 0 ||
        session->pool_hits + session->pool_misses > 0) {
      OpMetrics* ooc = node->AddChild(
          "outofcore",
          "spills=" + std::to_string(session->spill_activations) +
              " pool_hits=" + std::to_string(session->pool_hits) +
              " pool_misses=" + std::to_string(session->pool_misses) +
              " pool_evictions=" + std::to_string(session->pool_evictions));
      ooc->rows_out = session->spilled_rows;
      ooc->mem_bytes = session->spill_bytes;
    }
    // Same opt-in shape: only sessions that turned on learned mode or
    // accumulated outcome history grow the optimizer node.
    if (session->learned_optimizer || session->learned_plays > 0) {
      OpMetrics* opt = node->AddChild(
          "optimizer",
          std::string("mode=") +
              (session->learned_optimizer ? "learned" : "static") +
              " contexts=" + std::to_string(session->learned_contexts));
      opt->rows_out = session->learned_plays;
    }
  }
  return root.ToString();
}

}  // namespace qf
