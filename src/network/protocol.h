// The qfserverd wire protocol: length-prefixed, CRC32C-framed binary
// request/response over a byte stream (TCP), shared by the server
// (network/server.h), the blocking client library (network/client.h),
// and tools/load_test.py (which re-implements it in Python).
//
// Frame layout (all integers little-endian):
//
//   [u32 payload length][u32 masked CRC32C of payload][payload bytes]
//   payload = [u8 frame type][u64 request id][body...]
//
// The CRC is masked LevelDB-style (common/crc32c.h), the same framing the
// catalog WAL uses, so one checksum discipline guards both disk and wire.
// The payload length is validated against kMaxPayloadBytes *before* any
// allocation: a hostile length prefix costs the server nothing.
//
// Conversation (protocol version 2; version 1 clients still speak the
// PR 6 subset and are answered in kind):
//   1. Handshake. The client's first frame must be HELLO (body = u32
//      magic "QFLK" + u32 protocol version, 1 or 2). The server answers
//      WELCOME — for v1 a 12-byte body (u32 version + u64 session id),
//      for v2 a 20-byte body that also carries a u64 resume token — or a
//      typed ERROR frame (FAILED_PRECONDITION for an unsupported
//      version) and disconnects.
//   2. Requests. STMT carries one shell statement; the server answers
//      RESULT (body = printable output) or ERROR (body = u8 StatusCode +
//      message), echoing the request id. Replies to *admitted* statements
//      arrive in admission order; shed statements (typed OVERLOADED
//      ERROR) are answered immediately, so ids let a pipelining client
//      match replies to requests. PING answers PONG and STATS answers
//      RESULT immediately, bypassing the admission queue. BYE is answered
//      with BYE, then the server closes.
//   3. Resumption (v2). A connection loss does not end a v2 session: the
//      server parks it (replies to still-running statements land in a
//      bounded per-session replay cache) until a resume timeout reaps
//      it. A reconnecting client handshakes a fresh session, then sends
//      RESUME (body = u64 old session id + u64 resume token); on a match
//      the server re-attaches the old session to this connection,
//      discards the fresh one, and answers RESUMED (body = u64 session
//      id). The client then replays its unanswered requests under their
//      original ids: anything that already executed is answered from the
//      replay cache, anything still in flight is deduplicated, anything
//      never received is admitted normally — WAL-before-ack mutations
//      are exactly-once across connection loss, never maybe-twice. A bad
//      RESUME draws a typed ERROR (NOT_FOUND) and the conversation
//      continues on the fresh session.
//   4. Heartbeats (v2). On an idle connection the server sends
//      HEARTBEAT frames; clients ignore them (and may send their own,
//      which the server ignores). A heartbeat write that fails marks the
//      connection dead and detaches the session.
//   5. Any malformed frame — oversized or truncated length, checksum
//      mismatch, unknown type, mid-handshake garbage — draws a
//      best-effort typed ERROR frame and a disconnect, never a hang:
//      after framing is lost the stream cannot be resynchronized.
//
// Error frames reuse StatusCode (common/status.h) as their on-wire code,
// so a client sees exactly the typed status a local shell would return:
// DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED, OVERLOADED, ...
//
// All stream I/O goes through the SocketOps seam (network/socket.h);
// FaultSocketOps (network/fault_socket.h) injects disconnects, short
// I/O, typed errnos, and corruption for the chaos suites.
#ifndef QF_NETWORK_PROTOCOL_H_
#define QF_NETWORK_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "network/socket.h"

namespace qf {

inline constexpr std::uint32_t kProtocolVersion = 2;
// Oldest client version the server still serves (the PR 6 protocol:
// no RESUME/RESUMED/HEARTBEAT, 12-byte WELCOME, no resumption).
inline constexpr std::uint32_t kMinProtocolVersion = 1;
// "QFLK", read as a little-endian u32.
inline constexpr std::uint32_t kProtocolMagic = 0x4B4C4651u;
// Hard ceiling on one frame's payload; validated before allocation.
// Generous for statements and result previews alike.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;
// [u32 length][u32 masked crc]
inline constexpr std::size_t kFrameHeaderBytes = 8;
// [u8 type][u64 request id]
inline constexpr std::size_t kMinPayloadBytes = 9;

enum class FrameType : std::uint8_t {
  kHello = 1,      // client -> server: u32 magic, u32 version
  kWelcome = 2,    // server -> client: u32 version, u64 session id,
                   //   and (v2) u64 resume token
  kStmt = 3,       // client -> server: statement text
  kResult = 4,     // server -> client: output text
  kError = 5,      // server -> client: u8 StatusCode, message text
  kPing = 6,       // client -> server: empty
  kPong = 7,       // server -> client: empty
  kStats = 8,      // client -> server: empty; answered with kResult
  kBye = 9,        // either direction: clean shutdown of the conversation
  kResume = 10,    // client -> server (v2): u64 session id, u64 token
  kResumed = 11,   // server -> client (v2): u64 session id
  kHeartbeat = 12, // either direction (v2): empty; ignored by receivers
};

// True for the FrameType values above (the wire is untrusted input).
bool IsKnownFrameType(std::uint8_t type);

struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::string body;
};

// Little-endian integer append/read helpers, shared with the frame
// bodies (HELLO/WELCOME/RESUME/ERROR payloads).
void AppendU32(std::string& out, std::uint32_t v);
void AppendU64(std::string& out, std::uint64_t v);
// Read at `offset`; false when fewer than 4/8 bytes remain.
bool ReadU32(std::string_view bytes, std::size_t offset, std::uint32_t* v);
bool ReadU64(std::string_view bytes, std::size_t offset, std::uint64_t* v);

// Serializes `frame` as one wire frame (header + checksummed payload).
std::string EncodeFrame(const Frame& frame);

// Incremental decode of the frame at the front of `bytes`.
struct DecodeOutcome {
  // Not enough bytes buffered yet; nothing consumed, no error.
  bool need_more = false;
  // Bytes consumed from the front when a frame (or a framing error)
  // was produced.
  std::size_t consumed = 0;
  Frame frame;
  // Non-OK when the stream is poisoned: oversized length, checksum
  // mismatch, short or unknown payload. Framing cannot be recovered
  // after this — the connection must be dropped.
  Status status;
};
DecodeOutcome DecodeFrame(std::string_view bytes);

// Typed-error body helpers: the ERROR frame body is one StatusCode byte
// plus the message text.
std::string EncodeErrorBody(const Status& status);
// Decodes an ERROR body; an unknown code byte maps to INTERNAL (wire is
// untrusted), an empty body to INTERNAL "empty error frame".
Status DecodeErrorBody(std::string_view body);

// Handshake bodies. CheckHelloBody returns the negotiated version (the
// client's, when the server supports it) or a typed error:
// INVALID_ARGUMENT for a short body or bad magic, FAILED_PRECONDITION
// for a version outside [kMinProtocolVersion, kProtocolVersion].
std::string EncodeHelloBody(std::uint32_t version = kProtocolVersion);
Result<std::uint32_t> CheckHelloBody(std::string_view body);

struct Welcome {
  std::uint32_t version = 0;
  std::uint64_t session_id = 0;
  // Zero for v1 sessions (not resumable).
  std::uint64_t resume_token = 0;
};
// Encodes the version-appropriate body: v1 = [u32 version][u64 id],
// v2 = [u32 version][u64 id][u64 token].
std::string EncodeWelcomeBody(const Welcome& welcome);
Result<Welcome> DecodeWelcomeBody(std::string_view body);

// RESUME bodies: [u64 session id][u64 resume token].
struct ResumeRequest {
  std::uint64_t session_id = 0;
  std::uint64_t resume_token = 0;
};
std::string EncodeResumeBody(const ResumeRequest& resume);
Result<ResumeRequest> DecodeResumeBody(std::string_view body);

// --- blocking stream I/O (POSIX fd) ---

// One read event: a frame, a clean end-of-stream at a frame boundary, or
// an error (typed: INVALID_ARGUMENT for protocol violations, IO_ERROR
// for socket failures, DEADLINE_EXCEEDED when a socket timeout set via
// SetSocketTimeouts expires mid-read).
struct ReadEvent {
  enum class Kind { kFrame, kEof, kError };
  Kind kind = Kind::kError;
  Frame frame;
  Status status;
};
// `ops` selects the I/O seam; null = DefaultSocketOps().
ReadEvent ReadFrame(int fd, SocketOps* ops = nullptr);

// Writes the whole encoded frame (EINTR-retrying, SIGPIPE-suppressing).
// A socket send timeout surfaces as DEADLINE_EXCEEDED.
Status WriteFrame(int fd, const Frame& frame, SocketOps* ops = nullptr);

}  // namespace qf

#endif  // QF_NETWORK_PROTOCOL_H_
