// The qfserverd wire protocol: length-prefixed, CRC32C-framed binary
// request/response over a byte stream (TCP), shared by the server
// (network/server.h), the blocking client library (network/client.h),
// and tools/load_test.py (which re-implements it in Python).
//
// Frame layout (all integers little-endian):
//
//   [u32 payload length][u32 masked CRC32C of payload][payload bytes]
//   payload = [u8 frame type][u64 request id][body...]
//
// The CRC is masked LevelDB-style (common/crc32c.h), the same framing the
// catalog WAL uses, so one checksum discipline guards both disk and wire.
// The payload length is validated against kMaxPayloadBytes *before* any
// allocation: a hostile length prefix costs the server nothing.
//
// Conversation:
//   1. Handshake. The client's first frame must be HELLO (body = u32
//      magic "QFLK" + u32 protocol version). The server answers WELCOME
//      (body = u32 version + u64 session id) or a typed ERROR frame
//      (FAILED_PRECONDITION for a version mismatch) and disconnects.
//   2. Requests. STMT carries one shell statement; the server answers
//      RESULT (body = printable output) or ERROR (body = u8 StatusCode +
//      message), echoing the request id. Replies to *admitted* statements
//      arrive in admission order; shed statements (typed OVERLOADED
//      ERROR) are answered immediately, so ids let a pipelining client
//      match replies to requests. PING answers PONG and STATS answers
//      RESULT immediately, bypassing the admission queue. BYE is answered
//      with BYE, then the server closes.
//   3. Any malformed frame — oversized or truncated length, checksum
//      mismatch, unknown type, mid-handshake garbage — draws a
//      best-effort typed ERROR frame and a disconnect, never a hang:
//      after framing is lost the stream cannot be resynchronized.
//
// Error frames reuse StatusCode (common/status.h) as their on-wire code,
// so a client sees exactly the typed status a local shell would return:
// DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED, OVERLOADED, ...
#ifndef QF_NETWORK_PROTOCOL_H_
#define QF_NETWORK_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qf {

inline constexpr std::uint32_t kProtocolVersion = 1;
// "QFLK", read as a little-endian u32.
inline constexpr std::uint32_t kProtocolMagic = 0x4B4C4651u;
// Hard ceiling on one frame's payload; validated before allocation.
// Generous for statements and result previews alike.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;
// [u32 length][u32 masked crc]
inline constexpr std::size_t kFrameHeaderBytes = 8;
// [u8 type][u64 request id]
inline constexpr std::size_t kMinPayloadBytes = 9;

enum class FrameType : std::uint8_t {
  kHello = 1,    // client -> server: u32 magic, u32 version
  kWelcome = 2,  // server -> client: u32 version, u64 session id
  kStmt = 3,     // client -> server: statement text
  kResult = 4,   // server -> client: output text
  kError = 5,    // server -> client: u8 StatusCode, message text
  kPing = 6,     // client -> server: empty
  kPong = 7,     // server -> client: empty
  kStats = 8,    // client -> server: empty; answered with kResult
  kBye = 9,      // either direction: clean shutdown of the conversation
};

// True for the FrameType values above (the wire is untrusted input).
bool IsKnownFrameType(std::uint8_t type);

struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::string body;
};

// Little-endian integer append/read helpers, shared with the frame
// bodies (HELLO/WELCOME/ERROR payloads).
void AppendU32(std::string& out, std::uint32_t v);
void AppendU64(std::string& out, std::uint64_t v);
// Read at `offset`; false when fewer than 4/8 bytes remain.
bool ReadU32(std::string_view bytes, std::size_t offset, std::uint32_t* v);
bool ReadU64(std::string_view bytes, std::size_t offset, std::uint64_t* v);

// Serializes `frame` as one wire frame (header + checksummed payload).
std::string EncodeFrame(const Frame& frame);

// Incremental decode of the frame at the front of `bytes`.
struct DecodeOutcome {
  // Not enough bytes buffered yet; nothing consumed, no error.
  bool need_more = false;
  // Bytes consumed from the front when a frame (or a framing error)
  // was produced.
  std::size_t consumed = 0;
  Frame frame;
  // Non-OK when the stream is poisoned: oversized length, checksum
  // mismatch, short or unknown payload. Framing cannot be recovered
  // after this — the connection must be dropped.
  Status status;
};
DecodeOutcome DecodeFrame(std::string_view bytes);

// Typed-error body helpers: the ERROR frame body is one StatusCode byte
// plus the message text.
std::string EncodeErrorBody(const Status& status);
// Decodes an ERROR body; an unknown code byte maps to INTERNAL (wire is
// untrusted), an empty body to INTERNAL "empty error frame".
Status DecodeErrorBody(std::string_view body);

// Handshake bodies.
std::string EncodeHelloBody();
Status CheckHelloBody(std::string_view body);  // magic + version match?
std::string EncodeWelcomeBody(std::uint64_t session_id);
Result<std::uint64_t> DecodeWelcomeBody(std::string_view body);

// --- blocking stream I/O (POSIX fd) ---

// One read event: a frame, a clean end-of-stream at a frame boundary, or
// an error (typed: INVALID_ARGUMENT for protocol violations, IO_ERROR
// for socket failures).
struct ReadEvent {
  enum class Kind { kFrame, kEof, kError };
  Kind kind = Kind::kError;
  Frame frame;
  Status status;
};
ReadEvent ReadFrame(int fd);

// Writes the whole encoded frame (EINTR-retrying, SIGPIPE-suppressing).
Status WriteFrame(int fd, const Frame& frame);

}  // namespace qf

#endif  // QF_NETWORK_PROTOCOL_H_
