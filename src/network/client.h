// Blocking client for the qfserverd wire protocol (network/protocol.h):
// the library under the qfclient CLI, tools scripts, and the network test
// suites. One Client is one session; it is not thread-safe (use one per
// thread, like a Shell).
//
// Two usage levels:
//   * Execute(stmt) — send one statement, wait for its reply. An ERROR
//     frame comes back as that frame's typed Status (DEADLINE_EXCEEDED,
//     OVERLOADED, ...), exactly what a local Shell::Execute would return.
//   * Send()/Recv() — pipelining: queue several statements, then collect
//     replies. Replies to admitted statements arrive in admission order;
//     shed statements are answered immediately, so callers match replies
//     to requests by the echoed request id.
#ifndef QF_NETWORK_CLIENT_H_
#define QF_NETWORK_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "network/protocol.h"

namespace qf {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and handshakes. A version-mismatch or overload rejection
  // from the server comes back as that typed status.
  static Result<Client> Connect(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  std::uint64_t session_id() const { return session_id_; }

  // Sends one STMT frame; returns its request id without waiting.
  Result<std::uint64_t> Send(std::string_view statement);

  // One statement's reply.
  struct Reply {
    std::uint64_t request_id = 0;
    Status status;       // OK for RESULT frames, typed for ERROR frames
    std::string output;  // RESULT body (empty on error)
  };

  // Blocks for the next RESULT/ERROR frame. Fails with IO_ERROR or
  // INVALID_ARGUMENT if the connection breaks or the server misspeaks.
  Result<Reply> Recv();

  // Send + Recv: one statement, its output. An error reply becomes the
  // returned status. Must not be interleaved with pending pipelined
  // sends (replies would be misattributed).
  Result<std::string> Execute(std::string_view statement);

  // The server's metrics tree (STATS frame), rendered as text.
  Result<std::string> Stats();

  // Liveness probe (PING/PONG round trip).
  Status Ping();

  // Best-effort BYE, then closes the socket. Idempotent.
  void Close();

 private:
  int fd_ = -1;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace qf

#endif  // QF_NETWORK_CLIENT_H_
