// Blocking client for the qfserverd wire protocol (network/protocol.h):
// the library under the qfclient CLI, tools scripts, and the network test
// suites. One Client is one session; it is not thread-safe (use one per
// thread, like a Shell).
//
// Two usage levels:
//   * Execute(stmt) — send one statement, wait for its reply. An ERROR
//     frame comes back as that frame's typed Status (DEADLINE_EXCEEDED,
//     OVERLOADED, ...), exactly what a local Shell::Execute would return.
//   * Send()/Recv() — pipelining: queue several statements, then collect
//     replies. Recv delivers replies in send order (shed statements are
//     answered by the server immediately, but the client stashes
//     out-of-order arrivals), echoing each request id.
//
// Fault tolerance (protocol v2, on by default): when the connection
// breaks — reset, mid-frame EOF, or a poisoned stream — the client
// redials with capped exponential backoff (common/retry.h), RESUMEs its
// session with the token from WELCOME, and replays every unanswered
// request under its original id. The server answers already-executed ids
// from its replay cache and deduplicates in-flight ones, so Execute() is
// exactly-once across connection loss: a mutation acknowledged after a
// reconnect ran once, not maybe-twice. Replies the server sent twice
// (once into the dying socket, once from the cache) are deduplicated
// here by request id. A session the server already reaped surfaces as
// NOT_FOUND. Socket timeouts (ClientOptions::timeout_ms) surface as
// DEADLINE_EXCEEDED without a reconnect: the connection is still
// well-framed, only slow. Server HEARTBEAT frames are consumed silently.
#ifndef QF_NETWORK_CLIENT_H_
#define QF_NETWORK_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "common/resource.h"
#include "common/retry.h"
#include "common/status.h"
#include "network/protocol.h"

namespace qf {

struct ClientOptions {
  // Socket send/receive timeouts (SO_SNDTIMEO/SO_RCVTIMEO), applied to
  // every connection this client dials. 0 = block forever. An expired
  // timeout surfaces as DEADLINE_EXCEEDED instead of a hang.
  int timeout_ms = 0;
  // Redial budget per connection loss (attempts of the full
  // dial+handshake+RESUME+replay sequence). 0 disables reconnection:
  // a lost connection is a terminal IO_ERROR, as in protocol v1.
  int max_reconnects = 8;
  // Backoff schedule between redial attempts; max_attempts is ignored
  // in favor of max_reconnects.
  RetryPolicy reconnect_backoff{/*max_attempts=*/8, /*base_delay_us=*/2'000,
                                /*max_delay_us=*/200'000};
  // Seed for the deterministic backoff jitter (common/rng.h).
  std::uint64_t backoff_seed = 0x51F0C4C55AFED00Dull;
  // Governor: cancellation/deadline polled during backoff sleeps and
  // between redial attempts. May be null.
  QueryContext* ctx = nullptr;
  // Socket I/O seam (null = plain syscalls); the chaos tests point this
  // at a FaultSocketOps to break the client side of the conversation.
  SocketOps* socket_ops = nullptr;
  // Protocol version to offer in HELLO. Version 1 keeps the PR 6
  // behaviour end to end: no resume token, no reconnection.
  std::uint32_t protocol_version = kProtocolVersion;
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and handshakes. A version-mismatch or overload rejection
  // from the server comes back as that typed status.
  static Result<Client> Connect(const std::string& host, std::uint16_t port,
                                ClientOptions options = {});

  bool connected() const { return fd_ >= 0; }
  std::uint64_t session_id() const { return session_id_; }
  // The resume token from WELCOME; zero for v1 sessions.
  std::uint64_t resume_token() const { return token_; }
  // Connection losses successfully resumed away so far.
  std::uint64_t reconnects() const { return reconnects_; }

  // Sends one STMT frame; returns its request id without waiting. The
  // request stays tracked (and is replayed across reconnects) until
  // Recv delivers its reply.
  Result<std::uint64_t> Send(std::string_view statement);

  // One statement's reply.
  struct Reply {
    std::uint64_t request_id = 0;
    Status status;       // OK for RESULT frames, typed for ERROR frames
    std::string output;  // RESULT body (empty on error)
  };

  // Blocks for the oldest unanswered request's reply (send order).
  // Fails with IO_ERROR or INVALID_ARGUMENT only once the connection
  // broke and could not be resumed.
  Result<Reply> Recv();

  // Send + Recv: one statement, its output. An error reply becomes the
  // returned status. Must not be interleaved with pending pipelined
  // sends (replies would be misattributed).
  Result<std::string> Execute(std::string_view statement);

  // The server's metrics tree (STATS frame), rendered as text.
  Result<std::string> Stats();

  // Liveness probe (PING/PONG round trip).
  Status Ping();

  // Best-effort BYE (ends the session server-side: a BYE'd session is
  // not resumable), then closes the socket. Idempotent.
  void Close();

 private:
  struct Outstanding {
    std::uint64_t request_id = 0;
    std::string statement;
  };

  // Dials, applies timeouts, handshakes. On success *welcome holds the
  // server's WELCOME and the connected fd is returned.
  static Result<int> Dial(const std::string& host, std::uint16_t port,
                          const ClientOptions& options, Welcome* welcome);
  // True for statuses that mean "the connection is unusable" (reset,
  // EOF mid-frame, poisoned framing) rather than a typed reply.
  static bool ConnectionLost(const Status& status);
  // Redial + RESUME + replay of outstanding_, with backoff. On failure
  // the client is closed and the terminal status returned.
  Status Reconnect(Status cause);
  // One redial attempt (no backoff).
  Status TryResume();
  // Reads one frame, transparently consuming heartbeats and resuming
  // across connection loss. `retriable_op`: when non-null and the
  // connection is re-established, the frame in it is re-sent before
  // reading on (for PING/STATS, which are not tracked in outstanding_).
  Result<Frame> ReadReplyFrame(const Frame* retriable_op);
  // True when `frame` was a statement reply and was consumed here:
  // stashed for its outstanding request, or dropped as a post-resume
  // duplicate. Frames answering `self_id` are left for the caller.
  bool ConsumeReply(Frame& frame, std::uint64_t self_id);
  // Removes `request_id` from outstanding_; false if it wasn't there
  // (its reply was already delivered — a post-resume duplicate).
  bool EraseOutstanding(std::uint64_t request_id);

  std::string host_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t session_id_ = 0;
  std::uint64_t token_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t reconnects_ = 0;
  Rng backoff_rng_;
  // Sent-but-unanswered statements, oldest first; replayed on resume.
  std::deque<Outstanding> outstanding_;
  // Replies consumed while waiting on a different frame (PING/STATS,
  // resume replay); drained by Recv before reading the socket.
  std::map<std::uint64_t, Reply> stash_;
};

}  // namespace qf

#endif  // QF_NETWORK_CLIENT_H_
