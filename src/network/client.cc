#include "network/client.h"

#include <utility>

#include "network/socket.h"

namespace qf {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    session_id_ = std::exchange(other.session_id_, 0);
    next_request_id_ = std::exchange(other.next_request_id_, 1);
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port) {
  Result<int> fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  Client client;
  client.fd_ = *fd;

  Frame hello{FrameType::kHello, 0, EncodeHelloBody()};
  if (Status s = WriteFrame(client.fd_, hello); !s.ok()) return s;
  ReadEvent event = ReadFrame(client.fd_);
  if (event.kind == ReadEvent::Kind::kEof) {
    return IoError("server closed the connection during handshake");
  }
  if (event.kind == ReadEvent::Kind::kError) return event.status;
  if (event.frame.type == FrameType::kError) {
    return DecodeErrorBody(event.frame.body);
  }
  if (event.frame.type != FrameType::kWelcome) {
    return InvalidArgumentError("expected WELCOME frame from server");
  }
  Result<std::uint64_t> session_id = DecodeWelcomeBody(event.frame.body);
  if (!session_id.ok()) return session_id.status();
  client.session_id_ = *session_id;
  return client;
}

Result<std::uint64_t> Client::Send(std::string_view statement) {
  if (!connected()) return FailedPreconditionError("client is not connected");
  std::uint64_t id = next_request_id_++;
  Frame frame{FrameType::kStmt, id, std::string(statement)};
  if (Status s = WriteFrame(fd_, frame); !s.ok()) return s;
  return id;
}

Result<Client::Reply> Client::Recv() {
  if (!connected()) return FailedPreconditionError("client is not connected");
  ReadEvent event = ReadFrame(fd_);
  if (event.kind == ReadEvent::Kind::kEof) {
    return IoError("server closed the connection");
  }
  if (event.kind == ReadEvent::Kind::kError) return event.status;
  Reply reply;
  reply.request_id = event.frame.request_id;
  if (event.frame.type == FrameType::kResult) {
    reply.output = std::move(event.frame.body);
    return reply;
  }
  if (event.frame.type == FrameType::kError) {
    reply.status = DecodeErrorBody(event.frame.body);
    return reply;
  }
  return InvalidArgumentError("unexpected reply frame type");
}

Result<std::string> Client::Execute(std::string_view statement) {
  Result<std::uint64_t> id = Send(statement);
  if (!id.ok()) return id.status();
  Result<Reply> reply = Recv();
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->output);
}

Result<std::string> Client::Stats() {
  if (!connected()) return FailedPreconditionError("client is not connected");
  std::uint64_t id = next_request_id_++;
  if (Status s = WriteFrame(fd_, Frame{FrameType::kStats, id, ""}); !s.ok()) {
    return s;
  }
  Result<Reply> reply = Recv();
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->output);
}

Status Client::Ping() {
  if (!connected()) return FailedPreconditionError("client is not connected");
  std::uint64_t id = next_request_id_++;
  if (Status s = WriteFrame(fd_, Frame{FrameType::kPing, id, ""}); !s.ok()) {
    return s;
  }
  ReadEvent event = ReadFrame(fd_);
  if (event.kind == ReadEvent::Kind::kEof) {
    return IoError("server closed the connection");
  }
  if (event.kind == ReadEvent::Kind::kError) return event.status;
  if (event.frame.type == FrameType::kError) {
    return DecodeErrorBody(event.frame.body);
  }
  if (event.frame.type != FrameType::kPong || event.frame.request_id != id) {
    return InvalidArgumentError("unexpected PING reply");
  }
  return Status::Ok();
}

void Client::Close() {
  if (!connected()) return;
  (void)WriteFrame(fd_, Frame{FrameType::kBye, next_request_id_++, ""});
  CloseFd(fd_);
  fd_ = -1;
}

}  // namespace qf
