#include "network/client.h"

#include <utility>

#include "network/socket.h"

namespace qf {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = std::exchange(other.port_, 0);
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    session_id_ = std::exchange(other.session_id_, 0);
    token_ = std::exchange(other.token_, 0);
    next_request_id_ = std::exchange(other.next_request_id_, 1);
    reconnects_ = std::exchange(other.reconnects_, 0);
    backoff_rng_ = other.backoff_rng_;
    outstanding_ = std::move(other.outstanding_);
    stash_ = std::move(other.stash_);
    other.outstanding_.clear();
    other.stash_.clear();
  }
  return *this;
}

Result<int> Client::Dial(const std::string& host, std::uint16_t port,
                         const ClientOptions& options, Welcome* welcome) {
  Result<int> fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  int nfd = *fd;
  auto fail = [nfd](Status status) -> Result<int> {
    CloseFd(nfd);
    return status;
  };
  if (options.timeout_ms > 0) {
    if (Status s = SetSocketTimeouts(nfd, options.timeout_ms); !s.ok()) {
      return fail(std::move(s));
    }
  }
  Frame hello{FrameType::kHello, 0, EncodeHelloBody(options.protocol_version)};
  if (Status s = WriteFrame(nfd, hello, options.socket_ops); !s.ok()) {
    return fail(std::move(s));
  }
  while (true) {
    ReadEvent event = ReadFrame(nfd, options.socket_ops);
    if (event.kind == ReadEvent::Kind::kEof) {
      return fail(IoError("server closed the connection during handshake"));
    }
    if (event.kind == ReadEvent::Kind::kError) return fail(event.status);
    if (event.frame.type == FrameType::kHeartbeat) continue;
    if (event.frame.type == FrameType::kError) {
      return fail(DecodeErrorBody(event.frame.body));
    }
    if (event.frame.type != FrameType::kWelcome) {
      return fail(InvalidArgumentError("expected WELCOME frame from server"));
    }
    Result<Welcome> decoded = DecodeWelcomeBody(event.frame.body);
    if (!decoded.ok()) return fail(decoded.status());
    *welcome = *decoded;
    return nfd;
  }
}

Result<Client> Client::Connect(const std::string& host, std::uint16_t port,
                               ClientOptions options) {
  Client client;
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  client.backoff_rng_ = Rng(options.backoff_seed);
  Welcome welcome;
  Result<int> fd = Dial(host, port, options, &welcome);
  if (!fd.ok()) return fd.status();
  client.fd_ = *fd;
  client.session_id_ = welcome.session_id;
  client.token_ = welcome.resume_token;  // zero for v1: nothing to resume
  return client;
}

bool Client::ConnectionLost(const Status& status) {
  // IO_ERROR: reset/EOF/mid-frame timeout. INVALID_ARGUMENT from
  // ReadFrame: the stream is poisoned (corrupt length, bad checksum) —
  // framing cannot be recovered, only a redial can. Typed statuses like
  // a boundary DEADLINE_EXCEEDED leave the connection usable.
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kInvalidArgument;
}

Status Client::TryResume() {
  Welcome welcome;
  Result<int> fd = Dial(host_, port_, options_, &welcome);
  if (!fd.ok()) return fd.status();
  int nfd = *fd;
  auto fail = [nfd](Status status) {
    CloseFd(nfd);
    return status;
  };
  if (welcome.version < 2) {
    return fail(FailedPreconditionError(
        "server negotiated protocol v1; session not resumable"));
  }
  // Re-attach under our original identity; the fresh session from this
  // handshake is discarded by the server on success.
  Frame resume{FrameType::kResume, 0,
               EncodeResumeBody(ResumeRequest{session_id_, token_})};
  if (Status s = WriteFrame(nfd, resume, options_.socket_ops); !s.ok()) {
    return fail(std::move(s));
  }
  while (true) {
    ReadEvent event = ReadFrame(nfd, options_.socket_ops);
    if (event.kind == ReadEvent::Kind::kEof) {
      return fail(IoError("connection closed during RESUME"));
    }
    if (event.kind == ReadEvent::Kind::kError) return fail(event.status);
    if (event.frame.type == FrameType::kHeartbeat) continue;
    if (event.frame.type == FrameType::kError) {
      return fail(DecodeErrorBody(event.frame.body));
    }
    if (event.frame.type != FrameType::kResumed) {
      return fail(InvalidArgumentError("expected RESUMED frame"));
    }
    break;
  }
  // Replay every unanswered request under its original id: the server
  // answers executed ids from its replay cache, deduplicates in-flight
  // ones, and admits the rest — nothing runs twice.
  for (const Outstanding& o : outstanding_) {
    Frame stmt{FrameType::kStmt, o.request_id, o.statement};
    if (Status s = WriteFrame(nfd, stmt, options_.socket_ops); !s.ok()) {
      return fail(std::move(s));
    }
  }
  fd_ = nfd;
  return Status::Ok();
}

Status Client::Reconnect(Status cause) {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
  if (token_ == 0 || options_.max_reconnects <= 0) {
    return cause;  // resumption off (v1 or configured away): terminal
  }
  RetryPolicy policy = options_.reconnect_backoff;
  policy.max_attempts = options_.max_reconnects;
  Status resumed = RetryWithBackoff(
      policy, backoff_rng_, [this] { return TryResume(); },
      [](const Status& status) {
        // NOT_FOUND: the server reaped (or never had) the session —
        // permanent. FAILED_PRECONDITION: resumption is impossible on
        // principle (v1 server). CANCELLED: the governor tripped.
        // Everything else is a transient dial/handshake failure.
        return status.code() != StatusCode::kNotFound &&
               status.code() != StatusCode::kFailedPrecondition &&
               status.code() != StatusCode::kCancelled;
      },
      options_.ctx);
  if (!resumed.ok()) {
    token_ = 0;  // the session is unrecoverable; stop trying
    return resumed;
  }
  ++reconnects_;
  return Status::Ok();
}

Result<Frame> Client::ReadReplyFrame(const Frame* retriable_op) {
  while (true) {
    if (!connected()) {
      if (Status s = Reconnect(IoError("client is not connected")); !s.ok()) {
        return s;
      }
      if (retriable_op != nullptr) {
        Status w = WriteFrame(fd_, *retriable_op, options_.socket_ops);
        if (!w.ok()) {
          if (!ConnectionLost(w)) return w;
          CloseFd(fd_);
          fd_ = -1;
          continue;
        }
      }
    }
    ReadEvent event = ReadFrame(fd_, options_.socket_ops);
    if (event.kind == ReadEvent::Kind::kFrame) {
      if (event.frame.type == FrameType::kHeartbeat) continue;
      if (event.frame.type == FrameType::kError &&
          event.frame.request_id == 0) {
        // Request ids start at 1: an id-0 ERROR mid-conversation is the
        // server reporting a poisoned stream (e.g. our frame arrived
        // corrupted) before hanging up — a connection-level failure,
        // not any statement's reply. Redial and replay.
        Status cause = DecodeErrorBody(event.frame.body);
        CloseFd(fd_);
        fd_ = -1;
        if (Status s = Reconnect(std::move(cause)); !s.ok()) return s;
        if (retriable_op != nullptr) {
          Status w = WriteFrame(fd_, *retriable_op, options_.socket_ops);
          if (!w.ok()) {
            if (!ConnectionLost(w)) return w;
            CloseFd(fd_);
            fd_ = -1;  // redial on the next pass
          }
        }
        continue;
      }
      return std::move(event.frame);
    }
    Status cause = event.kind == ReadEvent::Kind::kEof
                       ? IoError("server closed the connection")
                       : event.status;
    if (!ConnectionLost(cause)) return cause;  // e.g. a clean timeout
    if (Status s = Reconnect(std::move(cause)); !s.ok()) return s;
    if (retriable_op != nullptr) {
      Status w = WriteFrame(fd_, *retriable_op, options_.socket_ops);
      if (!w.ok()) {
        if (!ConnectionLost(w)) return w;
        CloseFd(fd_);
        fd_ = -1;  // redial on the next pass
      }
    }
  }
}

bool Client::ConsumeReply(Frame& frame, std::uint64_t self_id) {
  if (frame.type != FrameType::kResult && frame.type != FrameType::kError) {
    return false;
  }
  if (frame.request_id == self_id) return false;
  for (const Outstanding& o : outstanding_) {
    if (o.request_id != frame.request_id) continue;
    Reply reply;
    reply.request_id = frame.request_id;
    if (frame.type == FrameType::kResult) {
      reply.output = std::move(frame.body);
    } else {
      reply.status = DecodeErrorBody(frame.body);
    }
    stash_.emplace(frame.request_id, std::move(reply));
    return true;
  }
  // A reply for a request no longer outstanding: the server sent it
  // twice (once into the dying socket, once replayed from the cache).
  // Exactly-once delivery to the caller means dropping it here.
  return true;
}

bool Client::EraseOutstanding(std::uint64_t request_id) {
  for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
    if (it->request_id == request_id) {
      outstanding_.erase(it);
      return true;
    }
  }
  return false;
}

Result<std::uint64_t> Client::Send(std::string_view statement) {
  if (!connected() && token_ == 0) {
    return FailedPreconditionError("client is not connected");
  }
  std::uint64_t id = next_request_id_++;
  outstanding_.push_back(Outstanding{id, std::string(statement)});
  if (!connected()) {
    // A previous loss was not yet repaired; the reconnect's replay
    // carries this request along.
    if (Status s = Reconnect(IoError("client is not connected")); !s.ok()) {
      outstanding_.pop_back();
      return s;
    }
    return id;
  }
  Frame frame{FrameType::kStmt, id, outstanding_.back().statement};
  Status s = WriteFrame(fd_, frame, options_.socket_ops);
  if (s.ok()) return id;
  if (ConnectionLost(s)) {
    // The reconnect replays outstanding_ — including this request.
    if (Status r = Reconnect(std::move(s)); !r.ok()) {
      outstanding_.pop_back();
      return r;
    }
    return id;
  }
  // Typed failure at a frame boundary (send timeout before any byte):
  // the request was never transmitted and is not outstanding.
  outstanding_.pop_back();
  return s;
}

Result<Client::Reply> Client::Recv() {
  if (!connected() && token_ == 0) {
    return FailedPreconditionError("client is not connected");
  }
  if (outstanding_.empty()) {
    return FailedPreconditionError("no outstanding requests");
  }
  // Replies surface in ARRIVAL order, not send order: admitted
  // statements answer in admission order but shed ones answer
  // immediately, and a pipelining caller must see those fast
  // rejections while earlier statements still run.
  while (true) {
    if (!stash_.empty()) {
      auto hit = stash_.begin();
      Reply reply = std::move(hit->second);
      stash_.erase(hit);
      EraseOutstanding(reply.request_id);
      return reply;
    }
    Result<Frame> frame = ReadReplyFrame(nullptr);
    if (!frame.ok()) return frame.status();
    if (frame->type != FrameType::kResult &&
        frame->type != FrameType::kError) {
      return InvalidArgumentError("unexpected reply frame type");
    }
    if (!EraseOutstanding(frame->request_id)) {
      // A reply for a request no longer outstanding: the server sent it
      // twice (once into the dying socket, once replayed from the
      // cache). Exactly-once delivery to the caller means dropping it.
      continue;
    }
    Reply reply;
    reply.request_id = frame->request_id;
    if (frame->type == FrameType::kResult) {
      reply.output = std::move(frame->body);
    } else {
      reply.status = DecodeErrorBody(frame->body);
    }
    return reply;
  }
}

Result<std::string> Client::Execute(std::string_view statement) {
  Result<std::uint64_t> id = Send(statement);
  if (!id.ok()) return id.status();
  while (true) {
    Result<Reply> reply = Recv();
    if (!reply.ok()) return reply.status();
    if (reply->request_id != *id) {
      // A late reply to an earlier request the caller abandoned (for
      // example after its Execute surfaced a typed timeout); drop it
      // and keep waiting for ours.
      continue;
    }
    if (!reply->status.ok()) return reply->status;
    return std::move(reply->output);
  }
}

Result<std::string> Client::Stats() {
  if (!connected() && token_ == 0) {
    return FailedPreconditionError("client is not connected");
  }
  std::uint64_t id = next_request_id_++;
  Frame request{FrameType::kStats, id, ""};
  if (connected()) {
    if (Status s = WriteFrame(fd_, request, options_.socket_ops); !s.ok()) {
      if (!ConnectionLost(s)) return s;
      CloseFd(fd_);
      fd_ = -1;  // ReadReplyFrame redials and re-sends the request
    }
  }
  while (true) {
    Result<Frame> frame = ReadReplyFrame(&request);
    if (!frame.ok()) return frame.status();
    if (ConsumeReply(*frame, id)) continue;
    if (frame->request_id != id) {
      return InvalidArgumentError("unexpected STATS reply");
    }
    if (frame->type == FrameType::kResult) return std::move(frame->body);
    if (frame->type == FrameType::kError) return DecodeErrorBody(frame->body);
    return InvalidArgumentError("unexpected STATS reply frame type");
  }
}

Status Client::Ping() {
  if (!connected() && token_ == 0) {
    return FailedPreconditionError("client is not connected");
  }
  std::uint64_t id = next_request_id_++;
  Frame request{FrameType::kPing, id, ""};
  if (connected()) {
    if (Status s = WriteFrame(fd_, request, options_.socket_ops); !s.ok()) {
      if (!ConnectionLost(s)) return s;
      CloseFd(fd_);
      fd_ = -1;
    }
  }
  while (true) {
    Result<Frame> frame = ReadReplyFrame(&request);
    if (!frame.ok()) return frame.status();
    if (ConsumeReply(*frame, id)) continue;
    if (frame->type == FrameType::kError && frame->request_id == id) {
      return DecodeErrorBody(frame->body);
    }
    if (frame->type != FrameType::kPong || frame->request_id != id) {
      return InvalidArgumentError("unexpected PING reply");
    }
    return Status::Ok();
  }
}

void Client::Close() {
  if (connected()) {
    (void)WriteFrame(fd_, Frame{FrameType::kBye, next_request_id_++, ""},
                     options_.socket_ops);
    CloseFd(fd_);
    fd_ = -1;
  }
  token_ = 0;
  outstanding_.clear();
  stash_.clear();
}

}  // namespace qf
