#include "network/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qf {

ssize_t SocketOps::Recv(int fd, char* buf, std::size_t n) {
  return ::recv(fd, buf, n, 0);
}

ssize_t SocketOps::Send(int fd, const char* buf, std::size_t n) {
  // MSG_NOSIGNAL on every send: writing into a half-closed socket must
  // surface as EPIPE, never as a process-killing SIGPIPE.
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

SocketOps* DefaultSocketOps() {
  static SocketOps ops;
  return &ops;
}

namespace {

Result<sockaddr_in> MakeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> TcpListen(const std::string& host, std::uint16_t port,
                      int backlog) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) !=
      0) {
    Status s = IoError(std::string("bind: ") + std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = IoError(std::string("listen: ") + std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<int> TcpConnect(const std::string& host, std::uint16_t port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError(std::string("socket: ") + std::strerror(errno));
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr)) != 0) {
    if (errno == EINTR) continue;
    Status s = IoError(std::string("connect: ") + std::strerror(errno));
    CloseFd(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return IoError(std::string("getsockname: ") + std::strerror(errno));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Status SetSocketTimeouts(int fd, int timeout_ms) {
  if (timeout_ms < 0) {
    return InvalidArgumentError("negative socket timeout");
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return IoError(std::string("setsockopt: ") + std::strerror(errno));
  }
  return Status::Ok();
}

bool WaitReadable(int fd, int wake_fd) {
  pollfd fds[2];
  fds[0].fd = fd;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fd;
  fds[1].events = POLLIN;
  while (true) {
    int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[1].revents != 0) return false;
    if (fds[0].revents != 0) return true;
  }
}

int PollReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (true) {
    int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    return n > 0 ? 1 : 0;
  }
}

void CloseFd(int fd) {
  if (fd < 0) return;
  while (::close(fd) != 0 && errno == EINTR) {
  }
}

}  // namespace qf
