// Fault injection for the wire: the network analog of the storage
// layer's FaultVfs (common/vfs.h). FaultSocketOps wraps a base SocketOps
// and misbehaves on schedule — short reads/writes, a typed errno
// (ECONNRESET/EPIPE/ETIMEDOUT) at op N, a mid-frame disconnect, or a
// flipped byte — so the chaos harness (tests/network_chaos_test.cc) can
// kill a conversation at *every* protocol op deterministically, and
// qfserverd's --fault flag can do the same against live clients.
//
// An "op" is one Recv or Send call through this instance, counted
// across every fd and thread that shares it. With max_chunk set, each
// op moves at most that many bytes, so a frame spans several ops and a
// fault scheduled mid-frame lands mid-frame: both directions of the
// reassembly loops (ReadFull/WriteFrame) get exercised on every run.
#ifndef QF_NETWORK_FAULT_SOCKET_H_
#define QF_NETWORK_FAULT_SOCKET_H_

#include <atomic>
#include <cstdint>

#include "network/socket.h"

namespace qf {

enum class SocketFault : std::uint8_t {
  kNone = 0,
  // shutdown(fd, SHUT_RDWR) then fail with ECONNRESET: the connection
  // dies exactly as if the peer (or the network) reset it.
  kDisconnect,
  // Fail the op with `fault_errno` without touching the socket. The
  // caller sees a typed socket error; the connection may survive.
  kError,
  // Flip the low bit of the first byte moved by this op, then perform
  // it normally. A corrupted frame fails its CRC32C at the receiver,
  // which poisons the stream and forces a disconnect.
  kCorruptByte,
};

struct FaultSocketConfig {
  // 1-based op index the fault fires at; 0 disables scheduled faults.
  std::uint64_t fault_at_op = 0;
  SocketFault fault = SocketFault::kNone;
  // errno for SocketFault::kError (ECONNRESET, EPIPE, ETIMEDOUT, ...).
  int fault_errno = 0;
  // When nonzero the fault re-arms: it fires at fault_at_op, then every
  // `repeat_every` ops after that (qfserverd --fault kill-every=N).
  // Zero = one-shot.
  std::uint64_t repeat_every = 0;
  // When nonzero, every op transfers at most this many bytes — constant
  // short reads and short writes, independent of the scheduled fault.
  std::size_t max_chunk = 0;
};

class FaultSocketOps : public SocketOps {
 public:
  explicit FaultSocketOps(FaultSocketConfig config,
                          SocketOps* base = nullptr)
      : config_(config),
        base_(base != nullptr ? base : DefaultSocketOps()) {}

  ssize_t Recv(int fd, char* buf, std::size_t n) override;
  ssize_t Send(int fd, const char* buf, std::size_t n) override;

  // Ops seen so far. A fault-free instrumented run measures the sweep
  // length: faults are then scheduled at 1..ops().
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  // How many times the scheduled fault has fired.
  std::uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  // Returns true when this op should fail (one-shot or repeating).
  bool Armed(std::uint64_t op);

  FaultSocketConfig config_;
  SocketOps* base_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> fired_{0};
};

}  // namespace qf

#endif  // QF_NETWORK_FAULT_SOCKET_H_
