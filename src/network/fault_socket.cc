#include "network/fault_socket.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>

namespace qf {

bool FaultSocketOps::Armed(std::uint64_t op) {
  if (config_.fault == SocketFault::kNone || config_.fault_at_op == 0) {
    return false;
  }
  if (op == config_.fault_at_op) return true;
  if (config_.repeat_every != 0 && op > config_.fault_at_op &&
      (op - config_.fault_at_op) % config_.repeat_every == 0) {
    return true;
  }
  return false;
}

ssize_t FaultSocketOps::Recv(int fd, char* buf, std::size_t n) {
  std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Armed(op)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    switch (config_.fault) {
      case SocketFault::kDisconnect:
        ::shutdown(fd, SHUT_RDWR);
        errno = ECONNRESET;
        return -1;
      case SocketFault::kError:
        errno = config_.fault_errno != 0 ? config_.fault_errno : ECONNRESET;
        return -1;
      case SocketFault::kCorruptByte: {
        ssize_t got = base_->Recv(fd, buf, std::min<std::size_t>(n, 1));
        if (got > 0) buf[0] = static_cast<char>(buf[0] ^ 0x01);
        return got;
      }
      case SocketFault::kNone:
        break;
    }
  }
  if (config_.max_chunk != 0) n = std::min(n, config_.max_chunk);
  return base_->Recv(fd, buf, n);
}

ssize_t FaultSocketOps::Send(int fd, const char* buf, std::size_t n) {
  std::uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Armed(op)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    switch (config_.fault) {
      case SocketFault::kDisconnect:
        ::shutdown(fd, SHUT_RDWR);
        errno = ECONNRESET;
        return -1;
      case SocketFault::kError:
        errno = config_.fault_errno != 0 ? config_.fault_errno : EPIPE;
        return -1;
      case SocketFault::kCorruptByte: {
        char bent = static_cast<char>(buf[0] ^ 0x01);
        return base_->Send(fd, &bent, 1);
      }
      case SocketFault::kNone:
        break;
    }
  }
  if (config_.max_chunk != 0) n = std::min(n, config_.max_chunk);
  return base_->Send(fd, buf, n);
}

}  // namespace qf
