// Thin POSIX TCP helpers shared by the server and the client library:
// listen/connect with typed Status errors, plus a self-pipe so blocking
// accept loops can be woken for shutdown without races.
#ifndef QF_NETWORK_SOCKET_H_
#define QF_NETWORK_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace qf {

// Binds and listens on `host:port` (port 0 = kernel-assigned; read the
// real one back with LocalPort). SO_REUSEADDR is set so restarting a
// drained server does not trip TIME_WAIT.
Result<int> TcpListen(const std::string& host, std::uint16_t port,
                      int backlog);

// Blocking connect to `host:port`.
Result<int> TcpConnect(const std::string& host, std::uint16_t port);

// The port a bound socket actually listens on.
Result<std::uint16_t> LocalPort(int fd);

// Waits until `fd` is readable or `wake_fd` becomes readable (shutdown
// signal). Returns true when `fd` is readable, false for a wake-up or a
// poll error — callers treat both as "stop".
bool WaitReadable(int fd, int wake_fd);

// EINTR-safe close; ignores errors (the fd is gone either way).
void CloseFd(int fd);

}  // namespace qf

#endif  // QF_NETWORK_SOCKET_H_
