// Thin POSIX TCP helpers shared by the server and the client library:
// listen/connect with typed Status errors, a self-pipe so blocking
// accept loops can be woken for shutdown without races, and the
// SocketOps seam every byte of wire I/O flows through.
//
// SocketOps is the network analog of the storage layer's Vfs seam
// (common/vfs.h): protocol.h's ReadFrame/WriteFrame call Recv/Send on a
// SocketOps instead of the raw syscalls, so tests (and qfserverd's
// --fault flag) can interpose FaultSocketOps (network/fault_socket.h)
// to inject short reads, ECONNRESET at op N, mid-frame disconnects, and
// byte corruption — deterministically, in process, without iptables.
#ifndef QF_NETWORK_SOCKET_H_
#define QF_NETWORK_SOCKET_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace qf {

// The socket I/O seam. The default implementation is the plain
// syscalls; subclasses interpose fault injection. Implementations must
// be thread-safe: the server calls one shared instance from every
// reader and executor thread.
//
// Return conventions match recv(2)/send(2): bytes transferred, 0 for
// EOF (Recv), -1 with errno set on failure. Send must never raise
// SIGPIPE (the base class uses MSG_NOSIGNAL); a half-closed peer
// surfaces as EPIPE, which callers treat as a disconnect.
class SocketOps {
 public:
  virtual ~SocketOps() = default;
  virtual ssize_t Recv(int fd, char* buf, std::size_t n);
  virtual ssize_t Send(int fd, const char* buf, std::size_t n);
};

// The process-wide plain-syscall instance (never null).
SocketOps* DefaultSocketOps();

// Binds and listens on `host:port` (port 0 = kernel-assigned; read the
// real one back with LocalPort). SO_REUSEADDR is set so restarting a
// drained server does not trip TIME_WAIT.
Result<int> TcpListen(const std::string& host, std::uint16_t port,
                      int backlog);

// Blocking connect to `host:port`.
Result<int> TcpConnect(const std::string& host, std::uint16_t port);

// The port a bound socket actually listens on.
Result<std::uint16_t> LocalPort(int fd);

// Sets SO_RCVTIMEO and SO_SNDTIMEO to `timeout_ms` (0 disables). With a
// timeout set, a stalled peer makes recv/send fail with EAGAIN, which
// protocol.h maps to a typed DEADLINE_EXCEEDED instead of a hang.
Status SetSocketTimeouts(int fd, int timeout_ms);

// Waits until `fd` is readable or `wake_fd` becomes readable (shutdown
// signal). Returns true when `fd` is readable, false for a wake-up or a
// poll error — callers treat both as "stop".
bool WaitReadable(int fd, int wake_fd);

// Waits up to `timeout_ms` for `fd` to become readable. Returns 1 when
// readable, 0 on timeout, -1 on a poll error. The server's reader loops
// use this to notice idle connections (heartbeat probes) without giving
// up the blocking read path.
int PollReadable(int fd, int timeout_ms);

// EINTR-safe close; ignores errors (the fd is gone either way).
void CloseFd(int fd);

}  // namespace qf

#endif  // QF_NETWORK_SOCKET_H_
