#include "network/protocol.h"

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"

namespace qf {

bool IsKnownFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kHeartbeat);
}

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

bool ReadU32(std::string_view bytes, std::size_t offset, std::uint32_t* v) {
  if (offset + 4 > bytes.size()) return false;
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8) |
          static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  *v = out;
  return true;
}

bool ReadU64(std::string_view bytes, std::size_t offset, std::uint64_t* v) {
  if (offset + 8 > bytes.size()) return false;
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) {
    out = (out << 8) |
          static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  *v = out;
  return true;
}

std::string EncodeFrame(const Frame& frame) {
  std::string payload;
  payload.reserve(kMinPayloadBytes + frame.body.size());
  payload += static_cast<char>(frame.type);
  AppendU64(payload, frame.request_id);
  payload += frame.body;

  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(out, static_cast<std::uint32_t>(payload.size()));
  AppendU32(out, Crc32cMask(Crc32c(payload)));
  out += payload;
  return out;
}

DecodeOutcome DecodeFrame(std::string_view bytes) {
  DecodeOutcome out;
  if (bytes.size() < kFrameHeaderBytes) {
    out.need_more = true;
    return out;
  }
  std::uint32_t length = 0;
  std::uint32_t stored_crc = 0;
  ReadU32(bytes, 0, &length);
  ReadU32(bytes, 4, &stored_crc);
  if (length > kMaxPayloadBytes) {
    out.consumed = bytes.size();
    out.status = InvalidArgumentError("oversized frame: " +
                                      std::to_string(length) + " bytes");
    return out;
  }
  if (length < kMinPayloadBytes) {
    out.consumed = bytes.size();
    out.status = InvalidArgumentError("short frame payload: " +
                                      std::to_string(length) + " bytes");
    return out;
  }
  if (bytes.size() < kFrameHeaderBytes + length) {
    out.need_more = true;
    return out;
  }
  std::string_view payload = bytes.substr(kFrameHeaderBytes, length);
  if (Crc32cMask(Crc32c(payload)) != stored_crc) {
    out.consumed = bytes.size();
    out.status = InvalidArgumentError("frame checksum mismatch");
    return out;
  }
  std::uint8_t type = static_cast<unsigned char>(payload[0]);
  if (!IsKnownFrameType(type)) {
    out.consumed = bytes.size();
    out.status =
        InvalidArgumentError("unknown frame type " + std::to_string(type));
    return out;
  }
  out.frame.type = static_cast<FrameType>(type);
  ReadU64(payload, 1, &out.frame.request_id);
  out.frame.body = std::string(payload.substr(kMinPayloadBytes));
  out.consumed = kFrameHeaderBytes + length;
  return out;
}

std::string EncodeErrorBody(const Status& status) {
  std::string body;
  body += static_cast<char>(static_cast<std::uint8_t>(status.code()));
  body += status.message();
  return body;
}

Status DecodeErrorBody(std::string_view body) {
  if (body.empty()) return InternalError("empty error frame");
  std::uint8_t code = static_cast<unsigned char>(body[0]);
  std::string message(body.substr(1));
  if (code == 0 || code > static_cast<std::uint8_t>(StatusCode::kOverloaded)) {
    return InternalError("unknown wire status code " + std::to_string(code) +
                         ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

std::string EncodeHelloBody(std::uint32_t version) {
  std::string body;
  AppendU32(body, kProtocolMagic);
  AppendU32(body, version);
  return body;
}

Result<std::uint32_t> CheckHelloBody(std::string_view body) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!ReadU32(body, 0, &magic) || !ReadU32(body, 4, &version)) {
    return InvalidArgumentError("short HELLO body");
  }
  if (magic != kProtocolMagic) {
    return InvalidArgumentError("bad protocol magic");
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return FailedPreconditionError(
        "unsupported protocol version " + std::to_string(version) +
        " (server speaks " + std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion) + ")");
  }
  return version;
}

std::string EncodeWelcomeBody(const Welcome& welcome) {
  std::string body;
  AppendU32(body, welcome.version);
  AppendU64(body, welcome.session_id);
  if (welcome.version >= 2) AppendU64(body, welcome.resume_token);
  return body;
}

Result<Welcome> DecodeWelcomeBody(std::string_view body) {
  Welcome welcome;
  if (!ReadU32(body, 0, &welcome.version) ||
      !ReadU64(body, 4, &welcome.session_id)) {
    return InvalidArgumentError("short WELCOME body");
  }
  if (welcome.version < kMinProtocolVersion ||
      welcome.version > kProtocolVersion) {
    return FailedPreconditionError("server speaks protocol version " +
                                   std::to_string(welcome.version));
  }
  if (welcome.version >= 2 && !ReadU64(body, 12, &welcome.resume_token)) {
    return InvalidArgumentError("short v2 WELCOME body");
  }
  return welcome;
}

std::string EncodeResumeBody(const ResumeRequest& resume) {
  std::string body;
  AppendU64(body, resume.session_id);
  AppendU64(body, resume.resume_token);
  return body;
}

Result<ResumeRequest> DecodeResumeBody(std::string_view body) {
  ResumeRequest resume;
  if (!ReadU64(body, 0, &resume.session_id) ||
      !ReadU64(body, 8, &resume.resume_token)) {
    return InvalidArgumentError("short RESUME body");
  }
  return resume;
}

namespace {

// Reads exactly `n` bytes. Returns n on success, 0 for EOF before the
// first byte, -1 for EOF mid-buffer, -2 for a socket error (errno set),
// -3 for a receive timeout before the first byte (SO_RCVTIMEO expired at
// a clean boundary), -4 for a timeout mid-buffer (stream position lost).
ssize_t ReadFull(int fd, SocketOps* ops, char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    ssize_t got = ops->Recv(fd, buf + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return done == 0 ? 0 : -1;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return done == 0 ? -3 : -4;
    return -2;
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

ReadEvent ReadFrame(int fd, SocketOps* ops) {
  if (ops == nullptr) ops = DefaultSocketOps();
  ReadEvent event;
  char header[kFrameHeaderBytes];
  ssize_t got = ReadFull(fd, ops, header, sizeof(header));
  if (got == 0) {
    event.kind = ReadEvent::Kind::kEof;
    return event;
  }
  if (got == -1) {
    event.status = InvalidArgumentError("truncated frame header");
    return event;
  }
  if (got == -3) {
    // No frame had started: the connection is still well-framed, the
    // peer is just slow. A clean, typed timeout.
    event.status = DeadlineExceededError("socket receive timed out");
    return event;
  }
  if (got == -4) {
    // The timeout struck mid-frame; the stream position is lost and the
    // connection cannot be reused. Surface a connection-level error so
    // resuming clients redial instead of reading garbage.
    event.status = IoError("socket receive timed out mid-frame");
    return event;
  }
  if (got < 0) {
    event.status = IoError(std::string("recv: ") + std::strerror(errno));
    return event;
  }
  std::uint32_t length = 0;
  std::uint32_t stored_crc = 0;
  ReadU32(std::string_view(header, sizeof(header)), 0, &length);
  ReadU32(std::string_view(header, sizeof(header)), 4, &stored_crc);
  if (length > kMaxPayloadBytes) {
    event.status = InvalidArgumentError("oversized frame: " +
                                        std::to_string(length) + " bytes");
    return event;
  }
  if (length < kMinPayloadBytes) {
    event.status = InvalidArgumentError("short frame payload: " +
                                        std::to_string(length) + " bytes");
    return event;
  }
  std::string payload(length, '\0');
  got = ReadFull(fd, ops, payload.data(), payload.size());
  if (got == 0 || got == -1) {
    event.status = InvalidArgumentError("truncated frame payload");
    return event;
  }
  if (got == -3 || got == -4) {
    // Any timeout here is mid-frame (the header was already consumed).
    event.status = IoError("socket receive timed out mid-frame");
    return event;
  }
  if (got < 0) {
    event.status = IoError(std::string("recv: ") + std::strerror(errno));
    return event;
  }
  if (Crc32cMask(Crc32c(payload)) != stored_crc) {
    event.status = InvalidArgumentError("frame checksum mismatch");
    return event;
  }
  std::uint8_t type = static_cast<unsigned char>(payload[0]);
  if (!IsKnownFrameType(type)) {
    event.status =
        InvalidArgumentError("unknown frame type " + std::to_string(type));
    return event;
  }
  event.kind = ReadEvent::Kind::kFrame;
  event.frame.type = static_cast<FrameType>(type);
  ReadU64(payload, 1, &event.frame.request_id);
  event.frame.body = payload.substr(kMinPayloadBytes);
  return event;
}

Status WriteFrame(int fd, const Frame& frame, SocketOps* ops) {
  if (ops == nullptr) ops = DefaultSocketOps();
  std::string bytes = EncodeFrame(frame);
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t sent = ops->Send(fd, bytes.data() + done, bytes.size() - done);
    if (sent >= 0) {
      done += static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Same boundary rule as ReadFrame: a frame partially written
      // leaves the stream unframed, which is a connection loss, not a
      // clean timeout.
      if (done > 0) return IoError("socket send timed out mid-frame");
      return DeadlineExceededError("socket send timed out");
    }
    return IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace qf
