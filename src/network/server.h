// qfserverd's engine: a concurrent multi-client TCP front end over the
// query-flocks shell — the paper's mining-as-a-service reading (§1's
// "general-purpose mining system", serving many interactive sessions in
// the style of Goethals & Van den Bussche's constrained-mining sessions).
//
// Architecture (three thread groups plus a reaper, one admission queue):
//
//   accept thread      owns the listening socket; registers a Session per
//                      connection (shedding past max_sessions) and spawns
//                      its reader.
//   reader threads     one per connection: handshake, then decode frames.
//                      PING/STATS/BYE/RESUME are answered inline; STMT
//                      goes through admission. Malformed frames draw a
//                      typed ERROR and a disconnect (protocol.h). Idle
//                      connections are probed with HEARTBEAT frames.
//   executor threads   a fixed pool that drains the admission queue and
//                      runs statements via the shared shell entry point
//                      (shell/statement.h). Inside a statement, the
//                      morsel thread pool (common/thread_pool.h) provides
//                      intra-statement parallelism as usual, so the
//                      executor count caps concurrent *statements* and
//                      the morsel pool multiplexes their scans.
//   reaper thread      destroys detached (resumable) sessions whose
//                      resume window expired.
//
// Sessions: each client gets its own Shell — its own catalog view,
// rules, flocks, and knobs — seeded copy-on-write from one shared
// read-mostly base database (Database shares relation payloads, so a
// thousand sessions see the same tuples without a thousand copies). A
// session that OPENs a durable catalog gets the full PR 5 WAL-before-ack
// path: mutations are fsynced before the RESULT frame is sent, so an
// acknowledged statement survives a crash. Statements of one session run
// strictly in order, one at a time (the Shell is single-threaded);
// different sessions run concurrently up to the executor count.
//
// Resumption and exactly-once (protocol v2, DESIGN.md §16): when a v2
// connection drops without a BYE, its session *detaches* instead of
// dying — in-flight statements keep executing (their WAL commits are
// real; cancelling them would make an acknowledged-to-the-log mutation
// look unexecuted), and every reply is retained in a bounded per-session
// replay cache keyed by request id. A client that reconnects and RESUMEs
// with the session's token is re-attached to the same Session object and
// replays its unanswered requests under their original ids: cached ids
// are answered from the cache, in-flight ids are deduplicated, unseen
// ids admitted normally. A mutation therefore executes exactly once per
// request id, no matter where the connection died. Detached sessions are
// reaped (cancelled and destroyed) after resume_timeout_ms. v1 clients
// keep the PR 6 behaviour: disconnect cancels and destroys the session.
//
// Admission and overload: a STMT is *admitted* (queued) only when the
// global queue has room and the session is under its quota; otherwise it
// is shed immediately with a typed OVERLOADED error frame — the server
// never blocks a reader on a full queue, so overload degrades into fast
// rejections, not hangs. Shutdown() drains: everything admitted executes
// and is answered (WAL-before-ack included) before threads stop; new
// statements shed with OVERLOADED while draining.
//
// Fault injection: all session I/O flows through ServerOptions::
// socket_ops (the SocketOps seam); tests and qfserverd --fault point it
// at a FaultSocketOps to chaos-test the served path in process.
#ifndef QF_NETWORK_SERVER_H_
#define QF_NETWORK_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/vfs.h"
#include "network/socket.h"
#include "relational/database.h"

namespace qf {

struct Frame;

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 = kernel-assigned; Server::port() reports the real one.
  std::uint16_t port = 0;
  // Statement worker threads (concurrent statements); clamped to >= 1.
  unsigned executors = 2;
  // Global cap on admitted-but-not-yet-executing statements; beyond it
  // STMT frames shed with OVERLOADED.
  std::size_t max_queue = 64;
  // Per-session cap on admitted-but-unfinished statements (pipelining
  // depth); beyond it the session's STMT frames shed with OVERLOADED.
  std::size_t session_quota = 8;
  // Connection cap; excess connections draw OVERLOADED and a disconnect.
  std::size_t max_sessions = 256;
  // How long a disconnected v2 session stays resumable before the
  // reaper cancels and destroys it. <= 0 disables resumption entirely:
  // every disconnect tears the session down immediately (the PR 6
  // behaviour).
  int resume_timeout_ms = 30'000;
  // Per-session replay cache bounds (entries / total output bytes).
  // Entries must comfortably exceed session_quota: a client can have at
  // most `quota` unanswered requests, and replies are delivered in
  // order, so the cache always covers everything a client might replay.
  std::size_t resume_cache_entries = 64;
  std::size_t resume_cache_bytes = 4u << 20;
  // Reader idle probing: after this long without an inbound frame the
  // server writes a HEARTBEAT; a failed write means the peer is gone
  // (reset seen) and the connection is treated as dropped. 0 disables.
  int idle_timeout_ms = 0;
  // Socket I/O seam for session connections (null = plain syscalls).
  // Tests and qfserverd --fault install a FaultSocketOps here; must be
  // thread-safe.
  SocketOps* socket_ops = nullptr;
  // Shared read-mostly base database every session starts from
  // (copy-on-write: payloads are shared, session writes stay private).
  Database base_db;
  // File system handed to each session's shell (OPEN/CHECKPOINT/SAVE);
  // null = the process-wide PosixVfs. Tests point this at a MemVfs.
  Vfs* session_vfs = nullptr;
  // Per-statement begin/end spans (must be thread-safe, like every
  // TraceSink). May be null.
  TraceSink* trace = nullptr;
  // Test seam: runs at the start of every statement execution, before
  // the shell is touched. Overload tests park executors on a latch here
  // to make queue pressure deterministic. Must be thread-safe.
  std::function<void()> statement_hook_for_test;
};

// Monotonic counters, readable at any time (Server::stats()).
struct ServerStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_shed = 0;        // over max_sessions
  std::uint64_t sessions_detached = 0;    // v2 disconnects, resumable
  std::uint64_t sessions_resumed = 0;     // successful RESUME handoffs
  std::uint64_t sessions_reaped = 0;      // resume window expired
  std::uint64_t statements_received = 0;  // STMT frames seen
  std::uint64_t statements_admitted = 0;
  std::uint64_t statements_executed = 0;  // includes failed ones
  std::uint64_t statements_failed = 0;    // executed, non-OK status
  std::uint64_t replayed_replies = 0;     // answered from the replay
                                          // cache or deduplicated
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_quota = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t protocol_errors = 0;
};

class Server {
 public:
  // Binds, listens, and starts the accept/executor/reaper threads. On
  // error (port in use, bad host) nothing is left running.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  // Shuts down (draining) if the caller did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound port (the kernel's pick when options.port was 0).
  std::uint16_t port() const { return port_; }

  // Graceful drain: stop accepting connections, shed new statements with
  // OVERLOADED, execute and answer everything already admitted (including
  // WAL-before-ack), then stop all threads. Idempotent; not safe to call
  // concurrently with itself.
  void Shutdown();

  ServerStats stats() const;

  // The serving metrics tree rendered like EXPLAIN ANALYZE output: one
  // root, an admission node, a resumption node once any session detached
  // or resumed, one node per live session. Served to clients via the
  // STATS frame.
  std::string MetricsText() const;

 private:
  struct Session;

  explicit Server(ServerOptions options);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  void ExecutorLoop();
  void ReaperLoop();
  void AdmitStatement(const std::shared_ptr<Session>& session,
                      std::uint64_t request_id, std::string statement);
  // Handles a RESUME frame read on `fresh`'s connection (`fd`). On
  // success the fresh session is discarded, the target session is
  // re-attached to `fd`, and the target is returned for the reader to
  // continue with; on failure the typed status is returned and the
  // conversation stays on `fresh`.
  Result<std::shared_ptr<Session>> ResumeSession(
      const std::shared_ptr<Session>& fresh, int fd, const Frame& frame);
  // Detaches (v2, resumable) or tears down (v1 / BYE / resumption off)
  // the session when its reader exits; `clean` marks a BYE.
  void ReaderExit(const std::shared_ptr<Session>& session, int fd,
                  bool clean);
  std::string MetricsTextLocked() const;

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::vector<std::thread> executor_threads_;
  std::thread reaper_thread_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // executors: ready work or stop
  std::condition_variable drain_cv_;   // Shutdown: queue + in-flight empty
  std::condition_variable reaper_cv_;  // reaper: periodic wake or stop
  std::deque<std::shared_ptr<Session>> ready_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> reader_threads_;
  std::mt19937_64 token_rng_;
  std::uint64_t next_session_id_ = 1;
  std::size_t queued_ = 0;     // admitted, waiting for an executor
  std::size_t executing_ = 0;  // statements currently running
  bool draining_ = false;
  bool stop_executors_ = false;
  bool stop_reaper_ = false;
  bool shut_down_ = false;
  ServerStats stats_;
};

}  // namespace qf

#endif  // QF_NETWORK_SERVER_H_
