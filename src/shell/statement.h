// The library entry point for executing shell statements — the one
// dispatch path shared by the qfshell REPL, script execution, and the
// network server (network/server.h). Splitting scripts into statements
// and running one statement are separated here so every front end feeds
// the same parser the same bytes: a statement behaves identically whether
// it arrived from stdin, a .qf file, or a protocol frame.
#ifndef QF_SHELL_STATEMENT_H_
#define QF_SHELL_STATEMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "shell/shell.h"

namespace qf {

// Splits `script` into executable statements: '#' comments are stripped
// (quote-aware), statements end at ';' outside quotes, and blank
// statements are dropped. The trailing statement needs no ';'. Statements
// keep their internal whitespace/newlines; surrounding whitespace is
// trimmed.
std::vector<std::string> SplitStatements(std::string_view script);

// The outcome of one statement: the typed status plus the printable
// output (empty on error). Non-Result form so wire protocols and REPLs
// can marshal both sides without branching on Result<>.
struct StatementOutcome {
  Status status;
  std::string output;

  bool ok() const { return status.ok(); }
};

// Executes one statement against `shell` (exactly Shell::Execute, in
// outcome form). The shell object stays usable after errors.
StatementOutcome ExecuteStatement(Shell& shell, std::string_view statement);

}  // namespace qf

#endif  // QF_SHELL_STATEMENT_H_
