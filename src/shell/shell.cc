#include "shell/shell.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "shell/statement.h"
#include "flocks/eval.h"
#include "flocks/program_eval.h"
#include "flocks/sql_emit.h"
#include "mining/maximal.h"
#include "optimizer/dynamic.h"
#include "optimizer/executor_support.h"
#include "optimizer/plan_search.h"
#include "relational/tsv.h"
#include "workload/basket_gen.h"
#include "workload/graph_gen.h"
#include "workload/medical_gen.h"
#include "workload/web_gen.h"

namespace qf {
namespace {

// First whitespace-delimited word of `text`, uppercased, plus the rest.
std::pair<std::string, std::string_view> SplitCommand(std::string_view text) {
  text = StripWhitespace(text);
  std::size_t end = 0;
  while (end < text.size() && !std::isspace(static_cast<unsigned char>(
                                  text[end]))) {
    ++end;
  }
  std::string word(text.substr(0, end));
  for (char& c : word) c = static_cast<char>(std::toupper(
                               static_cast<unsigned char>(c)));
  return {std::move(word), StripWhitespace(text.substr(end))};
}

// Case-sensitive search for the keyword as a standalone word.
std::size_t FindKeyword(std::string_view text, std::string_view keyword) {
  std::size_t pos = 0;
  while ((pos = text.find(keyword, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || std::isspace(static_cast<unsigned char>(
                                   text[pos - 1]));
    std::size_t after = pos + keyword.size();
    bool right_ok = after >= text.size() ||
                    std::isspace(static_cast<unsigned char>(text[after]));
    if (left_ok && right_ok) return pos;
    pos += keyword.size();
  }
  return std::string_view::npos;
}

Result<FilterCondition> ParseFilterSpec(std::string_view text,
                                        const UnionQuery& query) {
  text = StripWhitespace(text);
  FilterCondition filter;
  std::string agg_name;
  std::size_t i = 0;
  while (i < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[i]))) {
    agg_name += static_cast<char>(
        std::toupper(static_cast<unsigned char>(text[i])));
    ++i;
  }
  if (agg_name == "COUNT") {
    filter.agg = FilterAgg::kCount;
  } else if (agg_name == "SUM") {
    filter.agg = FilterAgg::kSum;
  } else if (agg_name == "MIN") {
    filter.agg = FilterAgg::kMin;
  } else if (agg_name == "MAX") {
    filter.agg = FilterAgg::kMax;
  } else {
    return InvalidArgumentError("unknown filter aggregate: " + agg_name);
  }

  std::string_view rest = StripWhitespace(text.substr(i));
  if (!rest.empty() && rest.front() == '(') {
    std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      return InvalidArgumentError("unterminated '(' in filter");
    }
    std::string_view column = StripWhitespace(rest.substr(1, close - 1));
    const std::vector<std::string>& head_vars =
        query.disjuncts.front().head_vars;
    auto it = std::find(head_vars.begin(), head_vars.end(), column);
    if (column != "*" && it == head_vars.end()) {
      return InvalidArgumentError("filter column " + std::string(column) +
                                  " is not a head variable");
    }
    if (it != head_vars.end()) {
      filter.agg_head_index =
          static_cast<std::size_t>(it - head_vars.begin());
    }
    rest = StripWhitespace(rest.substr(close + 1));
  } else if (filter.agg != FilterAgg::kCount) {
    return InvalidArgumentError(
        "SUM/MIN/MAX filters need a head column, e.g. SUM(W) >= 10");
  }

  // Operator.
  static constexpr std::pair<std::string_view, CompareOp> kOps[] = {
      {">=", CompareOp::kGe}, {"<=", CompareOp::kLe}, {"!=", CompareOp::kNe},
      {">", CompareOp::kGt},  {"<", CompareOp::kLt},  {"=", CompareOp::kEq},
  };
  bool found = false;
  for (const auto& [spelling, op] : kOps) {
    if (StartsWith(rest, spelling)) {
      filter.cmp = op;
      rest = StripWhitespace(rest.substr(spelling.size()));
      found = true;
      break;
    }
  }
  if (!found) {
    return InvalidArgumentError("expected a comparison operator in filter");
  }
  Result<double> threshold = ParseDouble(rest);
  if (!threshold.ok()) {
    return InvalidArgumentError("bad filter threshold: " + std::string(rest));
  }
  filter.threshold = *threshold;
  return filter;
}

std::string PreviewRelation(Relation rel, std::size_t limit) {
  rel.SortRows();
  return rel.ToString(limit);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr std::string_view kHelp =
    "statements:\n"
    "  LOAD <rel> FROM <path.tsv>;   SAVE <rel> TO <path.tsv>;\n"
    "  LOAD <rel> APPEND FROM <path.tsv>;  # delta batch onto existing rel\n"
    "  LOADDB <dir>;                 SAVEDB <dir>;\n"
    "  GEN BASKETS <rel> [n_baskets=N n_items=N avg_size=X theta=X\n"
    "      locality=X topics=N seed=N];\n"
    "  GEN MEDICAL|WEB|GRAPH <name> [key=value ...];\n"
    "  DEFINE <head>(<vars>) :- <body>;       # intermediate predicate\n"
    "  FLOCK <name> QUERY <rules> FILTER <AGG>[(<HeadVar>)] <op> <num>;\n"
    "  EXPLAIN <name>;               # chosen plan + cost estimates\n"
    "  EXPLAIN ANALYZE <name> [DIRECT|PLAN|DYNAMIC|REDUCED] [LIMIT <n>]\n"
    "      [THREADS <n>];            # execute + per-operator metrics tree\n"
    "  RUN <name> [DIRECT|PLAN|DYNAMIC|REDUCED] [LIMIT <n>] [THREADS <n>];\n"
    "  SQL <name>;\n"
    "  THREADS <n>;                  # default workers for RUN (1 = serial)\n"
    "  SET TIMEOUT <ms>;             # wall-clock deadline per statement\n"
    "  SET MEMORY <mb>;              # memory budget per statement (0=off)\n"
    "  SET BUFFER <mb>;              # page-cache capacity for paged catalog\n"
    "  SET INCREMENTAL ON|OFF;       # cache flock state across RUNs\n"
    "  SET OPTIMIZER LEARNED|STATIC; # bandit plan selection for RUN\n"
    "  SET DYNAMIC AGGRESSIVENESS|IMPROVEMENT|MINREMOVED <v>;  # §4.4 knobs\n"
    "  TRACE ON; | TRACE OFF; | TRACE TO <path>;  # span events, JSON lines\n"
    "  MAXIMAL <rel> SUPPORT <n> [MAXSIZE <k>];\n"
    "  SHOW RELATIONS; | SHOW FLOCKS; | SHOW TRACE; | SHOW <rel>;\n"
    "  SHOW FLOCK STATE [<name>];    # inspect cached incremental state\n"
    "  SHOW OPTIMIZER STATE;         # learned-mode knobs + outcome history\n"
    "  OPEN <dir>;                   # open/recover durable catalog\n"
    "  CHECKPOINT;                   # snapshot catalog + reset its WAL\n"
    "  HELP;\n";

// Options shared by RUN and EXPLAIN ANALYZE:
// [DIRECT|PLAN|DYNAMIC|REDUCED] [LIMIT <n>] [THREADS <n>] in any order.
struct RunOptions {
  std::string mode = "PLAN";
  // True when the statement named a mode. An explicit mode always wins
  // over SET OPTIMIZER LEARNED — "RUN f DYNAMIC" means DYNAMIC.
  bool mode_explicit = false;
  std::size_t limit = 10;
  unsigned threads = 1;
};

Result<RunOptions> ParseRunOptions(std::string_view rest,
                                   unsigned default_threads) {
  RunOptions out;
  out.threads = default_threads;
  while (!StripWhitespace(rest).empty()) {
    auto [word, next] = SplitCommand(rest);
    if (word == "DIRECT" || word == "PLAN" || word == "DYNAMIC" ||
        word == "REDUCED") {
      out.mode = word;
      out.mode_explicit = true;
      rest = next;
    } else if (word == "LIMIT") {
      auto [num, after] = SplitCommand(next);
      Result<std::int64_t> n = ParseInt64(num);
      if (!n.ok() || *n < 0) {
        return InvalidArgumentError("bad LIMIT: " + num);
      }
      out.limit = static_cast<std::size_t>(*n);
      rest = after;
    } else if (word == "THREADS") {
      auto [num, after] = SplitCommand(next);
      Result<std::int64_t> n = ParseInt64(num);
      if (!n.ok() || *n < 1) {
        return InvalidArgumentError("bad THREADS: " + num);
      }
      out.threads = static_cast<unsigned>(*n);
      rest = after;
    } else {
      return InvalidArgumentError("unknown RUN option: " + word);
    }
  }
  return out;
}

}  // namespace

Result<std::string> Shell::Execute(std::string_view statement) {
  auto [command, rest] = SplitCommand(statement);
  if (command.empty()) return std::string();
  if (command == "LOAD") return Load(rest);
  if (command == "SAVE") return Save(rest);
  if (command == "LOADDB") {
    std::string dir(StripWhitespace(rest));
    Result<Database> loaded = LoadDatabase(dir, &vfs());
    if (!loaded.ok()) return loaded.status();
    std::string out;
    std::vector<Relation> rels;
    for (const std::string& name : loaded->Names()) {
      Relation rel = loaded->Get(name);
      out += "loaded " + name + ": " + std::to_string(rel.size()) +
             " rows\n";
      rels.push_back(std::move(rel));
    }
    QueryContext ctx;
    ConfigureContext(ctx);
    if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) {
      return s;
    }
    views_dirty_ = true;
    return out;
  }
  if (command == "SAVEDB") {
    std::string dir(StripWhitespace(rest));
    if (Status s = StoreDatabase(db(), dir, &vfs()); !s.ok()) return s;
    return "saved " + std::to_string(db().size()) + " relations to " + dir +
           "\n";
  }
  if (command == "OPEN") return Open(rest);
  if (command == "CHECKPOINT") {
    if (!StripWhitespace(rest).empty()) {
      return InvalidArgumentError("usage: CHECKPOINT");
    }
    return Checkpoint();
  }
  if (command == "GEN") return Gen(rest);
  if (command == "DEFINE") return Define(rest);
  if (command == "FLOCK") return DeclareFlock(rest);
  if (command == "EXPLAIN") return Explain(rest);
  if (command == "RUN") return Run(rest);
  if (command == "SQL") return Sql(rest);
  if (command == "SHOW") return Show(rest);
  if (command == "MAXIMAL") return Maximal(rest);
  if (command == "TRACE") return Trace(rest);
  if (command == "THREADS") {
    auto [num, after] = SplitCommand(rest);
    Result<std::int64_t> n = ParseInt64(num);
    if (!n.ok() || *n < 1 || !StripWhitespace(after).empty()) {
      return InvalidArgumentError("usage: THREADS <n> (n >= 1)");
    }
    if (Status s = PersistKnob("THREADS", *n); !s.ok()) return s;
    default_threads_ = static_cast<unsigned>(*n);
    return "threads set to " + std::to_string(default_threads_) + "\n";
  }
  if (command == "SET") {
    auto [what, next] = SplitCommand(rest);
    auto [num, after] = SplitCommand(next);
    if (what == "INCREMENTAL") {
      if ((num != "ON" && num != "OFF") || !StripWhitespace(after).empty()) {
        return InvalidArgumentError("usage: SET INCREMENTAL ON|OFF");
      }
      bool on = num == "ON";
      if (Status s = PersistKnob("INCREMENTAL", on ? 1 : 0); !s.ok()) {
        return s;
      }
      incremental_on_ = on;
      // OFF also drops the cached state: the knob is the memory opt-out.
      if (!on) incremental_.Reset();
      return std::string(on ? "incremental evaluation on\n"
                            : "incremental evaluation off\n");
    }
    if (what == "OPTIMIZER") {
      if ((num != "LEARNED" && num != "STATIC") ||
          !StripWhitespace(after).empty()) {
        return InvalidArgumentError("usage: SET OPTIMIZER LEARNED|STATIC");
      }
      bool learned = num == "LEARNED";
      if (Status s = PersistKnob("OPTIMIZER_LEARNED", learned ? 1 : 0);
          !s.ok()) {
        return s;
      }
      learned_optimizer_ = learned;
      return std::string(learned
                             ? "optimizer learned mode on (RUN chooses "
                               "plans from outcome history)\n"
                             : "optimizer static mode\n");
    }
    if (what == "DYNAMIC") {
      // §4.4 knobs, persisted like every knob. Knob values are int64, so
      // the doubles travel milli-scaled (2.5 -> 2500).
      auto [val_text, tail] = SplitCommand(after);
      Result<double> v = ParseDouble(val_text);
      static constexpr std::string_view kUsage =
          "usage: SET DYNAMIC AGGRESSIVENESS|IMPROVEMENT|MINREMOVED <v>";
      if (!v.ok() || !StripWhitespace(tail).empty()) {
        return InvalidArgumentError(std::string(kUsage));
      }
      double value = *v;
      if (num == "AGGRESSIVENESS") {
        if (value < 0) {
          return InvalidArgumentError("AGGRESSIVENESS must be >= 0");
        }
        if (Status s = PersistKnob("DYN_AGGRESSIVENESS_MILLI",
                                   std::llround(value * 1000));
            !s.ok()) {
          return s;
        }
        dynamic_knobs_.aggressiveness = value;
      } else if (num == "IMPROVEMENT") {
        if (value < 0 || value > 1) {
          return InvalidArgumentError("IMPROVEMENT must be in [0, 1]");
        }
        if (Status s = PersistKnob("DYN_IMPROVEMENT_MILLI",
                                   std::llround(value * 1000));
            !s.ok()) {
          return s;
        }
        dynamic_knobs_.improvement_factor = value;
      } else if (num == "MINREMOVED") {
        if (value < 0 || value > 1) {
          return InvalidArgumentError("MINREMOVED must be in [0, 1]");
        }
        if (Status s = PersistKnob("DYN_MIN_REMOVED_MILLI",
                                   std::llround(value * 1000));
            !s.ok()) {
          return s;
        }
        dynamic_knobs_.min_removed_fraction = value;
      } else {
        return InvalidArgumentError(std::string(kUsage));
      }
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    "dynamic knobs: aggressiveness=%.3f improvement=%.3f "
                    "min_removed=%.3f\n",
                    dynamic_knobs_.aggressiveness,
                    dynamic_knobs_.improvement_factor,
                    dynamic_knobs_.min_removed_fraction);
      return std::string(buf);
    }
    Result<std::int64_t> n = ParseInt64(num);
    if (what == "TIMEOUT") {
      if (!n.ok() || *n < 0 || !StripWhitespace(after).empty()) {
        return InvalidArgumentError("usage: SET TIMEOUT <ms> (0 = off)");
      }
      if (Status s = PersistKnob("TIMEOUT_MS", *n); !s.ok()) return s;
      timeout_ms_ = *n;
      return timeout_ms_ == 0
                 ? std::string("timeout off\n")
                 : "timeout set to " + std::to_string(timeout_ms_) + " ms\n";
    }
    if (what == "MEMORY") {
      if (!n.ok() || *n < 0 || !StripWhitespace(after).empty()) {
        return InvalidArgumentError("usage: SET MEMORY <mb> (0 = off)");
      }
      if (Status s = PersistKnob("MEMORY_MB", *n); !s.ok()) return s;
      memory_bytes_ = static_cast<std::uint64_t>(*n) * 1024 * 1024;
      return memory_bytes_ == 0
                 ? std::string("memory budget off\n")
                 : "memory budget set to " + std::to_string(*n) + " MB\n";
    }
    if (what == "BUFFER") {
      if (!n.ok() || *n < 0 || !StripWhitespace(after).empty()) {
        return InvalidArgumentError("usage: SET BUFFER <mb>");
      }
      if (Status s = PersistKnob("BUFFER_MB", *n); !s.ok()) return s;
      buffer_bytes_ = static_cast<std::uint64_t>(*n) * 1024 * 1024;
      if (buffer_pool_ != nullptr) {
        buffer_pool_->set_capacity_bytes(buffer_bytes_);
      }
      return "buffer pool set to " + std::to_string(*n) + " MB\n";
    }
    return InvalidArgumentError(
        "usage: SET TIMEOUT <ms> | SET MEMORY <mb> | SET BUFFER <mb> | "
        "SET INCREMENTAL ON|OFF | SET OPTIMIZER LEARNED|STATIC | "
        "SET DYNAMIC <knob> <v>");
  }
  if (command == "HELP") return std::string(kHelp);
  return InvalidArgumentError("unknown command: " + command +
                              " (try HELP)");
}

Result<std::string> Shell::ExecuteScript(std::string_view script) {
  std::string output;
  for (const std::string& statement : SplitStatements(script)) {
    Result<std::string> result = Execute(statement);
    if (!result.ok()) return result.status();
    output += *result;
  }
  return output;
}

void Shell::SeedDatabase(const Database& base) {
  db_ = base;  // cheap: the name table copies, relation payloads share
  views_dirty_ = true;
  // A new database means every cached incremental state and append chain
  // is about a world that no longer exists. The cached cost model goes
  // too: the new database's generation counter is unrelated to the old
  // one's, so the generation check alone cannot be trusted here.
  incremental_.Reset();
  cached_model_.reset();
}

Result<std::string> Shell::Load(std::string_view args) {
  auto [name, rest] = SplitCommand(args);
  // SplitCommand uppercases; recover the original spelling.
  std::string rel_name(StripWhitespace(args).substr(0, name.size()));
  auto [kw, path] = SplitCommand(rest);
  bool append = false;
  if (kw == "APPEND") {
    append = true;
    auto [kw2, path2] = SplitCommand(path);
    kw = kw2;
    path = path2;
  }
  if (kw != "FROM" || path.empty()) {
    return InvalidArgumentError("usage: LOAD <rel> [APPEND] FROM <path>");
  }
  if (append) {
    // Delta batch: set-semantics append onto the existing relation. The
    // old payload is never mutated (sessions sharing it through the
    // server's COW database are unaffected); the session's pointer swings
    // to a new relation whose leading rows are the old ones verbatim.
    if (!db().Has(rel_name)) {
      return FailedPreconditionError(
          "LOAD APPEND needs an existing relation: " + rel_name);
    }
    std::shared_ptr<const Relation> old = db().GetShared(rel_name);
    Result<Relation> delta = LoadTsv(std::string(path), rel_name, &vfs());
    if (!delta.ok()) return delta.status();
    Result<Relation> appended = AppendRelation(*old, *delta);
    if (!appended.ok()) return appended.status();
    std::size_t added = appended->size() - old->size();
    std::size_t total = appended->size();
    std::uint64_t epoch = appended->epoch();
    QueryContext ctx;
    ConfigureContext(ctx);
    std::vector<Relation> rels;
    rels.push_back(std::move(*appended));
    if (Status s = PersistRelations(std::move(rels), &ctx, /*append=*/true);
        !s.ok()) {
      return s;
    }
    // Link old -> new for the incremental evaluator's delta detection,
    // using the handle the database actually serves now (in catalog mode
    // that is the decoded copy; its rows are the same values, so prefix
    // stability holds).
    incremental_.RecordAppend(rel_name, std::move(old),
                              db().GetShared(rel_name));
    views_dirty_ = true;
    return "appended " + rel_name + ": +" + std::to_string(added) +
           " rows (" + std::to_string(total) + " total, epoch " +
           std::to_string(epoch) + ")\n";
  }
  Result<Relation> rel = LoadTsv(std::string(path), rel_name, &vfs());
  if (!rel.ok()) return rel.status();
  std::size_t rows = rel->size();
  QueryContext ctx;
  ConfigureContext(ctx);
  std::vector<Relation> rels;
  rels.push_back(std::move(*rel));
  if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) return s;
  views_dirty_ = true;
  return "loaded " + rel_name + ": " + std::to_string(rows) + " rows\n";
}

Result<std::string> Shell::Save(std::string_view args) {
  auto [name, rest] = SplitCommand(args);
  std::string rel_name(StripWhitespace(args).substr(0, name.size()));
  auto [kw, path] = SplitCommand(rest);
  if (kw != "TO" || path.empty()) {
    return InvalidArgumentError("usage: SAVE <rel> TO <path>");
  }
  if (!db().Has(rel_name)) {
    return NotFoundError("no relation named " + rel_name);
  }
  if (Status s = StoreTsv(db().Get(rel_name), std::string(path), &vfs());
      !s.ok()) {
    return s;
  }
  return "saved " + rel_name + " to " + std::string(path) + "\n";
}

namespace {

// Parses "key=value key=value ..." into a map of doubles.
Result<std::map<std::string, double>> ParseKeyValues(
    std::string_view params) {
  std::map<std::string, double> out;
  std::string_view remaining = params;
  while (!StripWhitespace(remaining).empty()) {
    auto [pair_raw, next] = SplitCommand(remaining);
    std::string_view pair =
        StripWhitespace(remaining).substr(0, pair_raw.size());
    remaining = next;
    std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("expected key=value, got " +
                                  std::string(pair));
    }
    Result<double> value = ParseDouble(pair.substr(eq + 1));
    if (!value.ok()) return value.status();
    out[std::string(pair.substr(0, eq))] = *value;
  }
  return out;
}

// Pops `key` from `kv` into `target` (cast as needed), if present.
template <typename T>
void TakeKey(std::map<std::string, double>& kv, const std::string& key,
             T& target) {
  auto it = kv.find(key);
  if (it == kv.end()) return;
  target = static_cast<T>(it->second);
  kv.erase(it);
}

Status RejectLeftovers(const std::map<std::string, double>& kv) {
  if (kv.empty()) return Status::Ok();
  return InvalidArgumentError("unknown GEN key: " + kv.begin()->first);
}

}  // namespace

Result<std::string> Shell::Gen(std::string_view args) {
  auto [kind, rest] = SplitCommand(args);
  auto [name_upper, params] = SplitCommand(rest);
  std::string rel_name(StripWhitespace(rest).substr(0, name_upper.size()));
  if (rel_name.empty()) {
    return InvalidArgumentError(
        "usage: GEN BASKETS|MEDICAL|WEB|GRAPH <name> [key=value ...]");
  }
  Result<std::map<std::string, double>> parsed = ParseKeyValues(params);
  if (!parsed.ok()) return parsed.status();
  std::map<std::string, double> kv = std::move(*parsed);

  if (kind == "BASKETS") {
    BasketConfig config;
    TakeKey(kv, "n_baskets", config.n_baskets);
    TakeKey(kv, "n_items", config.n_items);
    TakeKey(kv, "avg_size", config.avg_basket_size);
    TakeKey(kv, "theta", config.zipf_theta);
    TakeKey(kv, "locality", config.topic_locality);
    TakeKey(kv, "topics", config.n_topics);
    TakeKey(kv, "seed", config.seed);
    if (Status s = RejectLeftovers(kv); !s.ok()) return s;
    Relation rel = GenerateBaskets(config);
    rel.set_name(rel_name);
    std::size_t rows = rel.size();
    std::vector<Relation> rels;
    rels.push_back(std::move(rel));
    QueryContext ctx;
    ConfigureContext(ctx);
    if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) return s;
    views_dirty_ = true;
    return "generated " + rel_name + ": " + std::to_string(rows) + " rows\n";
  }

  if (kind == "GRAPH") {
    GraphConfig config;
    TakeKey(kv, "n_nodes", config.n_nodes);
    TakeKey(kv, "degree", config.avg_out_degree);
    TakeKey(kv, "theta", config.target_theta);
    TakeKey(kv, "seed", config.seed);
    if (Status s = RejectLeftovers(kv); !s.ok()) return s;
    Relation rel = GenerateGraph(config);
    rel.set_name(rel_name);
    std::size_t rows = rel.size();
    std::vector<Relation> rels;
    rels.push_back(std::move(rel));
    QueryContext ctx;
    ConfigureContext(ctx);
    if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) return s;
    views_dirty_ = true;
    return "generated " + rel_name + ": " + std::to_string(rows) + " rows\n";
  }

  // MEDICAL and WEB generate several relations; <name> is ignored beyond
  // requiring a placeholder, and the canonical relation names are used.
  if (kind == "MEDICAL") {
    MedicalConfig config;
    TakeKey(kv, "n_patients", config.n_patients);
    TakeKey(kv, "n_diseases", config.n_diseases);
    TakeKey(kv, "n_symptoms", config.n_symptoms);
    TakeKey(kv, "n_medicines", config.n_medicines);
    if (auto it = kv.find("theta"); it != kv.end()) {
      config.symptom_theta = it->second;
      config.medicine_theta = it->second;
      kv.erase(it);
    }
    TakeKey(kv, "locality", config.disease_locality);
    TakeKey(kv, "seed", config.seed);
    if (Status s = RejectLeftovers(kv); !s.ok()) return s;
    Database generated = GenerateMedical(config);
    std::string out;
    std::vector<Relation> rels;
    for (const std::string& name : generated.Names()) {
      Relation rel = generated.Get(name);
      out += "generated " + name + ": " + std::to_string(rel.size()) +
             " rows\n";
      rels.push_back(std::move(rel));
    }
    QueryContext ctx;
    ConfigureContext(ctx);
    if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) return s;
    views_dirty_ = true;
    return out;
  }

  if (kind == "WEB") {
    WebConfig config;
    TakeKey(kv, "n_docs", config.n_docs);
    TakeKey(kv, "n_words", config.n_words);
    TakeKey(kv, "n_anchors", config.n_anchors);
    TakeKey(kv, "theta", config.word_theta);
    TakeKey(kv, "locality", config.topic_locality);
    TakeKey(kv, "topics", config.n_topics);
    TakeKey(kv, "seed", config.seed);
    if (Status s = RejectLeftovers(kv); !s.ok()) return s;
    Database generated = GenerateWeb(config);
    std::string out;
    std::vector<Relation> rels;
    for (const std::string& name : generated.Names()) {
      Relation rel = generated.Get(name);
      out += "generated " + name + ": " + std::to_string(rel.size()) +
             " rows\n";
      rels.push_back(std::move(rel));
    }
    QueryContext ctx;
    ConfigureContext(ctx);
    if (Status s = PersistRelations(std::move(rels), &ctx); !s.ok()) return s;
    views_dirty_ = true;
    return out;
  }

  return InvalidArgumentError(
      "usage: GEN BASKETS|MEDICAL|WEB|GRAPH <name> [key=value ...]");
}

Result<std::string> Shell::Define(std::string_view args) {
  Result<ConjunctiveQuery> rule = ParseRule(args);
  if (!rule.ok()) return rule.status();
  Program candidate = program_;
  candidate.AddRule(*rule);
  if (Status s = candidate.Validate(); !s.ok()) return s;
  if (catalog_ != nullptr) {
    if (Status s = catalog_->DefineRule(std::string(StripWhitespace(args)));
        !s.ok()) {
      return s;
    }
  }
  program_ = std::move(candidate);
  views_dirty_ = true;
  return "defined " + rule->head_name + "\n";
}

namespace {

// Parses a flock declaration body — everything after the name, starting
// at QUERY. Split out of DeclareFlock so OPEN can re-parse the bodies the
// catalog persisted.
Result<QueryFlock> ParseFlockBody(std::string_view body) {
  std::size_t query_pos = FindKeyword(body, "QUERY");
  std::size_t filter_pos = FindKeyword(body, "FILTER");
  if (query_pos != 0 || filter_pos == std::string_view::npos) {
    return InvalidArgumentError(
        "usage: FLOCK <name> QUERY <rules> FILTER <condition>");
  }
  std::string_view query_text =
      body.substr(query_pos + 5, filter_pos - query_pos - 5);
  std::string_view filter_text = body.substr(filter_pos + 6);

  Result<UnionQuery> query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  Result<FilterCondition> filter = ParseFilterSpec(filter_text, *query);
  if (!filter.ok()) return filter.status();
  QueryFlock flock(std::move(*query), std::move(*filter));
  if (Status s = flock.Validate(); !s.ok()) return s;
  return flock;
}

}  // namespace

Result<std::string> Shell::DeclareFlock(std::string_view args) {
  std::size_t query_pos = FindKeyword(args, "QUERY");
  if (query_pos == std::string_view::npos) {
    return InvalidArgumentError(
        "usage: FLOCK <name> QUERY <rules> FILTER <condition>");
  }
  std::string name(StripWhitespace(args.substr(0, query_pos)));
  if (name.empty() || name.find(' ') != std::string::npos) {
    return InvalidArgumentError("bad flock name: '" + name + "'");
  }
  std::string body(StripWhitespace(args.substr(query_pos)));
  Result<QueryFlock> flock = ParseFlockBody(body);
  if (!flock.ok()) return flock.status();
  if (catalog_ != nullptr) {
    if (Status s = catalog_->PutFlock(name, body); !s.ok()) return s;
  }
  flocks_[name] = std::move(*flock);
  return "flock " + name + " declared\n" + flocks_[name].ToString();
}

Result<const std::map<std::string, Relation>*> Shell::Views() {
  if (views_dirty_) {
    Result<std::map<std::string, Relation>> views =
        MaterializeProgram(program_, db());
    if (!views.ok()) return views.status();
    views_ = std::move(*views);
    views_dirty_ = false;
    ++views_version_;  // cached cost model must restat the new views
  }
  return &views_;
}

Result<const CostModel*> Shell::Model() {
  Result<const std::map<std::string, Relation>*> views = Views();
  if (!views.ok()) return views.status();
  // Rebuild when the database mutated (LOAD/GEN/DEFINE/APPEND all bump
  // Database::generation) or the view set was rematerialized; otherwise
  // every statement of a session would restat every relation.
  if (!cached_model_.has_value() ||
      cached_model_generation_ != db().generation() ||
      cached_model_views_version_ != views_version_) {
    DatabaseStats stats = DatabaseStats::Compute(db());
    for (const auto& [view_name, rel] : **views) {
      stats.Put(view_name, ComputeStats(rel));
    }
    cached_model_.emplace(std::move(stats));
    cached_model_generation_ = db().generation();
    cached_model_views_version_ = views_version_;
  }
  return &*cached_model_;
}

Result<std::string> Shell::Explain(std::string_view args) {
  if (auto [first, rest] = SplitCommand(args); first == "ANALYZE") {
    return ExplainAnalyze(rest);
  }
  std::string name(StripWhitespace(args));
  auto it = flocks_.find(name);
  if (it == flocks_.end()) return NotFoundError("no flock named " + name);
  Result<const CostModel*> model_or = Model();
  if (!model_or.ok()) return model_or.status();
  const CostModel& model = **model_or;
  Result<QueryPlan> plan = SearchPlanParameterSets(it->second, model);
  if (!plan.ok()) return plan.status();
  double cost = EstimatePlanCost(*plan, it->second, model);
  double trivial =
      EstimatePlanCost(TrivialPlan(it->second), it->second, model);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "estimated cost %.0f rows (trivial plan: %.0f)\n", cost,
                trivial);
  return "plan for " + name + ":\n" + plan->ToString(it->second.filter) +
         buf;
}

Result<Relation> Shell::Evaluate(const std::string& mode,
                                 const QueryFlock& flock, unsigned threads,
                                 OpMetrics* metrics,
                                 std::string* dynamic_trace,
                                 QueryContext* ctx) {
  if (Status s = flock.Validate(); !s.ok()) return s;
  Result<const std::map<std::string, Relation>*> views = Views();
  if (!views.ok()) return views.status();
  std::map<std::string, const Relation*> extra;
  for (const auto& [view_name, rel] : **views) extra[view_name] = &rel;
  TraceSink* trace = trace_sink_.get();

  // Estimated surviving assignments of a FILTER over `query`, for the
  // est-vs-actual skew EXPLAIN ANALYZE renders. Only support-style
  // filters have a calibrated model.
  auto estimate_survivors = [&](const UnionQuery& query,
                                const CostModel& model) {
    double est = 0;
    for (const ConjunctiveQuery& cq : query.disjuncts) {
      est += model.EstimateFilter(cq, flock.filter.threshold).survivors;
    }
    return est;
  };
  if (mode == "DIRECT" || mode == "REDUCED") {
    FlockEvalOptions options;
    options.threads = threads;
    options.metrics = metrics;
    options.trace = trace;
    options.ctx = ctx;
    if (mode == "REDUCED") {
      // Yannakakis full-reducer evaluation (falls back on cyclic queries).
      for (std::size_t d = 0; d < flock.query.disjuncts.size(); ++d) {
        CqEvalOptions cq_options;
        cq_options.full_reducer = true;
        options.per_disjunct.push_back(std::move(cq_options));
      }
    }
    if (metrics != nullptr && flock.filter.IsSupportStyle()) {
      Result<const CostModel*> model = Model();
      if (!model.ok()) return model.status();
      metrics->est_rows = estimate_survivors(flock.query, **model);
    }
    return EvaluateFlock(flock, db(), options, &extra);
  }

  if (mode == "DYNAMIC") {
    if (!extra.empty()) {
      return UnimplementedError(
          "RUN ... DYNAMIC does not support intermediate predicates yet; "
          "use DIRECT or PLAN");
    }
    DynamicOptions options;
    options.aggressiveness = dynamic_knobs_.aggressiveness;
    options.improvement_factor = dynamic_knobs_.improvement_factor;
    options.min_removed_fraction = dynamic_knobs_.min_removed_fraction;
    options.threads = threads;
    options.metrics = metrics;
    options.trace = trace;
    options.ctx = ctx;
    DynamicLog log;
    Result<Relation> result = DynamicEvaluate(flock, db(), options, &log);
    if (result.ok() && dynamic_trace != nullptr) {
      *dynamic_trace = RenderDynamicTrace(log);
    }
    return result;
  }

  Result<const CostModel*> model_or = Model();
  if (!model_or.ok()) return model_or.status();
  const CostModel& model = **model_or;
  Result<QueryPlan> plan = SearchPlanParameterSets(flock, model);
  if (!plan.ok()) return plan.status();
  PlanExecOptions options;
  options.order_chooser = CostBasedOrderChooser();
  options.extra_predicates = &extra;
  options.threads = threads;
  options.metrics = metrics;
  options.trace = trace;
  options.ctx = ctx;
  Result<Relation> result = ExecutePlan(*plan, flock, db(), options);
  if (result.ok() && metrics != nullptr && flock.filter.IsSupportStyle()) {
    // The executor pre-allocates step children in plan order, so child k
    // is step k; attach the optimizer's per-step estimate to each.
    for (std::size_t k = 0;
         k < plan->steps.size() && k < metrics->children.size(); ++k) {
      metrics->children[k]->est_rows =
          estimate_survivors(plan->steps[k].query, model);
    }
    if (!plan->steps.empty()) {
      metrics->est_rows = metrics->children[plan->steps.size() - 1]->est_rows;
    }
  }
  return result;
}

Result<Relation> Shell::EvaluateLearned(const QueryFlock& flock,
                                        unsigned threads, OpMetrics* metrics,
                                        std::string* dynamic_trace,
                                        QueryContext* ctx,
                                        LearnedRunInfo* info) {
  if (Status s = flock.Validate(); !s.ok()) return s;
  Result<const CostModel*> model_or = Model();
  if (!model_or.ok()) return model_or.status();
  const CostModel& model = **model_or;
  Result<const std::map<std::string, Relation>*> views = Views();
  if (!views.ok()) return views.status();
  std::map<std::string, const Relation*> extra;
  for (const auto& [view_name, rel] : **views) extra[view_name] = &rel;
  TraceSink* trace = trace_sink_.get();

  PlanContext pctx = MakePlanContext(flock, model);
  // The DynamicEvaluate preconditions (single disjunct, support filter,
  // no view predicates); only then do the §4.4 arms enter the pool.
  const bool dynamic_eligible = extra.empty() &&
                                flock.query.disjuncts.size() == 1 &&
                                flock.filter.IsSupportStyle();
  std::vector<BanditArm> arms =
      EnumerateArms(flock, model, dynamic_eligible, dynamic_knobs_);
  BanditChoice choice = PlanBandit(optimizer_history()).Choose(pctx.key, arms);
  const BanditArm& arm = arms[choice.index];
  if (info != nullptr) {
    info->arm_id = choice.arm_id;
    info->context = pctx.key;
    info->context_desc = pctx.description;
    info->exploring = choice.exploring;
    info->posterior = choice.posterior;
  }

  auto start = std::chrono::steady_clock::now();
  Result<Relation> result = Relation();
  switch (arm.kind) {
    case BanditArm::Kind::kPlan: {
      Result<QueryPlan> plan = SearchPlanParameterSets(flock, model);
      if (!plan.ok()) return plan.status();
      PlanExecOptions options;
      options.order_chooser = CostBasedOrderChooser();
      options.extra_predicates = &extra;
      options.threads = threads;
      options.metrics = metrics;
      options.trace = trace;
      options.ctx = ctx;
      result = ExecutePlan(*plan, flock, db(), options);
      break;
    }
    case BanditArm::Kind::kDirect: {
      FlockEvalOptions options;
      options.threads = threads;
      options.metrics = metrics;
      options.trace = trace;
      options.ctx = ctx;
      for (const std::vector<std::size_t>& order : arm.orders) {
        CqEvalOptions cq_options;
        cq_options.join_order = order;
        options.per_disjunct.push_back(std::move(cq_options));
      }
      result = EvaluateFlock(flock, db(), options, &extra);
      break;
    }
    case BanditArm::Kind::kDynamic: {
      DynamicOptions options;
      if (!arm.orders.empty()) options.join_order = arm.orders.front();
      options.aggressiveness = arm.knobs.aggressiveness;
      options.improvement_factor = arm.knobs.improvement_factor;
      options.min_removed_fraction = arm.knobs.min_removed_fraction;
      options.threads = threads;
      options.metrics = metrics;
      options.trace = trace;
      options.ctx = ctx;
      DynamicLog log;
      result = DynamicEvaluate(flock, db(), options, &log);
      if (result.ok() && dynamic_trace != nullptr) {
        *dynamic_trace = RenderDynamicTrace(log);
      }
      break;
    }
  }
  double wall_ms = MillisSince(start);
  if (!result.ok()) return result;

  // Est-vs-actual skew for the outcome record: how far the static model's
  // survivor estimate was from the observed answer count (1.0 = exact,
  // symmetric in direction; only support filters have a calibrated model).
  double actual = static_cast<double>(result->size());
  double skew = 1.0;
  if (flock.filter.IsSupportStyle()) {
    double est = 0;
    for (const ConjunctiveQuery& cq : flock.query.disjuncts) {
      est += model.EstimateFilter(cq, flock.filter.threshold).survivors;
    }
    if (metrics != nullptr) metrics->est_rows = est;
    double lo = std::max(1.0, std::min(est, actual));
    double hi = std::max(1.0, std::max(est, actual));
    skew = hi / lo;
  }
  BanditOutcome outcome;
  outcome.context = pctx.key;
  outcome.arm = choice.arm_id;
  outcome.wall_ms = wall_ms;
  outcome.rows = actual;
  outcome.skew = skew;
  if (Status s = RecordOutcome(outcome); !s.ok()) return s;
  return result;
}

Status Shell::RecordOutcome(const BanditOutcome& outcome) {
  if (catalog_ != nullptr) {
    // A latched (read-only) catalog skips learning rather than failing
    // the statement — the run still answered correctly; only the lesson
    // is lost, and the next OPEN starts recording again.
    if (!catalog_->Healthy().ok()) return Status::Ok();
    return catalog_->RecordBanditOutcome(outcome);
  }
  local_history_.Record(outcome);
  return Status::Ok();
}

void Shell::ConfigureContext(QueryContext& ctx) const {
  if (timeout_ms_ > 0) ctx.set_timeout_ms(timeout_ms_);
  if (memory_bytes_ > 0) ctx.set_memory_budget(memory_bytes_);
  // With a catalog open, a budgeted statement may spill to <dir>/spill
  // instead of aborting (kernels switch to the grace-hash variants near
  // the budget; results are bit-identical). Without a catalog there is no
  // durable directory whose OPEN sweeps orphans, so the hard abort stays.
  if (memory_bytes_ > 0 && spill_env_ != nullptr) {
    ctx.set_spill_env(spill_env_.get());
  }
  ctx.set_cancel_flag(cancel_flag_);
}

Result<std::string> Shell::Run(std::string_view args) {
  auto [name_upper, rest] = SplitCommand(args);
  std::string name(StripWhitespace(args).substr(0, name_upper.size()));
  auto it = flocks_.find(name);
  if (it == flocks_.end()) return NotFoundError("no flock named " + name);
  const QueryFlock& flock = it->second;

  Result<RunOptions> opts = ParseRunOptions(rest, default_threads_);
  if (!opts.ok()) return opts.status();

  // With tracing on, spans need metrics nodes to describe them; the tree
  // itself is discarded after the run.
  OpMetrics root;
  OpMetrics* metrics = tracing() ? &root : nullptr;

  auto start = std::chrono::steady_clock::now();
  if (incremental_on_) {
    // Try the cached/incremental path first; it either serves a result
    // bit-identical to the ordinary evaluation (any mode, any thread
    // count — the engine contract) or declines and the statement falls
    // through to the requested mode below. The attempt gets its own
    // governor: a latched budget/deadline error must not poison the
    // fallback's accounting.
    Result<const std::map<std::string, Relation>*> views = Views();
    if (!views.ok()) return views.status();
    QueryContext ictx;
    ConfigureContext(ictx);
    IncrementalEvalOptions iopts;
    iopts.threads = opts->threads;
    iopts.metrics = metrics;
    iopts.trace = trace_sink_.get();
    iopts.ctx = &ictx;
    iopts.state_budget = memory_bytes_;
    Relation served;
    IncrementalRunInfo rinfo;
    if (Status s = incremental_.Run(name, flock, db(), **views, iopts,
                                    &served, &rinfo);
        !s.ok()) {
      return s;
    }
    if (rinfo.served) {
      double ms = MillisSince(start);
      std::string mode = "INCREMENTAL:" + rinfo.decision;
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s: %zu assignments in %.1f ms (%s)\n",
                    name.c_str(), served.size(), ms, mode.c_str());
      return buf + PreviewRelation(std::move(served), opts->limit);
    }
  }

  QueryContext ctx;
  ConfigureContext(ctx);
  Result<Relation> result = Relation();
  std::string mode_name = opts->mode;
  if (learned_optimizer_ && !opts->mode_explicit) {
    // An explicit mode word always wins over the bandit; without one the
    // learned optimizer picks the strategy and reports it as the mode.
    LearnedRunInfo linfo;
    result = EvaluateLearned(flock, opts->threads, metrics, nullptr, &ctx,
                             &linfo);
    mode_name = "LEARNED:" + linfo.arm_id;
  } else {
    result = Evaluate(opts->mode, flock, opts->threads, metrics, nullptr, &ctx);
  }
  double ms = MillisSince(start);
  if (!result.ok()) return result.status();

  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %zu assignments in %.1f ms (%s)\n",
                name.c_str(), result->size(), ms, mode_name.c_str());
  return buf + PreviewRelation(std::move(*result), opts->limit);
}

Result<std::string> Shell::ExplainAnalyze(std::string_view args) {
  auto [name_upper, rest] = SplitCommand(args);
  std::string name(StripWhitespace(args).substr(0, name_upper.size()));
  if (name.empty()) {
    return InvalidArgumentError(
        "usage: EXPLAIN ANALYZE <name> [DIRECT|PLAN|DYNAMIC|REDUCED] "
        "[LIMIT <n>] [THREADS <n>]");
  }
  auto it = flocks_.find(name);
  if (it == flocks_.end()) return NotFoundError("no flock named " + name);
  const QueryFlock& flock = it->second;

  Result<RunOptions> opts = ParseRunOptions(rest, default_threads_);
  if (!opts.ok()) return opts.status();

  OpMetrics root;
  std::string dynamic_trace;
  // Separate governors for the incremental attempt and the fallback: a
  // tripped attempt must not poison the fallback's accounting. `used`
  // points at whichever governed the statement that actually ran.
  QueryContext ictx;
  ConfigureContext(ictx);
  QueryContext ctx;
  ConfigureContext(ctx);
  QueryContext* used = &ctx;
  std::string mode_name = opts->mode;
  auto start = std::chrono::steady_clock::now();
  Result<Relation> result = Relation();
  bool served = false;
  if (incremental_on_) {
    Result<const std::map<std::string, Relation>*> views = Views();
    if (!views.ok()) return views.status();
    IncrementalEvalOptions iopts;
    iopts.threads = opts->threads;
    iopts.metrics = &root;
    iopts.trace = trace_sink_.get();
    iopts.ctx = &ictx;
    iopts.state_budget = memory_bytes_;
    Relation inc_result;
    IncrementalRunInfo rinfo;
    if (Status s = incremental_.Run(name, flock, db(), **views, iopts,
                                    &inc_result, &rinfo);
        !s.ok()) {
      return s;
    }
    if (rinfo.served) {
      result = std::move(inc_result);
      mode_name = "INCREMENTAL:" + rinfo.decision;
      used = &ictx;
      served = true;
    }
    // Declined: the "incremental" metrics child keeps the decision and
    // the fallback's operator tree is appended next to it.
  }
  LearnedRunInfo linfo;
  bool learned = false;
  if (!served) {
    if (learned_optimizer_ && !opts->mode_explicit) {
      result = EvaluateLearned(flock, opts->threads, &root, &dynamic_trace,
                               &ctx, &linfo);
      mode_name = "LEARNED:" + linfo.arm_id;
      learned = true;
    } else {
      result = Evaluate(opts->mode, flock, opts->threads, &root,
                        &dynamic_trace, &ctx);
    }
  }
  double ms = MillisSince(start);
  if (!result.ok()) return result.status();
  // The evaluators time their children; the root's span is the statement.
  root.wall_ns = static_cast<std::uint64_t>(ms * 1e6);

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: %zu assignments in %.1f ms (%s, threads %u)\n",
                name.c_str(), result->size(), ms, mode_name.c_str(),
                opts->threads);
  std::string out = buf;
  if (learned) {
    // The bandit's decision: which context cell the flock hashed to, the
    // chosen arm (and whether it was exploration or exploitation), then
    // the per-arm posterior the choice was made from.
    std::snprintf(buf, sizeof(buf), "optimizer: context %016llx (%s)\n",
                  static_cast<unsigned long long>(linfo.context),
                  linfo.context_desc.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "  chose %s (%s)\n",
                  linfo.arm_id.c_str(),
                  linfo.exploring ? "exploring" : "exploiting");
    out += buf;
    out += linfo.posterior;
  }
  if (!dynamic_trace.empty()) {
    out += "dynamic decisions:\n" + dynamic_trace;
  }
  std::snprintf(buf, sizeof(buf), "governor: peak %llu bytes accounted\n",
                static_cast<unsigned long long>(used->peak_bytes()));
  out += buf;
  out += "metrics:\n" + root.ToString();
  if (catalog_ != nullptr) {
    // Session-level durability counters (cumulative since OPEN), rendered
    // as their own subtree below the statement's operator metrics.
    const StorageStats& st = catalog_->stats();
    OpMetrics storage("storage", catalog_->dir());
    OpMetrics* wal =
        storage.AddChild("wal", "fsyncs=" + std::to_string(st.fsyncs));
    wal->rows_out = st.wal_records;
    wal->mem_bytes = st.wal_bytes;
    wal->wall_ns = st.wal_sync_ns;
    OpMetrics* snap = storage.AddChild(
        "snapshot", "checkpoints=" + std::to_string(st.snapshots));
    snap->rows_out = st.snapshots;
    snap->mem_bytes = st.snapshot_bytes;
    snap->wall_ns = st.snapshot_ns;
    OpMetrics* replay = storage.AddChild(
        "replay", "truncated_bytes=" + std::to_string(st.truncated_bytes));
    replay->rows_out = st.replayed_records;
    replay->wall_ns = st.replay_ns;
    if (buffer_pool_ != nullptr) {
      BufferPoolStats bp = buffer_pool_->stats();
      OpMetrics* pool = storage.AddChild(
          "buffer_pool", "hits=" + std::to_string(bp.hits) +
                             " misses=" + std::to_string(bp.misses) +
                             " evictions=" + std::to_string(bp.evictions));
      pool->rows_out = bp.resident_pages;
      pool->mem_bytes = bp.resident_bytes;
    }
    if (spill_env_ != nullptr) {
      const SpillStats& sp = spill_env_->stats;
      OpMetrics* spill = storage.AddChild(
          "spill",
          "activations=" + std::to_string(sp.activations.load()) +
              " partitions=" + std::to_string(sp.partitions.load()) +
              " recursions=" + std::to_string(sp.recursions.load()));
      spill->rows_out = sp.spilled_rows.load();
      spill->mem_bytes = sp.bytes_written.load() + sp.bytes_read.load();
    }
    out += "storage:\n" + storage.ToString();
  }
  out += "result:\n" + PreviewRelation(std::move(*result), opts->limit);
  return out;
}

Result<std::string> Shell::Trace(std::string_view args) {
  auto [what, rest] = SplitCommand(args);
  if (what == "ON") {
    if (!StripWhitespace(rest).empty()) {
      return InvalidArgumentError("usage: TRACE ON|OFF|TO <path>");
    }
    auto sink = std::make_unique<MemoryTraceSink>();
    memory_trace_ = sink.get();
    file_trace_ = nullptr;
    trace_path_.clear();
    trace_sink_ = std::move(sink);
    return std::string("trace on (buffering in memory; SHOW TRACE to inspect)\n");
  }
  if (what == "OFF") {
    if (!StripWhitespace(rest).empty()) {
      return InvalidArgumentError("usage: TRACE ON|OFF|TO <path>");
    }
    if (trace_sink_ == nullptr) return std::string("trace already off\n");
    std::size_t events = memory_trace_ != nullptr
                             ? memory_trace_->event_count()
                             : file_trace_->event_count();
    std::string where = trace_path_.empty() ? "memory" : trace_path_;
    memory_trace_ = nullptr;
    file_trace_ = nullptr;
    trace_path_.clear();
    trace_sink_.reset();
    return "trace off (" + std::to_string(events) + " events in " + where +
           ")\n";
  }
  if (what == "TO") {
    std::string path(StripWhitespace(rest));
    if (path.empty()) {
      return InvalidArgumentError("usage: TRACE TO <path>");
    }
    auto sink = std::make_unique<JsonLinesTraceSink>(path);
    if (!sink->ok()) {
      return InvalidArgumentError("cannot open trace file: " + path);
    }
    file_trace_ = sink.get();
    memory_trace_ = nullptr;
    trace_path_ = path;
    trace_sink_ = std::move(sink);
    return "tracing to " + path + "\n";
  }
  return InvalidArgumentError("usage: TRACE ON|OFF|TO <path>");
}

Result<std::string> Shell::Sql(std::string_view args) {
  std::string name(StripWhitespace(args));
  auto it = flocks_.find(name);
  if (it == flocks_.end()) return NotFoundError("no flock named " + name);
  // Views appear as tables named by their head variables.
  Database with_views = db();
  Result<const std::map<std::string, Relation>*> views = Views();
  if (!views.ok()) return views.status();
  for (const auto& [view_name, rel] : **views) {
    Relation named = rel;
    named.set_name(view_name);
    with_views.PutRelation(std::move(named));
  }
  Result<std::string> sql = EmitSql(it->second, with_views);
  if (!sql.ok()) return sql.status();
  return *sql + "\n";
}

Result<std::string> Shell::Maximal(std::string_view args) {
  auto [name_upper, rest] = SplitCommand(args);
  std::string rel_name(StripWhitespace(args).substr(0, name_upper.size()));
  MaximalItemsetsOptions options;
  bool have_support = false;
  while (!StripWhitespace(rest).empty()) {
    auto [kw, next] = SplitCommand(rest);
    auto [num, after] = SplitCommand(next);
    Result<double> value = ParseDouble(num);
    if (!value.ok()) return value.status();
    if (kw == "SUPPORT") {
      options.min_support = *value;
      have_support = true;
    } else if (kw == "MAXSIZE") {
      options.max_size = static_cast<std::size_t>(*value);
    } else {
      return InvalidArgumentError("unknown MAXIMAL option: " + kw);
    }
    rest = after;
  }
  if (!have_support) {
    return InvalidArgumentError(
        "usage: MAXIMAL <rel> SUPPORT <n> [MAXSIZE <k>]");
  }
  QueryContext ctx;
  ConfigureContext(ctx);
  options.ctx = &ctx;
  Result<MaximalItemsetsResult> result =
      MaximalFrequentItemsets(db(), rel_name, options);
  if (!result.ok()) return result.status();
  std::string out = "maximal frequent itemsets of " + rel_name +
                    " (support >= " + Value(options.min_support).ToString() +
                    "):\n";
  for (const Tuple& t : result->maximal) {
    out += "  " + TupleToString(t) + "\n";
  }
  out += "frequent per level:";
  for (std::size_t n : result->frequent_per_level) {
    out += " " + std::to_string(n);
  }
  out += "\n";
  return out;
}

Result<std::string> Shell::Show(std::string_view args) {
  auto [what, rest] = SplitCommand(args);
  if (what == "RELATIONS") {
    std::string out;
    for (const std::string& name : db().Names()) {
      out += name + db().Get(name).schema().ToString() + " [" +
             std::to_string(db().Get(name).size()) + " rows]\n";
    }
    Result<const std::map<std::string, Relation>*> views = Views();
    if (views.ok()) {
      for (const auto& [name, rel] : **views) {
        out += name + rel.schema().ToString() + " [" +
               std::to_string(rel.size()) + " rows, view]\n";
      }
    }
    return out.empty() ? std::string("(no relations)\n") : out;
  }
  if (what == "FLOCKS") {
    std::string out;
    for (const auto& [name, flock] : flocks_) {
      out += name + ":\n" + flock.ToString();
    }
    return out.empty() ? std::string("(no flocks)\n") : out;
  }
  if (what == "FLOCK") {
    auto [kw, name_part] = SplitCommand(rest);
    std::string fname(StripWhitespace(name_part));
    if (kw != "STATE" || fname.find(' ') != std::string::npos) {
      return InvalidArgumentError("usage: SHOW FLOCK STATE [<name>]");
    }
    if (fname.empty()) return incremental_.DescribeAll();
    if (!flocks_.contains(fname) && incremental_.state(fname) == nullptr) {
      return NotFoundError("no flock named " + fname);
    }
    return incremental_.Describe(fname);
  }
  if (what == "OPTIMIZER") {
    if (StripWhitespace(rest) != "STATE") {
      return InvalidArgumentError("usage: SHOW OPTIMIZER STATE");
    }
    char buf[160];
    std::string out = learned_optimizer_
                          ? "optimizer: learned (bandit picks RUN plans)\n"
                          : "optimizer: static\n";
    std::snprintf(buf, sizeof(buf),
                  "dynamic knobs: aggressiveness=%.3f improvement=%.3f "
                  "min_removed=%.3f\n",
                  dynamic_knobs_.aggressiveness,
                  dynamic_knobs_.improvement_factor,
                  dynamic_knobs_.min_removed_fraction);
    out += buf;
    out += optimizer_history().Describe();
    return out;
  }
  if (what == "TRACE") {
    if (memory_trace_ != nullptr) {
      std::vector<std::string> lines = memory_trace_->Lines();
      std::string out;
      for (const std::string& line : lines) {
        out += line;
        out += '\n';
      }
      out += std::to_string(lines.size()) + " events\n";
      return out;
    }
    if (file_trace_ != nullptr) {
      return "tracing to " + trace_path_ + " (" +
             std::to_string(file_trace_->event_count()) + " events)\n";
    }
    return std::string("(trace is off)\n");
  }
  std::string rel_name(StripWhitespace(args).substr(0, what.size()));
  if (db().Has(rel_name)) {
    return PreviewRelation(db().Get(rel_name), 10);
  }
  Result<const std::map<std::string, Relation>*> views = Views();
  if (views.ok()) {
    auto it = (*views)->find(rel_name);
    if (it != (*views)->end()) return PreviewRelation(it->second, 10);
  }
  return NotFoundError("no relation named " + rel_name);
}

Status Shell::PersistRelations(std::vector<Relation> rels, QueryContext* ctx,
                               bool append) {
  std::vector<std::string> names;
  names.reserve(rels.size());
  for (const Relation& rel : rels) names.push_back(rel.name());
  if (catalog_ != nullptr) {
    std::vector<const Relation*> ptrs;
    ptrs.reserve(rels.size());
    for (const Relation& rel : rels) ptrs.push_back(&rel);
    // One WAL commit for the whole batch: after a crash either all of
    // these relations are recovered or none, never a subset.
    if (Status s = catalog_->PutRelations(ptrs, ctx); !s.ok()) return s;
  } else {
    for (Relation& rel : rels) db_.PutRelation(std::move(rel));
  }
  if (!append) {
    // Overwrites sever the relations' append lineage: cached incremental
    // states over them must rebuild, not walk a broken chain.
    for (const std::string& name : names) incremental_.RecordReplace(name);
  }
  return Status::Ok();
}

Status Shell::PersistKnob(const std::string& key, std::int64_t value) {
  if (catalog_ == nullptr) return Status::Ok();
  return catalog_->SetKnob(key, value);
}

Result<std::string> Shell::Open(std::string_view args) {
  std::string dir(StripWhitespace(args));
  if (dir.empty() || dir.find(' ') != std::string::npos) {
    return InvalidArgumentError("usage: OPEN <dir>");
  }
  QueryContext ctx;
  ConfigureContext(ctx);
  // The pool outlives any single catalog (reopening a directory keeps the
  // cache warm for unchanged page files; rewritten files are invalidated
  // by the catalog's orphan sweep).
  if (buffer_pool_ == nullptr) {
    buffer_pool_ = std::make_unique<BufferPool>(buffer_bytes_);
  }
  CatalogOptions copts;
  copts.pool = buffer_pool_.get();
  Result<std::unique_ptr<Catalog>> opened =
      Catalog::Open(vfs(), dir, &ctx, copts);
  if (!opened.ok()) return opened.status();
  const CatalogState& state = (*opened)->state();

  // Re-parse the persisted rule and flock sources before adopting
  // anything, so a failure leaves the session untouched. These parsed
  // cleanly when they were logged; a failure now means the catalog lied.
  Program program;
  for (const std::string& rule_text : state.rules) {
    Result<ConjunctiveQuery> rule = ParseRule(rule_text);
    if (!rule.ok()) {
      return CorruptWalError("catalog rule failed to re-parse: " +
                             rule.status().ToString());
    }
    program.AddRule(std::move(*rule));
  }
  if (Status s = program.Validate(); !s.ok()) {
    return CorruptWalError("catalog rules failed to validate: " +
                           s.ToString());
  }
  std::map<std::string, QueryFlock> flocks;
  for (const auto& [name, body] : state.flocks) {
    Result<QueryFlock> flock = ParseFlockBody(body);
    if (!flock.ok()) {
      return CorruptWalError("catalog flock " + name +
                             " failed to re-parse: " +
                             flock.status().ToString());
    }
    flocks[name] = std::move(*flock);
  }

  catalog_ = std::move(*opened);
  program_ = std::move(program);
  flocks_ = std::move(flocks);
  db_ = Database();  // superseded by the catalog's database while open
  views_dirty_ = true;
  // Replay rebuilt the database from scratch: cached incremental state and
  // append lineage refer to pre-recovery relation handles, so they are
  // dropped wholesale and rebuilt lazily by the next RUN. (The knob below
  // restores whether the incremental path is on, not its state.)
  incremental_.Reset();
  const auto& knobs = catalog_->state().knobs;
  if (auto it = knobs.find("THREADS"); it != knobs.end() && it->second >= 1) {
    default_threads_ = static_cast<unsigned>(it->second);
  }
  if (auto it = knobs.find("TIMEOUT_MS");
      it != knobs.end() && it->second >= 0) {
    timeout_ms_ = it->second;
  }
  if (auto it = knobs.find("MEMORY_MB");
      it != knobs.end() && it->second >= 0) {
    memory_bytes_ = static_cast<std::uint64_t>(it->second) * 1024 * 1024;
  }
  if (auto it = knobs.find("BUFFER_MB");
      it != knobs.end() && it->second >= 0) {
    buffer_bytes_ = static_cast<std::uint64_t>(it->second) * 1024 * 1024;
    buffer_pool_->set_capacity_bytes(buffer_bytes_);
  }
  if (auto it = knobs.find("INCREMENTAL"); it != knobs.end()) {
    incremental_on_ = it->second != 0;
  }
  if (auto it = knobs.find("OPTIMIZER_LEARNED"); it != knobs.end()) {
    learned_optimizer_ = it->second != 0;
  }
  // §4.4 knobs travel as milli-scaled integers (the knob map is int64).
  if (auto it = knobs.find("DYN_AGGRESSIVENESS_MILLI");
      it != knobs.end() && it->second >= 0) {
    dynamic_knobs_.aggressiveness = static_cast<double>(it->second) / 1000.0;
  }
  if (auto it = knobs.find("DYN_IMPROVEMENT_MILLI");
      it != knobs.end() && it->second >= 0) {
    dynamic_knobs_.improvement_factor =
        static_cast<double>(it->second) / 1000.0;
  }
  if (auto it = knobs.find("DYN_MIN_REMOVED_MILLI");
      it != knobs.end() && it->second >= 0) {
    dynamic_knobs_.min_removed_fraction =
        static_cast<double>(it->second) / 1000.0;
  }
  // The catalog's database replaced the in-memory one; its generation
  // counter is unrelated to whatever the cached model was keyed on.
  cached_model_.reset();
  // Spill grants point at the catalog's directory: OPEN just swept any
  // orphaned spill files there, and the next OPEN will sweep whatever a
  // crash mid-statement leaves behind.
  spill_env_ = std::make_unique<SpillEnv>();
  spill_env_->vfs = &vfs();
  spill_env_->dir = catalog_->SpillDir();

  const Catalog::OpenInfo& info = catalog_->open_info();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "opened %s: %zu relations, %zu rules, %zu flocks\n",
                dir.c_str(), catalog_->state().db.size(),
                catalog_->state().rules.size(),
                catalog_->state().flocks.size());
  std::string out = buf;
  std::snprintf(buf, sizeof(buf),
                "recovery: snapshot lsn %llu, %llu replayed, %llu stale, "
                "%llu bytes truncated (%.1f ms)\n",
                static_cast<unsigned long long>(info.snapshot_lsn),
                static_cast<unsigned long long>(info.replayed_records),
                static_cast<unsigned long long>(info.skipped_records),
                static_cast<unsigned long long>(info.truncated_bytes),
                info.replay_ms);
  out += buf;
  // Out-of-core details only when they happened, so the two-line recovery
  // report (which tests and the CI drill match exactly) stays unchanged
  // for all-inline catalogs.
  if (info.paged_relations > 0 || info.orphans_removed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "paged: %llu relations from page files, %llu orphans "
                  "swept\n",
                  static_cast<unsigned long long>(info.paged_relations),
                  static_cast<unsigned long long>(info.orphans_removed));
    out += buf;
  }
  return out;
}

Result<std::string> Shell::Checkpoint() {
  if (catalog_ == nullptr) {
    return FailedPreconditionError("no catalog open (use OPEN <dir>)");
  }
  QueryContext ctx;
  ConfigureContext(ctx);
  std::uint64_t before = catalog_->stats().snapshot_bytes;
  if (Status s = catalog_->Checkpoint(&ctx); !s.ok()) return s;
  std::uint64_t bytes = catalog_->stats().snapshot_bytes - before;
  return "checkpoint: " + std::to_string(bytes) +
         " bytes snapshotted, wal reset\n";
}

}  // namespace qf
