// The query-flocks processor: a small command interpreter around the
// library, in the spirit of §1's "general-purpose mining system" whose
// mining queries "can be issued quickly to whatever data is appropriate".
//
// Statements (terminated by ';'; '#' comments):
//
//   LOAD <rel> FROM <path.tsv>;
//   LOAD <rel> APPEND FROM <path.tsv>;      # delta batch (epoch bump)
//   SAVE <rel> TO <path.tsv>;
//   GEN BASKETS <rel> [key=value ...];      # synthetic data, keys below
//   DEFINE <rule>;                          # intermediate predicate
//   FLOCK <name> QUERY <rules> FILTER <AGG>[(<HeadVar>)] <op> <number>;
//   EXPLAIN <name>;                         # chosen plan + estimates
//   EXPLAIN ANALYZE <name> [mode ...];      # execute + metrics tree
//   RUN <name> [DIRECT|PLAN|DYNAMIC] [LIMIT <n>] [THREADS <n>];
//   SQL <name>;
//   THREADS <n>;                            # default worker count for RUN
//   SET TIMEOUT <ms>; | SET MEMORY <mb>;    # resource limits (0 = off)
//   SET BUFFER <mb>;                        # page-cache capacity (OPEN)
//   SET INCREMENTAL ON|OFF;                 # cache flock state across RUNs
//   SET OPTIMIZER LEARNED|STATIC;           # bandit plan selection for RUN
//   SET DYNAMIC <knob> <v>;                 # §4.4 knobs (AGGRESSIVENESS |
//                                           #   IMPROVEMENT | MINREMOVED)
//   SHOW OPTIMIZER STATE;                   # mode, knobs, outcome history
//   SHOW FLOCK STATE [<name>];              # inspect incremental state
//   TRACE ON; | TRACE OFF; | TRACE TO <path>;  # span events (JSON lines)
//   MAXIMAL <rel> SUPPORT <n> [MAXSIZE <k>];   # flock-sequence mining
//   SHOW RELATIONS; | SHOW FLOCKS; | SHOW TRACE; | SHOW <rel>;
//   OPEN <dir>;                             # durable catalog (WAL+snapshot)
//   CHECKPOINT;                             # snapshot catalog, reset WAL
//   HELP;
//
// GEN BASKETS keys: n_baskets n_items avg_size theta locality topics seed.
//
// With a catalog open (OPEN <dir>), every mutating statement — LOAD,
// LOADDB, GEN, DEFINE, FLOCK, THREADS, SET TIMEOUT/MEMORY — is written to
// the catalog's WAL and fsynced *before* it is acknowledged, so the
// session state survives crashes; OPEN replays it back (storage/catalog.h
// has the recovery contract). After a commit-path I/O error the catalog
// is read-only and mutating statements return the latched IO_ERROR.
//
// The shell is an ordinary library class (tools/qfshell.cc wraps it in a
// REPL); Execute returns the printable output, so tests drive it
// directly.
#ifndef QF_SHELL_SHELL_H_
#define QF_SHELL_SHELL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/resource.h"
#include "common/status.h"
#include "common/vfs.h"
#include "datalog/program.h"
#include "flocks/flock.h"
#include "flocks/incremental_eval.h"
#include "optimizer/bandit.h"
#include "optimizer/cost_model.h"
#include "optimizer/history.h"
#include "relational/database.h"
#include "relational/spill.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace qf {

class Shell {
 public:
  Shell() = default;

  // Executes one statement (no trailing ';' required) and returns its
  // output text. Errors come back as non-OK statuses; the shell object
  // stays usable.
  Result<std::string> Execute(std::string_view statement);

  // Splits `script` into statements on ';' (quote-aware, via
  // SplitStatements in shell/statement.h) and executes them in order,
  // concatenating output. Stops at the first error.
  Result<std::string> ExecuteScript(std::string_view script);

  // Seeds the session's in-memory database from `base` without copying
  // relation payloads (Database shares relations copy-on-write). The
  // server's session manager uses this to give every client its own
  // catalog view over one shared read-mostly database; later mutations
  // replace only this session's pointers. Call before OPEN — an open
  // catalog supersedes the in-memory database.
  void SeedDatabase(const Database& base);

  // The session's relations: the open catalog's durable state, or the
  // in-memory database when no catalog is open.
  const Database& database() const { return db(); }
  const Program& program() const { return program_; }
  // Non-null while a catalog is open (OPEN <dir>); tests inspect recovery
  // info and storage stats through it.
  const Catalog* catalog() const { return catalog_.get(); }
  // File system used by OPEN/CHECKPOINT (tests point this at a MemVfs or
  // FaultVfs; null means the process-wide PosixVfs). Set before OPEN.
  void set_vfs(Vfs* vfs) { vfs_ = vfs; }
  bool HasFlock(const std::string& name) const {
    return flocks_.contains(name);
  }
  // Default worker count RUN statements use (set by `THREADS <n>;`,
  // overridable per statement with `RUN ... THREADS <n>`). Results are
  // identical for every value; see DESIGN.md, "Threading model".
  unsigned default_threads() const { return default_threads_; }

  // True while a trace sink is installed (TRACE ON or TRACE TO <path>).
  bool tracing() const { return trace_sink_ != nullptr; }

  // True while `SET INCREMENTAL ON` is in effect: RUN serves flocks from
  // cached incremental state when it can (falling back to the ordinary
  // evaluation otherwise — results are identical either way).
  bool incremental_on() const { return incremental_on_; }

  // True while `SET OPTIMIZER LEARNED` is in effect: RUN (without an
  // explicit mode word) lets the contextual bandit pick the execution
  // strategy from the outcome history. Every arm is a legality-checked
  // strategy, so results are bit-identical to static mode.
  bool learned_optimizer() const { return learned_optimizer_; }
  // The learned optimizer's outcome history: the open catalog's durable,
  // WAL-logged store, or the session-local one before OPEN.
  const OutcomeHistory& optimizer_history() const {
    return catalog_ != nullptr ? catalog_->state().bandit : local_history_;
  }
  // The session's §4.4 knobs (`SET DYNAMIC <knob> <v>`), applied to every
  // DYNAMIC run and carried by the bandit's "dyn:session" arm.
  const DynamicKnobs& dynamic_knobs() const { return dynamic_knobs_; }
  // The session's incremental evaluator (tests inspect cached state and
  // decision counters through it).
  const IncrementalEvaluator& incremental() const { return incremental_; }

  // Resource limits applied to every governed statement (RUN, EXPLAIN
  // ANALYZE, MAXIMAL), set by `SET TIMEOUT <ms>;` / `SET MEMORY <mb>;`.
  // 0 means no limit.
  std::int64_t timeout_ms() const { return timeout_ms_; }
  std::uint64_t memory_budget_bytes() const { return memory_bytes_; }

  // Buffer pool capacity for paged catalog relations (`SET BUFFER <mb>;`).
  std::uint64_t buffer_capacity_bytes() const { return buffer_bytes_; }
  // The session's page cache (created at OPEN); null before then. Tests
  // and the server's STATS command read hit/miss/eviction counters here.
  const BufferPool* buffer_pool() const { return buffer_pool_.get(); }
  // The session's spill environment: non-null while a catalog is open
  // (spill files live under <dir>/spill, where OPEN sweeps orphans).
  // Governed statements spill to it instead of aborting when the memory
  // budget nears exhaustion; without a catalog the pre-spill hard-abort
  // behavior is kept.
  const SpillEnv* spill_env() const { return spill_env_.get(); }

  // External cancellation flag (e.g. the REPL's SIGINT flag) watched by
  // every governed statement. The pointee must outlive the shell; the
  // caller clears it between statements.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }

 private:
  Result<std::string> Load(std::string_view args);
  Result<std::string> Save(std::string_view args);
  Result<std::string> Open(std::string_view args);
  Result<std::string> Checkpoint();
  Result<std::string> Gen(std::string_view args);
  Result<std::string> Define(std::string_view args);
  Result<std::string> DeclareFlock(std::string_view args);
  Result<std::string> Explain(std::string_view args);
  Result<std::string> ExplainAnalyze(std::string_view args);
  Result<std::string> Run(std::string_view args);
  Result<std::string> Sql(std::string_view args);
  Result<std::string> Show(std::string_view args);
  Result<std::string> Maximal(std::string_view args);
  Result<std::string> Trace(std::string_view args);

  // Evaluates flock `name` in `mode` ("DIRECT"|"PLAN"|"REDUCED"|"DYNAMIC"),
  // optionally collecting metrics under `metrics` (spans go to the
  // installed trace sink). `dynamic_trace`, when non-null, receives the
  // Fig. 9-style decision log of DYNAMIC runs.
  Result<Relation> Evaluate(const std::string& mode, const QueryFlock& flock,
                            unsigned threads, OpMetrics* metrics,
                            std::string* dynamic_trace, QueryContext* ctx);

  // What the bandit decided for one learned run (EXPLAIN ANALYZE renders
  // it; RUN shows the arm id in its mode string).
  struct LearnedRunInfo {
    std::string arm_id;
    std::uint64_t context = 0;
    std::string context_desc;
    bool exploring = false;
    std::string posterior;  // per-arm stats lines at decision time
  };
  // SET OPTIMIZER LEARNED evaluation path: enumerate arms, let the bandit
  // choose, execute the chosen strategy, then record the outcome (to the
  // catalog's WAL when one is open). Results are bit-identical to
  // Evaluate for every arm.
  Result<Relation> EvaluateLearned(const QueryFlock& flock, unsigned threads,
                                   OpMetrics* metrics,
                                   std::string* dynamic_trace,
                                   QueryContext* ctx, LearnedRunInfo* info);
  // Folds one learned-run outcome into the history: the catalog's durable
  // store when open (skipped while latched read-only), the session-local
  // store otherwise.
  Status RecordOutcome(const BanditOutcome& outcome);

  // The session cost model, cached across statements and rebuilt when the
  // database generation or the materialized view set changes — statistics
  // are never stale after LOAD ... APPEND (optimizer/stats.h contract).
  Result<const CostModel*> Model();

  // Builds the governor for one statement from the session limits and the
  // installed cancellation flag.
  void ConfigureContext(QueryContext& ctx) const;

  // Materializes program views (cached until the program changes).
  Result<const std::map<std::string, Relation>*> Views();

  const Database& db() const {
    return catalog_ != nullptr ? catalog_->state().db : db_;
  }
  Vfs& vfs() const { return vfs_ != nullptr ? *vfs_ : DefaultVfs(); }
  // Stores relations, through the catalog's WAL (one commit, one fsync,
  // all-or-nothing) when one is open. On failure nothing is applied.
  // `append` marks the batch as LOAD ... APPEND lineage: replace severs
  // each relation's incremental append chain, append leaves it to the
  // caller to link old -> new handles.
  Status PersistRelations(std::vector<Relation> rels, QueryContext* ctx,
                          bool append = false);
  // Persists a session knob ("THREADS"...) when a catalog is open.
  Status PersistKnob(const std::string& key, std::int64_t value);

  Database db_;  // session relations when no catalog is open
  Program program_;
  // Per-session incremental evaluation (SET INCREMENTAL ON). The state
  // and append chains are session-local: server sessions sharing one base
  // database each maintain their own, so COW isolation is preserved.
  IncrementalEvaluator incremental_;
  bool incremental_on_ = false;
  std::map<std::string, QueryFlock> flocks_;
  std::map<std::string, Relation> views_;
  bool views_dirty_ = false;
  // Bumped whenever Views() rebuilds, so the cached cost model can tell a
  // stale view snapshot from a fresh one.
  std::uint64_t views_version_ = 0;
  // Cached cost model (see Model()); invalid until first use and after
  // OPEN / SeedDatabase swap the database out from under the generation
  // counter.
  std::optional<CostModel> cached_model_;
  std::uint64_t cached_model_generation_ = 0;
  std::uint64_t cached_model_views_version_ = 0;
  bool learned_optimizer_ = false;
  DynamicKnobs dynamic_knobs_;
  // Outcome history before a catalog is open (superseded by the catalog's
  // durable store after OPEN; see optimizer_history()).
  OutcomeHistory local_history_;
  unsigned default_threads_ = 1;
  std::int64_t timeout_ms_ = 0;      // 0 = no deadline
  std::uint64_t memory_bytes_ = 0;   // 0 = no budget
  const std::atomic<bool>* cancel_flag_ = nullptr;
  Vfs* vfs_ = nullptr;  // null = DefaultVfs()
  std::uint64_t buffer_bytes_ = 64ull * 1024 * 1024;  // SET BUFFER (default 64 MB)
  // Page cache shared by every paged relation the catalog opens or
  // checkpoints; created on OPEN so it can be handed to Catalog::Open.
  std::unique_ptr<BufferPool> buffer_pool_;
  // Spill grant for governed statements; alive while a catalog is open.
  // unique_ptr because SpillEnv holds atomics (not movable) and governed
  // QueryContexts keep a raw pointer to it for the statement's duration.
  std::unique_ptr<SpillEnv> spill_env_;
  std::unique_ptr<Catalog> catalog_;
  // Installed trace sink (TRACE ON/TO); the typed aliases identify which
  // kind is active (memory_trace_ backs SHOW TRACE).
  std::unique_ptr<TraceSink> trace_sink_;
  MemoryTraceSink* memory_trace_ = nullptr;
  JsonLinesTraceSink* file_trace_ = nullptr;
  std::string trace_path_;
};

}  // namespace qf

#endif  // QF_SHELL_SHELL_H_
