#include "shell/statement.h"

#include "common/string_util.h"

namespace qf {

std::vector<std::string> SplitStatements(std::string_view script) {
  // Strip comments (quote-aware), then split on ';' outside quotes.
  std::string cleaned;
  cleaned.reserve(script.size());
  {
    bool in_quote = false;
    char quote = '\0';
    for (std::size_t i = 0; i < script.size(); ++i) {
      char c = script[i];
      if (c == '\'' || c == '"') {
        if (!in_quote) {
          in_quote = true;
          quote = c;
        } else if (c == quote) {
          in_quote = false;
        }
      }
      if (c == '#' && !in_quote) {
        while (i < script.size() && script[i] != '\n') ++i;
        cleaned += '\n';
        continue;
      }
      cleaned += c;
    }
  }

  std::vector<std::string> statements;
  std::size_t start = 0;
  bool in_quote = false;
  char quote = '\0';
  for (std::size_t i = 0; i <= cleaned.size(); ++i) {
    bool at_end = i == cleaned.size();
    char c = at_end ? ';' : cleaned[i];
    if (!at_end && (c == '\'' || c == '"')) {
      if (!in_quote) {
        in_quote = true;
        quote = c;
      } else if (c == quote) {
        in_quote = false;
      }
    }
    if (c == ';' && !in_quote) {
      std::string_view statement =
          std::string_view(cleaned).substr(start, i - start);
      start = i + 1;
      statement = StripWhitespace(statement);
      if (statement.empty()) continue;
      statements.emplace_back(statement);
    }
  }
  return statements;
}

StatementOutcome ExecuteStatement(Shell& shell, std::string_view statement) {
  Result<std::string> result = shell.Execute(statement);
  if (!result.ok()) return {result.status(), ""};
  return {Status::Ok(), *std::move(result)};
}

}  // namespace qf
