// Per-flock incremental evaluation state (ROADMAP item 2; DESIGN.md §13).
//
// A RUN today recomputes flock support from scratch. But the flock
// pipeline's expensive product — the deduplicated answer relation and its
// per-parameter-assignment aggregates — is a pure monotone function of
// the base relations, so under append-only deltas it can be *maintained*:
// new answers are exactly the CQ derivations that use at least one delta
// tuple, and absorbing them into the cached answer set updates every
// group aggregate without rescanning history.
//
// IncrementalFlockState is that cache: the answer set (flat-hash deduped,
// first-occurrence order — the same set the direct evaluator unions), a
// group table keyed on the parameter columns with one scalar accumulator
// per group (mirroring relational/ops.cc GroupAggregate exactly), and an
// FP-Stream-style tilted-time-window ring per *frequent* group recording
// how many answers each delta batch contributed — the "frequent in the
// last N batches" history, kept only for groups on the a-priori frontier
// (groups passing the filter the state was built with).
//
// The state is pure bookkeeping; deciding when it is valid and feeding it
// delta bindings is flocks/incremental_eval.h. Exactness contract: a
// Serve() after any sequence of AbsorbAnswer/SealBatch calls is
// bit-identical to the direct evaluator over the full current data —
// which is why the answer set and the accumulators are kept for *all*
// groups, not just frequent ones (a sub-threshold group must be able to
// cross the threshold later; dedup needs the full set). Only the ring
// history is frontier-pruned.
#ifndef QF_MINING_INCREMENTAL_H_
#define QF_MINING_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "flocks/flock.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace qf {

// FP-Stream's logarithmic tilted-time window (Giang, Han et al.; the
// wpoanalytics TiltedTimeWindow is the reference implementation): a ring
// of per-batch counts where level L holds up to `level_capacity` entries
// each spanning 2^L batches. Add() pushes the newest batch at level 0;
// when a level overflows, its two *oldest* entries merge into one
// double-span entry that becomes the *newest* entry of the next level.
// Total memory is O(level_capacity * log2(batches)) while the exact total
// count is preserved (merging only ever adds counts, never drops them).
//
// The price of the compression is resolution, not loss: CountLastN(n)
// walks entries newest-to-oldest and must take the one entry straddling
// the n-batch horizon whole. It reports that entry's count as `slack` —
// the documented approximation bound: the true last-n count lies in
// [count - slack, count]. Queries aligned to span boundaries (and n >=
// batches()) are exact with slack 0.
class TiltedTimeWindow {
 public:
  // `level_capacity` >= 2 (two entries are needed to merge).
  explicit TiltedTimeWindow(std::size_t level_capacity = 4);

  // Absorbs the newest batch's count (0 is a real batch: every tracked
  // window must see every batch for last-n horizons to line up).
  void Add(std::uint64_t count);

  // Batches absorbed since construction.
  std::uint64_t batches() const { return batches_; }
  // Exact sum over all absorbed batches (merges preserve totals).
  std::uint64_t total() const { return total_; }
  // Ring slots currently in use (O(capacity * log batches)).
  std::size_t entries() const;
  std::size_t level_count() const { return levels_.size(); }

  struct LastN {
    std::uint64_t count = 0;  // upper bound on the true last-n count
    std::uint64_t slack = 0;  // true count >= count - slack
  };
  // Count over the most recent `n` batches, with its approximation bound.
  LastN CountLastN(std::uint64_t n) const;

  std::uint64_t ApproxBytes() const;

  // "total=T batches=B levels=[c0,c1,...]" for SHOW FLOCK STATE.
  std::string ToString() const;

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t span = 0;  // batches covered: 2^level
  };
  // levels_[L] holds entries of span 2^L, oldest first, newest at back.
  std::vector<std::vector<Entry>> levels_;
  std::size_t level_capacity_;
  std::uint64_t batches_ = 0;
  std::uint64_t total_ = 0;
};

// The cached evaluation state of one flock. Lifecycle:
//
//   IncrementalFlockState state(flock);        // fixes query + filter
//   for (row : full answer rows)  state.AbsorbAnswer(row);
//   state.SealBatch();                          // batch 0 = initial build
//   ... per delta run: AbsorbAnswer(delta rows); SealBatch(); ...
//   Relation r = state.Serve(filter);           // bit-identical result
//
// Absorb order only affects float-SUM association; the state therefore
// tracks sum_exact(): it stays true while every summed value is integral
// (exactly representable, associativity-free). incremental_eval refuses
// to build or keep state once a non-integral sum value appears.
class IncrementalFlockState {
 public:
  IncrementalFlockState(std::string flock_name, const QueryFlock& flock,
                        std::size_t window_capacity = 4);

  const std::string& flock_name() const { return flock_name_; }
  const UnionQuery& query() const { return query_; }
  // The filter the state was built (and its rings tracked) with.
  const FilterCondition& built_filter() const { return built_filter_; }

  // How the current declaration of the flock relates to the cached state:
  //   kSame        — identical query + filter: serve directly.
  //   kTightened   — same shape, threshold moved toward *fewer* survivors
  //                  (support increase): the frontier contract still
  //                  holds, serve by re-filtering the group table.
  //   kIncompatible— query changed, aggregate/comparison changed, or the
  //                  threshold loosened (support decrease): ring history
  //                  is missing for newly admitted groups — rebuild.
  enum class Compat { kSame, kTightened, kIncompatible };
  Compat CompatibilityWith(const QueryFlock& flock) const;

  // Adds one answer row (parameter columns then canonical head columns,
  // the direct evaluator's answer schema). Returns true when the row was
  // new; duplicates are absorbed without effect (set semantics).
  bool AbsorbAnswer(const Tuple& row);

  // Seals the rows absorbed since the last Seal as one delta batch:
  // every tracked ring absorbs its pending per-batch count (0 included),
  // and groups newly passing the built filter start their ring here.
  void SealBatch();

  // The flock result under `filter`: parameters of passing groups,
  // canonically sorted, named "flock_result" — bit-identical to the
  // direct evaluator over the same data (see the class comment).
  Relation Serve(const FilterCondition& filter) const;

  // Lineage marks: the relation handles (and row counts) this state's
  // answers were computed from, recorded by incremental_eval after every
  // build/update. `negated` marks predicates under NOT — any change to
  // those is non-monotone and forces a rebuild.
  struct RelationMark {
    std::string name;
    std::shared_ptr<const Relation> handle;
    std::size_t rows = 0;
    bool negated = false;
  };
  std::vector<RelationMark>& marks() { return marks_; }
  const std::vector<RelationMark>& marks() const { return marks_; }

  // Database::generation() observed at the last build/update — the cheap
  // all-pointers-unchanged probe.
  std::uint64_t last_generation() const { return last_generation_; }
  void set_last_generation(std::uint64_t g) { last_generation_ = g; }

  std::size_t answer_rows() const { return answers_.size(); }
  std::size_t group_count() const { return aggs_.size(); }
  std::size_t tracked_rings() const { return rings_.size(); }
  std::uint64_t batches() const { return batch_count_; }
  bool sum_exact() const { return sum_exact_; }
  std::size_t param_count() const { return n_params_; }

  // Cumulative decision counters (SHOW FLOCK STATE).
  std::uint64_t full_builds = 0;
  std::uint64_t delta_batches = 0;
  std::uint64_t served_cached = 0;

  // Approximate heap bytes of the cached state (answer rows via
  // ApproxTupleBytes plus tables and rings) — what the evaluator holds
  // against the session memory budget.
  std::uint64_t ApproxBytes() const;

  // Multi-line description for SHOW FLOCK STATE.
  std::string Describe() const;

  // The tilted-time ring of the group whose parameter tuple is `params`,
  // or nullptr when the group is untracked (tests and SHOW introspection).
  const TiltedTimeWindow* RingFor(const Tuple& params) const;

 private:
  std::uint32_t GroupOf(const Tuple& row, bool* inserted);
  Value GroupValue(std::uint32_t gid) const;

  std::string flock_name_;
  UnionQuery query_;
  FilterCondition built_filter_;
  std::vector<std::string> param_columns_;  // "$"-tagged, sorted
  std::size_t n_params_ = 0;
  AggKind agg_kind_ = AggKind::kCount;
  std::size_t agg_idx_ = 0;  // answer-row column the aggregate reads
  std::size_t window_capacity_ = 4;

  Relation answers_;          // params + canonical heads, absorb order
  FlatTupleSet answer_set_;   // refs into answers_ (whole-row identity)
  FlatGroupTable groups_;     // key = first n_params_ columns
  std::vector<std::size_t> param_idx_;  // 0..n_params_-1 (KeyCols storage)

  // Per group (dense id order): the scalar accumulator, the pending
  // current-batch contribution, and the ring slot (-1 = untracked).
  struct GroupAgg {
    std::int64_t count = 0;
    double sum = 0;
    bool has_extreme = false;
    Value extreme;
  };
  std::vector<GroupAgg> aggs_;
  std::vector<std::uint64_t> pending_;
  std::vector<std::int32_t> ring_of_;
  std::vector<TiltedTimeWindow> rings_;

  std::vector<RelationMark> marks_;
  std::uint64_t last_generation_ = 0;
  std::uint64_t batch_count_ = 0;
  bool sum_exact_ = true;
  std::uint64_t probes_ = 0;  // flat-hash slot inspections (diagnostics)
};

}  // namespace qf

#endif  // QF_MINING_INCREMENTAL_H_
