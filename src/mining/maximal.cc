#include "mining/maximal.h"

#include <map>
#include <set>
#include <unordered_set>

#include "flocks/eval.h"
#include "optimizer/executor_support.h"
#include "optimizer/itemset_plans.h"
#include "plan/executor.h"

namespace qf {

Result<MaximalItemsetsResult> MaximalFrequentItemsets(
    const Database& db, const std::string& relation,
    const MaximalItemsetsOptions& options) {
  if (!db.Has(relation)) {
    return NotFoundError("unknown relation: " + relation);
  }
  if (db.Get(relation).arity() != 2) {
    return InvalidArgumentError(
        "itemset mining needs a binary (basket, item) relation");
  }

  MaximalItemsetsResult result;
  // Frequent itemsets per level, still candidates for being maximal.
  std::vector<std::unordered_set<Tuple, TupleHash>> candidates;

  // Level 1: the frequent-items flock.
  Result<QueryFlock> flock1 =
      MakeFlock("answer(B) :- " + relation + "(B,$1)",
                FilterCondition::MinSupport(options.min_support));
  if (!flock1.ok()) return flock1.status();
  FlockEvalOptions eval_options;
  eval_options.ctx = options.ctx;
  Result<Relation> freq = EvaluateFlock(*flock1, db, eval_options);
  if (!freq.ok()) return freq.status();
  result.levels = 1;
  result.frequent_per_level.push_back(freq->size());
  candidates.emplace_back(freq->rows().begin(), freq->rows().end());

  Relation previous = std::move(*freq);  // columns $1..$k-1, ascending
  std::size_t k = 2;
  while (!previous.empty() &&
         (options.max_size == 0 || k <= options.max_size)) {
    Result<QueryFlock> flock =
        MakeItemsetFlock(relation, k, options.min_support);
    if (!flock.ok()) return flock.status();
    Result<QueryPlan> plan = ItemsetAprioriPlan(*flock, k, k - 1);
    if (!plan.ok()) return plan.status();

    // Each (k-1)-subset prefilter step's answer *is* the previous level's
    // flock answer (same ascending-tuple content; references bind
    // positionally), so hand it over instead of re-evaluating.
    std::map<std::string, const Relation*> precomputed;
    for (std::size_t i = 0; i + 1 < plan->steps.size(); ++i) {
      precomputed[plan->steps[i].result_name] = &previous;
    }
    PlanExecOptions exec_options;
    exec_options.order_chooser = CostBasedOrderChooser();
    exec_options.precomputed_steps = &precomputed;
    exec_options.ctx = options.ctx;
    Result<Relation> level = ExecutePlan(*plan, *flock, db, exec_options);
    if (!level.ok()) return level.status();

    result.levels = k;
    result.frequent_per_level.push_back(level->size());
    if (level->empty()) break;

    // A frequent k-set disqualifies each of its (k-1)-subsets.
    candidates.emplace_back(level->rows().begin(), level->rows().end());
    for (const Tuple& t : level->rows()) {
      for (std::size_t drop = 0; drop < t.size(); ++drop) {
        Tuple subset;
        subset.reserve(t.size() - 1);
        for (std::size_t i = 0; i < t.size(); ++i) {
          if (i != drop) subset.push_back(t[i]);
        }
        candidates[k - 2].erase(subset);
      }
    }
    previous = std::move(*level);
    ++k;
  }

  for (const auto& level : candidates) {
    for (const Tuple& t : level) result.maximal.push_back(t);
  }
  std::sort(result.maximal.begin(), result.maximal.end(),
            [](const Tuple& a, const Tuple& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  return result;
}

}  // namespace qf
