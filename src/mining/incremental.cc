#include "mining/incremental.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/resource.h"
#include "flocks/eval.h"

namespace qf {

// --- TiltedTimeWindow ---

TiltedTimeWindow::TiltedTimeWindow(std::size_t level_capacity)
    : level_capacity_(level_capacity < 2 ? 2 : level_capacity) {}

void TiltedTimeWindow::Add(std::uint64_t count) {
  ++batches_;
  total_ += count;
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(Entry{count, 1});
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() <= level_capacity_) break;
    // The two oldest same-span entries coalesce into one double-span
    // entry, which is the *newest* entry of the next level (entries at
    // level l+1 were promoted earlier, so they cover older batches).
    Entry merged{levels_[l][0].count + levels_[l][1].count,
                 levels_[l][0].span * 2};
    levels_[l].erase(levels_[l].begin(), levels_[l].begin() + 2);
    if (l + 1 == levels_.size()) levels_.emplace_back();
    levels_[l + 1].push_back(merged);
  }
}

std::size_t TiltedTimeWindow::entries() const {
  std::size_t n = 0;
  for (const std::vector<Entry>& level : levels_) n += level.size();
  return n;
}

TiltedTimeWindow::LastN TiltedTimeWindow::CountLastN(std::uint64_t n) const {
  if (n == 0) return LastN{0, 0};
  if (n >= batches_) return LastN{total_, 0};
  LastN out;
  std::uint64_t covered = 0;
  // Newest to oldest: within a level the newest entry is at the back,
  // and deeper levels hold strictly older batches.
  for (const std::vector<Entry>& level : levels_) {
    for (std::size_t i = level.size(); i-- > 0;) {
      const Entry& e = level[i];
      if (covered >= n) return out;
      out.count += e.count;
      if (covered + e.span > n) {
        // This entry straddles the n-batch horizon and is taken whole:
        // at most e.count of it belongs past the horizon.
        out.slack = e.count;
        return out;
      }
      covered += e.span;
    }
  }
  return out;
}

std::uint64_t TiltedTimeWindow::ApproxBytes() const {
  return sizeof(TiltedTimeWindow) + levels_.size() * sizeof(levels_[0]) +
         entries() * sizeof(Entry);
}

std::string TiltedTimeWindow::ToString() const {
  std::string out = "total=" + std::to_string(total_) +
                    " batches=" + std::to_string(batches_) + " levels=[";
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (l > 0) out += ",";
    out += std::to_string(levels_[l].size());
  }
  out += "]";
  return out;
}

// --- IncrementalFlockState ---

IncrementalFlockState::IncrementalFlockState(std::string flock_name,
                                             const QueryFlock& flock,
                                             std::size_t window_capacity)
    : flock_name_(std::move(flock_name)),
      query_(flock.query),
      built_filter_(flock.filter),
      param_columns_(FlockParameterColumns(flock)),
      n_params_(param_columns_.size()),
      window_capacity_(window_capacity) {
  switch (flock.filter.agg) {
    case FilterAgg::kCount: agg_kind_ = AggKind::kCount; break;
    case FilterAgg::kSum: agg_kind_ = AggKind::kSum; break;
    case FilterAgg::kMin: agg_kind_ = AggKind::kMin; break;
    case FilterAgg::kMax: agg_kind_ = AggKind::kMax; break;
  }
  std::vector<std::string> answer_columns = param_columns_;
  for (std::size_t i = 0; i < flock.query.head_arity(); ++i) {
    answer_columns.push_back("_h" + std::to_string(i));
  }
  agg_idx_ = flock.filter.agg == FilterAgg::kCount
                 ? 0
                 : n_params_ + flock.filter.agg_head_index;
  answers_ = Relation(Schema(answer_columns));
  for (std::size_t i = 0; i < n_params_; ++i) param_idx_.push_back(i);
}

IncrementalFlockState::Compat IncrementalFlockState::CompatibilityWith(
    const QueryFlock& flock) const {
  if (!(query_ == flock.query)) return Compat::kIncompatible;
  const FilterCondition& f = flock.filter;
  if (f == built_filter_) return Compat::kSame;
  if (f.agg != built_filter_.agg || f.cmp != built_filter_.cmp) {
    return Compat::kIncompatible;
  }
  if (f.agg != FilterAgg::kCount &&
      f.agg_head_index != built_filter_.agg_head_index) {
    return Compat::kIncompatible;
  }
  // Only the threshold differs. Tightening (toward fewer survivors)
  // preserves the a-priori frontier contract; loosening admits groups
  // whose ring history was never tracked.
  switch (f.cmp) {
    case CompareOp::kGe:
    case CompareOp::kGt:
      return f.threshold >= built_filter_.threshold ? Compat::kTightened
                                                    : Compat::kIncompatible;
    case CompareOp::kLe:
    case CompareOp::kLt:
      return f.threshold <= built_filter_.threshold ? Compat::kTightened
                                                    : Compat::kIncompatible;
    default:
      return Compat::kIncompatible;
  }
}

bool IncrementalFlockState::AbsorbAnswer(const Tuple& row) {
  QF_CHECK_MSG(row.size() == answers_.arity(),
               "answer row arity mismatch in incremental state");
  TupleHash hash;
  std::uint32_t ref = static_cast<std::uint32_t>(answers_.size());
  bool fresh = answer_set_.Insert(
      ref, hash(row),
      [&](std::uint32_t prev) { return answers_.rows()[prev] == row; },
      probes_);
  if (!fresh) return false;
  answers_.Add(row);

  KeyCols key(param_idx_, row.size());
  auto [gid, inserted] = groups_.Upsert(
      ref, key.Hash(row),
      [&](std::uint32_t rep) { return key.Eq(answers_.rows()[rep], row); },
      probes_);
  if (inserted) {
    aggs_.emplace_back();
    pending_.push_back(0);
    ring_of_.push_back(-1);
  }
  GroupAgg& acc = aggs_[gid];
  // The count is maintained for every aggregate kind: it is the COUNT
  // aggregate itself, and the per-batch ring contribution for the rest.
  acc.count += 1;
  switch (agg_kind_) {
    case AggKind::kCount:
      break;
    case AggKind::kSum: {
      QF_CHECK_MSG(row[agg_idx_].IsNumeric(), "SUM over non-numeric value");
      double v = row[agg_idx_].AsNumber();
      acc.sum += v;
      // Integral doubles below 2^53 add exactly in any association — the
      // condition under which incremental sums are bit-identical to a
      // from-scratch GroupAggregate at every thread count.
      if (std::nearbyint(v) != v || std::abs(v) > 9007199254740992.0) {
        sum_exact_ = false;
      }
      break;
    }
    case AggKind::kMin:
      if (!acc.has_extreme || row[agg_idx_] < acc.extreme) {
        acc.extreme = row[agg_idx_];
        acc.has_extreme = true;
      }
      break;
    case AggKind::kMax:
      if (!acc.has_extreme || acc.extreme < row[agg_idx_]) {
        acc.extreme = row[agg_idx_];
        acc.has_extreme = true;
      }
      break;
  }
  ++pending_[gid];
  return true;
}

Value IncrementalFlockState::GroupValue(std::uint32_t gid) const {
  const GroupAgg& acc = aggs_[gid];
  switch (agg_kind_) {
    case AggKind::kCount: return Value(acc.count);
    case AggKind::kSum: return Value(acc.sum);
    case AggKind::kMin:
    case AggKind::kMax: return acc.extreme;
  }
  return Value(acc.count);
}

void IncrementalFlockState::SealBatch() {
  ++batch_count_;
  // Every tracked ring sees every batch (0 contributions included), so
  // last-n horizons line up across groups.
  for (std::size_t gid = 0; gid < aggs_.size(); ++gid) {
    if (ring_of_[gid] >= 0) {
      rings_[static_cast<std::size_t>(ring_of_[gid])].Add(pending_[gid]);
    }
  }
  // Groups newly crossing the built filter start their ring here, seeded
  // with their cumulative count: their per-batch history before tracking
  // was never recorded (the frontier contract — this is why loosening
  // the threshold forces a rebuild).
  for (std::size_t gid = 0; gid < aggs_.size(); ++gid) {
    if (ring_of_[gid] < 0 &&
        built_filter_.Accepts(GroupValue(static_cast<std::uint32_t>(gid)))) {
      ring_of_[gid] = static_cast<std::int32_t>(rings_.size());
      rings_.emplace_back(window_capacity_);
      rings_.back().Add(static_cast<std::uint64_t>(aggs_[gid].count));
    }
  }
  for (std::uint64_t& p : pending_) p = 0;
}

Relation IncrementalFlockState::Serve(const FilterCondition& filter) const {
  Relation out{Schema(param_columns_)};
  for (std::size_t gid = 0; gid < aggs_.size(); ++gid) {
    if (!filter.Accepts(GroupValue(static_cast<std::uint32_t>(gid)))) {
      continue;
    }
    const Tuple& rep =
        answers_.rows()[groups_.ref_at(static_cast<std::uint32_t>(gid))];
    out.Add(Tuple(rep.begin(), rep.begin() + static_cast<std::ptrdiff_t>(
                                                 n_params_)));
  }
  out.SortRows();
  out.set_name("flock_result");
  return out;
}

const TiltedTimeWindow* IncrementalFlockState::RingFor(
    const Tuple& params) const {
  if (params.size() != n_params_) return nullptr;
  KeyCols probe(param_idx_, params.size());
  KeyCols stored(param_idx_, answers_.arity());
  std::uint64_t probes = 0;
  std::uint32_t gid = groups_.Find(
      probe.Hash(params),
      [&](std::uint32_t rep) {
        return probe.EqAcross(params, stored, answers_.rows()[rep]);
      },
      probes);
  if (gid == FlatIdTable::kNone) return nullptr;
  std::int32_t r = ring_of_[gid];
  return r >= 0 ? &rings_[static_cast<std::size_t>(r)] : nullptr;
}

std::uint64_t IncrementalFlockState::ApproxBytes() const {
  std::uint64_t bytes =
      static_cast<std::uint64_t>(answers_.size()) *
      ApproxTupleBytes(answers_.arity());
  // Flat tables: ~24 bytes per element at 3/4 load (slot + dense arrays).
  bytes += static_cast<std::uint64_t>(answer_set_.size() + groups_.size()) * 24;
  bytes += aggs_.size() * (sizeof(GroupAgg) + sizeof(std::uint64_t) +
                           sizeof(std::int32_t));
  for (const TiltedTimeWindow& ring : rings_) bytes += ring.ApproxBytes();
  return bytes;
}

std::string IncrementalFlockState::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "flock %s: %zu answers, %zu groups, %zu tracked rings, "
                "%llu batches, ~%llu bytes\n",
                flock_name_.c_str(), answer_rows(), group_count(),
                tracked_rings(), static_cast<unsigned long long>(batches()),
                static_cast<unsigned long long>(ApproxBytes()));
  std::string out = buf;
  out += "  built filter: " +
         built_filter_.ToString(query_.head_name(),
                                query_.disjuncts.front().head_vars) +
         (sum_exact_ ? "" : " [sum-inexact]") + "\n";
  std::snprintf(buf, sizeof(buf),
                "  decisions: builds=%llu deltas=%llu cached=%llu\n",
                static_cast<unsigned long long>(full_builds),
                static_cast<unsigned long long>(delta_batches),
                static_cast<unsigned long long>(served_cached));
  out += buf;
  for (const RelationMark& mark : marks_) {
    out += "  base " + mark.name + ": " + std::to_string(mark.rows) +
           " rows" + (mark.negated ? " (negated)" : "") + "\n";
  }
  return out;
}

}  // namespace qf
