// Maximal frequent itemsets as a *sequence of query flocks* — the paper's
// §2.2 footnote: finding maximal frequent sets "would be expressed as a
// sequence of query flocks for increasing cardinalities, with each flock
// depending on the result of the previous flock."
//
// Level k runs the k-itemset flock (optimizer/itemset_plans.h) with its
// (k-1)-subset prefilter steps *materialized from the previous level's
// answer* rather than re-evaluated — the literal "depending on the result
// of the previous flock". A frequent k-set then marks each of its
// (k-1)-subsets non-maximal; what remains unmarked when the levels dry up
// is the maximal collection.
#ifndef QF_MINING_MAXIMAL_H_
#define QF_MINING_MAXIMAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "relational/database.h"
#include "relational/relation.h"

namespace qf {

struct MaximalItemsetsOptions {
  double min_support = 1;
  // Safety stop; 0 means run until a level is empty.
  std::size_t max_size = 0;
  // Resource governance (common/resource.h), threaded through every
  // level's flock evaluation.
  QueryContext* ctx = nullptr;
};

struct MaximalItemsetsResult {
  // Each maximal itemset as a sorted tuple of item values.
  std::vector<Tuple> maximal;
  // Frequent itemsets found per level (level k at index k-1).
  std::vector<std::size_t> frequent_per_level;
  // Levels actually evaluated.
  std::size_t levels = 0;
};

// Runs the flock sequence over `relation`(`bid_column`, `item_column`) in
// `db`. The relation's columns must be named "BID" and "Item"-style; only
// the two named columns are read.
Result<MaximalItemsetsResult> MaximalFrequentItemsets(
    const Database& db, const std::string& relation,
    const MaximalItemsetsOptions& options);

}  // namespace qf

#endif  // QF_MINING_MAXIMAL_H_
