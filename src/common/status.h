// Error handling without exceptions: Status for fallible operations with no
// payload, Result<T> for fallible operations producing a value.
//
// Usage:
//   qf::Result<int> ParsePort(std::string_view s);
//   auto port = ParsePort("8080");
//   if (!port.ok()) return port.status();
//   Use(port.value());
#ifndef QF_COMMON_STATUS_H_
#define QF_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace qf {

// Coarse error taxonomy; mirrors the subset of canonical codes the library
// actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // Resource-governor outcomes (see common/resource.h): the query was
  // cancelled cooperatively, overran its wall-clock deadline, or exceeded
  // its accounted-memory budget.
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
  // Storage outcomes (see common/vfs.h, storage/catalog.h): an operating-
  // system I/O failure (ENOSPC, EIO, ...) vs. on-disk bytes whose checksum
  // verified-false in a way recovery cannot repair by truncation (a
  // corrupt snapshot, or a well-checksummed WAL record that fails to
  // decode).
  kIoError,
  kCorruptWal,
  // Serving outcome (see network/server.h): the server's admission queue
  // or the client's statement quota is full and the statement was shed
  // rather than queued — retry later, nothing was executed or logged.
  kOverloaded,
};

// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// Value type describing the outcome of an operation. Cheap to copy when OK.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    QF_CHECK_MSG(code != StatusCode::kOk,
                 "use the default constructor for OK statuses");
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors, mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status IoError(std::string message);
Status CorruptWalError(std::string message);
Status OverloadedError(std::string message);

// Either a value of type T or a non-OK Status. Accessing the value of a
// failed Result aborts (QF_CHECK), so callers must test ok() first.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   return 42;                       // success
  //   return InvalidArgumentError(…);  // failure
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    QF_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    QF_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    QF_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    QF_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace qf

#endif  // QF_COMMON_STATUS_H_
