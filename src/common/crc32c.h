// CRC32C (Castagnoli, reflected polynomial 0x1EDC6A41 / 0x82F63B78):
// the checksum guarding every WAL record and snapshot of the durable
// catalog (storage/). Castagnoli rather than the zlib CRC32 because its
// error-detection properties for short records are better studied and it
// matches what LevelDB/RocksDB-style logs use, so on-disk artifacts are
// recognizable to standard tooling (tools/corrupt_wal.py recomputes it in
// pure Python).
//
// Software slicing-by-4 implementation — no SSE4.2 dependency, identical
// bytes on every platform. Throughput is ~1 GB/s, far above what the WAL
// ever sustains (records are fsync-bound).
#ifndef QF_COMMON_CRC32C_H_
#define QF_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace qf {

// Extends `crc` (the running checksum, 0 for a fresh one) over `data`.
// The returned value is the plain (unmasked) CRC32C.
std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data);

inline std::uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

// Masked form for values stored next to the bytes they checksum, after
// LevelDB: a CRC of data that *contains* CRCs degenerates (a record
// embedding its own checksum field checks trivially), so stored checksums
// are rotated and offset. Verifiers unmask before comparing.
inline std::uint32_t Crc32cMask(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline std::uint32_t Crc32cUnmask(std::uint32_t masked) {
  std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace qf

#endif  // QF_COMMON_CRC32C_H_
