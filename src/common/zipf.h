// Zipf-distributed sampling over ranks 0..n-1 with exponent theta.
// Used by the workload generators: the paper's word-occurrence and
// market-basket data are highly skewed, and the a-priori payoff depends on
// exactly that skew (a few frequent items, a long tail of rare ones).
#ifndef QF_COMMON_ZIPF_H_
#define QF_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace qf {

// Samples ranks from a Zipf(theta) distribution over {0, ..., n-1}:
// P(rank = k) proportional to 1 / (k+1)^theta. theta = 0 is uniform;
// larger theta is more skewed. Precomputes the CDF once (O(n)) and samples
// by binary search (O(log n)).
class ZipfSampler {
 public:
  // `n` must be positive; `theta` must be non-negative.
  ZipfSampler(std::uint32_t n, double theta);

  // Returns a rank in [0, n). Rank 0 is the most popular.
  std::uint32_t Sample(Rng& rng) const;

  std::uint32_t size() const { return n_; }
  double theta() const { return theta_; }

  // Probability mass of rank `k`.
  double Probability(std::uint32_t k) const;

 private:
  std::uint32_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace qf

#endif  // QF_COMMON_ZIPF_H_
