#include "common/flat_hash.h"

#include "common/check.h"

namespace qf {
namespace {

constexpr std::size_t kMinSlots = 16;

std::size_t NextPow2AtLeast(std::size_t n) {
  std::size_t cap = kMinSlots;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

void FlatIdTable::Reserve(std::size_t n) {
  // Size so `n` elements sit below the 3/4 load threshold.
  std::size_t want = NextPow2AtLeast(n + n / 3 + 1);
  if (want > slots_.size()) Redistribute(want);
  hashes_.reserve(n);
}

void FlatIdTable::Grow() {
  Redistribute(slots_.empty() ? kMinSlots : slots_.size() * 2);
}

void FlatIdTable::Redistribute(std::size_t new_capacity) {
  QF_CHECK_MSG((new_capacity & (new_capacity - 1)) == 0,
               "flat hash capacity must be a power of two");
  QF_CHECK_MSG(hashes_.size() < 0xFFFFFFFFu,
               "flat hash tables address at most 2^32-1 elements");
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  std::size_t mask = new_capacity - 1;
  // Re-place occupied slots by their stored hashes; keys are not touched.
  // Distinct elements never collide with themselves, so no eq is needed.
  for (const Slot& slot : old) {
    if (slot.id == kNone) continue;
    std::size_t i = static_cast<std::size_t>(slot.hash) & mask;
    while (slots_[i].id != kNone) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

void FlatKeyIndex::Reserve(std::size_t n) {
  groups_.Reserve(n);
  counts_.reserve(n);
  added_rows_.reserve(n);
  group_of_row_.reserve(n);
}

void FlatKeyIndex::Finalize() {
  QF_CHECK_MSG(rows_.empty() && offsets_.empty(),
               "FlatKeyIndex::Finalize called twice");
  std::size_t groups = counts_.size();
  offsets_.assign(groups + 1, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    offsets_[g + 1] = offsets_[g] + counts_[g];
  }
  rows_.resize(added_rows_.size());
  // Scatter rows into their group's span; cursor order == AddRow order,
  // so within a group the span preserves build row order.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t r = 0; r < added_rows_.size(); ++r) {
    rows_[cursor[group_of_row_[r]]++] = added_rows_[r];
  }
  counts_.clear();
  counts_.shrink_to_fit();
  added_rows_.clear();
  added_rows_.shrink_to_fit();
  group_of_row_.clear();
  group_of_row_.shrink_to_fit();
}

}  // namespace qf
