#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace qf {
namespace {

// Set while the current thread executes inside a pool worker; nested
// ParallelFor calls check it and run inline instead of re-entering the
// pool (which could deadlock a saturated pool).
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

// One ParallelFor invocation: an atomic cursor over the morsels plus the
// bookkeeping to know when the last in-flight morsel finished. Lives on
// the submitting thread's stack; workers hold a pointer only while the
// job is registered in `pending_`.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t morsel = 1;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> next_morsel{0};
  std::size_t morsel_count = 0;
  // Workers still inside fn; the submitter waits for this to reach zero
  // once the cursor is exhausted.
  std::atomic<unsigned> active{0};
  // How many pool workers may still pick this job up (bounds parallelism).
  unsigned slots = 0;

  // First failure in morsel-index order (exception or Status).
  std::mutex error_mutex;
  std::size_t error_morsel = 0;
  std::exception_ptr exception;
  Status status;  // used by ParallelForStatus
  std::atomic<bool> failed{false};

  std::condition_variable done_cv;
  std::mutex done_mutex;
  unsigned retired_workers = 0;

  void RecordError(std::size_t morsel_index, std::exception_ptr e, Status s) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!failed.load(std::memory_order_relaxed) ||
        morsel_index < error_morsel) {
      error_morsel = morsel_index;
      exception = std::move(e);
      status = std::move(s);
      failed.store(true, std::memory_order_release);
    }
  }

  // Runs morsels until the cursor is exhausted (or a failure stops the
  // loop). Every participant — caller and workers — funnels through here.
  void Drain() {
    while (!failed.load(std::memory_order_acquire)) {
      std::size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsel_count) break;
      std::size_t begin = m * morsel;
      std::size_t end = std::min(n, begin + morsel);
      try {
        (*fn)(begin, end);
      } catch (...) {
        RecordError(m, std::current_exception(), InternalError("exception"));
      }
    }
  }
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorker() const { return tls_current_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !pending_.empty(); });
      if (shutdown_ && pending_.empty()) return;
      job = pending_.back();
      if (--job->slots == 0) {
        pending_.pop_back();
      }
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    job->Drain();
    {
      // Notify while still holding done_mutex: the submitter destroys the
      // Job as soon as its wait predicate holds, and it can only return
      // from wait() after re-acquiring the mutex — so signalling under the
      // lock is what keeps the condition variable alive for this call.
      std::lock_guard<std::mutex> lock(job->done_mutex);
      ++job->retired_workers;
      job->active.fetch_sub(1, std::memory_order_release);
      job->done_cv.notify_one();
    }
  }
}

void ThreadPool::RunJob(Job& job) {
  job.morsel_count = MorselCount(job.n, job.morsel);
  if (job.morsel_count == 0) return;

  // Nested call from a worker, a trivial loop, or no spare parallelism:
  // run inline. Morsel order is identical either way.
  if (InWorker() || job.slots == 0 || job.morsel_count == 1 ||
      workers_.empty()) {
    job.Drain();
    return;
  }

  unsigned invited;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.slots = static_cast<unsigned>(std::min<std::size_t>(
        {job.slots, workers_.size(), job.morsel_count - 1}));
    invited = job.slots;
    if (invited > 0) pending_.push_back(&job);
  }
  if (invited == 1) {
    wake_.notify_one();
  } else if (invited > 1) {
    wake_.notify_all();
  }

  // The caller works too: even if every worker is busy elsewhere, the
  // loop completes.
  job.Drain();

  // Wait until no worker is still inside fn, and no worker can still pick
  // the job up (it may sit in pending_ with slots left if workers were
  // busy — remove it before returning, since the job dies with this
  // frame).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(pending_.begin(), pending_.end(), &job);
    if (it != pending_.end()) {
      invited -= job.slots;  // slots never claimed
      pending_.erase(it);
    }
  }
  std::unique_lock<std::mutex> lock(job.done_mutex);
  job.done_cv.wait(lock, [&job, invited] {
    return job.retired_workers == invited &&
           job.active.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t morsel, unsigned parallelism,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  QF_CHECK_MSG(morsel > 0, "ParallelFor morsel size must be positive");
  Job job;
  job.n = n;
  job.morsel = morsel;
  job.fn = &fn;
  job.slots = parallelism > 0 ? parallelism - 1 : 0;  // caller takes one
  RunJob(job);
  if (job.failed.load(std::memory_order_acquire) && job.exception) {
    std::rethrow_exception(job.exception);
  }
}

Status ThreadPool::ParallelForStatus(
    std::size_t n, std::size_t morsel, unsigned parallelism,
    const std::function<Status(std::size_t, std::size_t)>& fn) {
  QF_CHECK_MSG(morsel > 0, "ParallelFor morsel size must be positive");
  Job job;
  job.n = n;
  job.morsel = morsel;
  // Adapter: a failed morsel records its Status (keyed by begin/morsel to
  // preserve "lowest morsel wins") and stops the loop via job.failed.
  std::function<void(std::size_t, std::size_t)> wrapped =
      [&job, &fn](std::size_t begin, std::size_t end) {
        Status s = fn(begin, end);
        if (!s.ok()) {
          job.RecordError(begin / job.morsel, nullptr, std::move(s));
        }
      };
  job.fn = &wrapped;
  job.slots = parallelism > 0 ? parallelism - 1 : 0;
  RunJob(job);
  if (job.failed.load(std::memory_order_acquire)) {
    if (job.exception) std::rethrow_exception(job.exception);
    return job.status;
  }
  return Status::Ok();
}

void ParallelFor(unsigned threads, std::size_t n, std::size_t morsel,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  QF_CHECK_MSG(morsel > 0, "ParallelFor morsel size must be positive");
  if (threads <= 1 || MorselCount(n, morsel) <= 1) {
    // Inline, but still morsel-at-a-time so observable call patterns (and
    // morsel-indexed buffers) match the parallel path exactly.
    for (std::size_t begin = 0; begin < n; begin += morsel) {
      fn(begin, std::min(n, begin + morsel));
    }
    return;
  }
  ThreadPool::Global().ParallelFor(n, morsel, threads, fn);
}

Status ParallelForStatus(
    unsigned threads, std::size_t n, std::size_t morsel,
    const std::function<Status(std::size_t, std::size_t)>& fn) {
  QF_CHECK_MSG(morsel > 0, "ParallelFor morsel size must be positive");
  if (threads <= 1 || MorselCount(n, morsel) <= 1) {
    for (std::size_t begin = 0; begin < n; begin += morsel) {
      Status s = fn(begin, std::min(n, begin + morsel));
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
  return ThreadPool::Global().ParallelForStatus(n, morsel, threads, fn);
}

}  // namespace qf
