// Small string helpers shared by the Datalog parser, TSV IO, and printers.
#ifndef QF_COMMON_STRING_UTIL_H_
#define QF_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qf {

// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view text, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a decimal integer; rejects trailing garbage and overflow.
Result<std::int64_t> ParseInt64(std::string_view text);

// Parses a floating-point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace qf

#endif  // QF_COMMON_STRING_UTIL_H_
