// Virtual filesystem: every byte the engine persists (catalog snapshots,
// WAL records, TSV exports) flows through this interface, so durability
// logic is testable against simulated crashes and injected I/O errors
// instead of only against a healthy disk.
//
// Three implementations:
//   * PosixVfs — production: open/write/fsync/rename, with transient
//     EINTR/EAGAIN retried via common/retry.h. O_APPEND-free sequential
//     writers (one owner per file, as the storage layer guarantees).
//   * MemVfs — an in-memory filesystem with *fsync-accurate crash
//     semantics*: file content is durable only up to the last Sync(), a
//     file's directory entry (creations, renames, removals) is durable
//     only after SyncDir() on its parent, and an in-place truncation of
//     a durable file is durable immediately (the adversarial reading of
//     O_TRUNC). Crash() rolls the filesystem back to exactly the durable
//     view — the model under which the crash-recovery torture tests run.
//   * FaultVfs — wraps any Vfs and injects a one-shot EIO/ENOSPC at the
//     Nth mutating operation, or a *crash* at the Nth operation: the
//     crashing Append applies only a torn prefix, and every later call
//     fails, simulating process death mid-I/O.
//
// Error taxonomy: OS failures surface as IO_ERROR (ENOENT as NOT_FOUND on
// the read path), never as generic INTERNAL — the shell and the catalog
// branch on the code.
#ifndef QF_COMMON_VFS_H_
#define QF_COMMON_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qf {

// A sequentially written file. Close() is idempotent; the destructor
// closes best-effort (errors on that path are lost — callers that care
// about durability Sync() and Close() explicitly first).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  // Flushes file *content* to stable storage (fsync). Does not make a
  // newly created file's directory entry durable — see Vfs::SyncDir.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Reads the whole file. NOT_FOUND if it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  // Reads up to `length` bytes starting at `offset`; shorter only when the
  // file ends first. The page and spill readers use this to touch one
  // page at a time. The default implementation reads the whole file and
  // slices (always correct); PosixVfs overrides with pread.
  virtual Result<std::string> ReadAt(const std::string& path,
                                     std::uint64_t offset,
                                     std::size_t length);
  // Sorted names (not paths) of the regular files directly inside `dir`.
  // A missing directory reads as empty: orphan sweeps treat "never
  // created" and "nothing there" alike.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  // Size of the file in bytes; NOT_FOUND if it does not exist. The paged
  // reader locates the fixed-size footer with this.
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;
  // Opens for appending, creating the file if needed.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;
  // Opens truncated (creating if needed): the rewrite path. Durability of
  // the rewrite requires Sync() on the file and SyncDir() on the parent —
  // but the *truncation* of an existing file may hit stable storage at
  // any moment (POSIX orders nothing here), so never OpenTrunc a file
  // whose old content must survive a crash; use AtomicWriteFile.
  virtual Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) = 0;
  // Atomically replaces `to` with `from` (POSIX rename). The new mapping
  // is durable only after SyncDir() on the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  // fsyncs the directory itself, making entry creations/renames/removals
  // inside it durable.
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  // mkdir -p.
  virtual Status CreateDirs(const std::string& dir) = 0;
};

// Directory part of `path` ("a/b/c.wal" -> "a/b"), or "." for a bare
// filename — always a valid SyncDir target.
std::string VfsDirName(const std::string& path);

// Crash-safe whole-file write: <path>.tmp + Sync + rename over `path` +
// SyncDir(parent). On any failure the destination is untouched (either
// the old content or absent) and the temp file is removed best-effort —
// an ENOSPC or crash can never leave a truncated `path` behind.
Status AtomicWriteFile(Vfs& vfs, const std::string& path,
                       std::string_view data);

// Process-wide PosixVfs instance for call sites without an injected vfs.
Vfs& DefaultVfs();

// ---------------------------------------------------------------------
// Production implementation.

class PosixVfs : public Vfs {
 public:
  PosixVfs() = default;

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadAt(const std::string& path, std::uint64_t offset,
                             std::size_t length) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;

 private:
  Result<std::unique_ptr<WritableFile>> Open(const std::string& path,
                                             int flags);
};

// ---------------------------------------------------------------------
// In-memory implementation with crash semantics. Thread-safe.

class MemVfs : public Vfs {
 public:
  MemVfs() = default;

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;

  // Simulates power loss: un-Sync()ed file content and un-SyncDir()ed
  // directory operations are discarded; the live view becomes the durable
  // view. Open handles from before the crash fail on further use.
  void Crash();

 private:
  struct Inode {
    std::string data;
    std::size_t synced = 0;  // bytes guaranteed after a crash
  };
  class MemFile;

  std::mutex mutex_;
  std::uint64_t epoch_ = 0;  // bumped by Crash(); stale handles fail
  std::map<std::string, std::shared_ptr<Inode>> live_;
  std::map<std::string, std::shared_ptr<Inode>> durable_;
  std::set<std::string> dirs_{"."};
};

// ---------------------------------------------------------------------
// Fault injection wrapper.

struct FaultPlan {
  // 1-based index (over mutating operations: Append/Sync/Rename/Remove/
  // SyncDir/OpenTrunc) of the single operation that fails with IO_ERROR.
  // 0 disables. The failure is one-shot; later operations succeed —
  // it models a transient ENOSPC/EIO, and the *caller* must contain it.
  std::uint64_t fail_at_op = 0;
  // Message flavor for the injected failure ("No space left on device"
  // vs "Input/output error").
  bool fail_enospc = true;
  // 1-based index of the operation at which the process "dies": the
  // crashing Append writes only `torn_write_bytes` of its payload through
  // to the base vfs; every operation after (reads included) fails. 0
  // disables.
  std::uint64_t crash_at_op = 0;
  // Prefix of the crashing Append that still reaches the base vfs
  // (clamped to the payload length). Simulates a torn sector write.
  std::uint32_t torn_write_bytes = 0;
};

class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(Vfs& base) : base_(base) {}

  void set_plan(const FaultPlan& plan) { plan_ = plan; }
  // Mutating operations observed so far — run a workload fault-free once
  // to learn the sweep's upper bound.
  std::uint64_t op_count() const { return ops_; }
  bool crashed() const { return crashed_; }

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadAt(const std::string& path, std::uint64_t offset,
                             std::size_t length) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;

 private:
  class FaultFile;

  // Charges one mutating operation against the plan. Returns OK when the
  // op should proceed; IO_ERROR when it is the injected failure or the
  // filesystem is "dead". Sets `torn` when the op is the crashing Append
  // and a prefix should still be applied.
  Status Gate(bool* torn);

  Vfs& base_;
  FaultPlan plan_;
  std::uint64_t ops_ = 0;
  bool crashed_ = false;
};

}  // namespace qf

#endif  // QF_COMMON_VFS_H_
