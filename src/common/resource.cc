#include "common/resource.h"

#include <vector>

#include "common/check.h"

namespace qf {

std::size_t ApproxTupleBytes(std::size_t arity) {
  // One Value is 16 bytes (tagged 8-byte payload); the row's element array
  // plus the vector header stored in the containing rows vector.
  return sizeof(std::vector<int>) + arity * 16;
}

void QueryContext::LatchError(StatusCode code) {
  int expected = static_cast<int>(StatusCode::kOk);
  error_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                      std::memory_order_relaxed);
}

bool QueryContext::Charge(std::uint64_t bytes) {
  if (!ok()) return false;
  if (fault_countdown_.load(std::memory_order_relaxed) > 0 &&
      fault_countdown_.fetch_sub(1, std::memory_order_relaxed) == 1) {
    LatchError(StatusCode::kResourceExhausted);
    return false;
  }
  std::uint64_t used =
      used_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Maintain the high-water mark; contended only while usage climbs.
  std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (used > peak && !peak_bytes_.compare_exchange_weak(
                            peak, used, std::memory_order_relaxed)) {
  }
  if (budget_bytes_ != 0 && used > budget_bytes_) {
    LatchError(StatusCode::kResourceExhausted);
    return false;
  }
  return true;
}

Status QueryContext::Check() const {
  switch (static_cast<StatusCode>(error_code_.load(std::memory_order_relaxed))) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kCancelled:
      return CancelledError("query cancelled");
    case StatusCode::kDeadlineExceeded:
      return DeadlineExceededError("query deadline exceeded");
    case StatusCode::kResourceExhausted:
      return ResourceExhaustedError("query memory budget exceeded");
    default:
      QF_CHECK_MSG(false, "QueryContext latched a non-governor code");
      return InternalError("unreachable");
  }
}

bool OpGovernor::FlushAndPoll() {
  std::uint64_t bytes =
      static_cast<std::uint64_t>(pending_rows_) * bytes_per_row_;
  pending_rows_ = 0;
  total_bytes_ += bytes;
  bool admitted = ctx_->Charge(bytes);
  return admitted && ctx_->Poll();
}

}  // namespace qf
