#include "common/crc32c.h"

#include <array>
#include <cstddef>

namespace qf {
namespace {

// Four 256-entry tables for slicing-by-4, generated once at startup from
// the reflected Castagnoli polynomial.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data) {
  const Crc32cTables& tb = Tables();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace qf
