// Hash-combining utilities used by Tuple/Value hashing and hash joins.
#ifndef QF_COMMON_HASH_H_
#define QF_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace qf {

// Mixes `value` into running hash state `seed` (boost::hash_combine style,
// with a 64-bit golden-ratio constant and extra avalanche).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  // splitmix64-style finalizer applied to the incoming value keeps poor
  // std::hash implementations (identity on integers) from clustering.
  std::uint64_t v = value;
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return seed ^ (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                 (seed << 6) + (seed >> 2));
}

// Hashes `value` with std::hash and mixes it into `seed`.
template <typename T>
std::size_t HashValueInto(std::size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace qf

#endif  // QF_COMMON_HASH_H_
