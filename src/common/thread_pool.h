// A shared work-stealing thread pool with a morsel-driven ParallelFor —
// the one parallel substrate under the whole evaluation stack (relational
// operators, flock evaluation, plan execution, a-priori counting).
//
// Design notes:
//   * One process-wide pool (ThreadPool::Global()), sized to the hardware,
//     created lazily and never destroyed. Callers say how much parallelism
//     they *want* per call (the `threads` knob plumbed through
//     FlockEvalOptions / PlanExecOptions / AprioriOptions); the pool clamps
//     to what the hardware has. Correctness never depends on how many
//     workers actually run.
//   * Morsel-driven scheduling: ParallelFor splits [0, n) into fixed-size
//     morsels handed out through an atomic cursor, so fast workers steal
//     the slack of slow ones (work stealing with a single shared deque,
//     which for contiguous ranges is equivalent to and cheaper than
//     per-worker deques). Morsel boundaries depend only on (n, morsel
//     size), never on the thread count — the determinism contract of every
//     parallel operator is built on this.
//   * The caller participates: submitting a loop never blocks waiting for
//     a free worker, so ParallelFor makes progress even on a saturated or
//     single-threaded pool.
//   * Nested ParallelFor from inside a worker runs inline (serially, same
//     morsel order). Parallelism is applied at the outermost level only;
//     inner levels degrade gracefully instead of deadlocking.
//   * Errors: the Status variant stops handing out new morsels after the
//     first failure and returns the failure from the lowest-numbered
//     morsel (deterministic). Exceptions thrown by workers are caught,
//     carried across the join, and rethrown on the calling thread.
#ifndef QF_COMMON_THREAD_POOL_H_
#define QF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace qf {

class ThreadPool {
 public:
  // The process-wide pool: hardware_concurrency workers (at least 1),
  // created on first use, intentionally leaked.
  static ThreadPool& Global();

  // A private pool with exactly `workers` worker threads (tests use this
  // to force more concurrency than the hardware exposes).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  // Runs `fn(begin, end)` over [0, n) in morsels of `morsel` iterations
  // (the last may be short). Up to `parallelism` threads run concurrently,
  // counting the calling thread, which always participates. Returns after
  // every morsel completed. `fn` must be safe to call concurrently from
  // multiple threads; morsel boundaries are independent of `parallelism`.
  // Exceptions thrown by `fn` are rethrown here (first morsel in index
  // order wins).
  void ParallelFor(std::size_t n, std::size_t morsel, unsigned parallelism,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  // As ParallelFor, but `fn` returns Status. After the first non-OK
  // status no new morsels start (in-flight ones finish). Returns the
  // non-OK status of the lowest-numbered failed morsel, or OK.
  Status ParallelForStatus(
      std::size_t n, std::size_t morsel, unsigned parallelism,
      const std::function<Status(std::size_t, std::size_t)>& fn);

  // True when called from inside one of this pool's workers (used to run
  // nested loops inline).
  bool InWorker() const;

 private:
  struct Job;

  void WorkerLoop();
  void RunJob(Job& job);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Job*> pending_;  // jobs with morsels left to hand out
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

// Morsel-parallel loop on the global pool. `threads <= 1`, `n == 0`, or a
// single morsel runs inline on the caller. This is the call sites' normal
// entry point; they never touch the pool directly.
void ParallelFor(unsigned threads, std::size_t n, std::size_t morsel,
                 const std::function<void(std::size_t, std::size_t)>& fn);

// Status-propagating variant (same inline fallbacks).
Status ParallelForStatus(
    unsigned threads, std::size_t n, std::size_t morsel,
    const std::function<Status(std::size_t, std::size_t)>& fn);

// Number of morsels ParallelFor will use for (n, morsel) — callers that
// accumulate one partial result per morsel size their buffers with this.
inline std::size_t MorselCount(std::size_t n, std::size_t morsel) {
  return morsel == 0 ? 0 : (n + morsel - 1) / morsel;
}

}  // namespace qf

#endif  // QF_COMMON_THREAD_POOL_H_
