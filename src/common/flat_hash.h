// Cache-conscious flat hash tables — the execution kernels under every
// hot path of the engine (hash join build/probe, set-semantics dedup,
// semi/anti join, group aggregation, a-priori candidate counting).
//
// Design:
//   * Open addressing over one flat slot array; power-of-two capacity;
//     linear probing. No per-entry allocation, no node pointers — a probe
//     touches consecutive cache lines instead of chasing list nodes.
//   * Each slot stores the element's precomputed 64-bit hash inline next
//     to a dense 32-bit id. Probes compare hashes first and call the
//     caller's equality predicate only on a full 64-bit hash match, so
//     almost every miss is resolved without touching the keyed data.
//   * Growth doubles the slot array and redistributes occupied slots by
//     their *stored* hashes — keys are never re-hashed ("rehash-free
//     doubling"), so growth cost is a linear pass over the slot array.
//   * Keys live with the *caller* (rows of a Relation, candidate vectors,
//     packed integers). The tables store only ids/refs and hashes, and
//     every lookup takes an equality closure over the stored id. This is
//     what makes probing *heterogeneous*: a join probe hashes the key
//     columns of the probe row in place and compares column-by-column
//     against the build row — no key tuple is ever materialized.
//   * Dense ids are assigned in insertion order, so iterating 0..size-1
//     replays insertions deterministically — hash-table iteration order
//     never leaks into results (the engine's determinism contract).
//   * Every probing call accumulates the number of slots it inspected
//     into a caller-owned counter; operators surface the sum as the
//     `tuples_probed` metric.
//
// The family:
//   FlatIdTable   — hash -> dense id (the core; keys fully caller-side).
//   FlatTupleSet  — set-semantics dedup: insert-if-absent over refs.
//   FlatGroupTable— group key -> dense group id with representative ref.
//   FlatKeyIndex  — join build side: key -> span of row ids (build order).
#ifndef QF_COMMON_FLAT_HASH_H_
#define QF_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qf {

class FlatIdTable {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  FlatIdTable() = default;

  // Prepares capacity for `n` distinct elements (inserts beyond that
  // still work; the table doubles as needed).
  void Reserve(std::size_t n);

  std::size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }
  // Slots currently allocated (diagnostics/tests).
  std::size_t capacity() const { return slots_.size(); }

  // Stored hash of a dense id (for merge passes: partial tables hand
  // their hashes to the global table without re-hashing any key).
  std::uint64_t hash_at(std::uint32_t id) const { return hashes_[id]; }

  // Finds the dense id whose stored hash equals `hash` and whose element
  // satisfies `eq(id)`, inserting a fresh id (== size() before the call)
  // when absent. Returns {id, inserted}. `probes` accumulates the number
  // of slots inspected.
  template <typename Eq>
  std::pair<std::uint32_t, bool> Upsert(std::uint64_t hash, const Eq& eq,
                                        std::uint64_t& probes) {
    if (NeedsGrowth()) Grow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (true) {
      ++probes;
      Slot& slot = slots_[i];
      if (slot.id == kNone) {
        std::uint32_t id = static_cast<std::uint32_t>(hashes_.size());
        slot.hash = hash;
        slot.id = id;
        hashes_.push_back(hash);
        return {id, true};
      }
      if (slot.hash == hash && eq(slot.id)) return {slot.id, false};
      i = (i + 1) & mask;
    }
  }

  // As Upsert without the insert: returns the matching id or kNone.
  template <typename Eq>
  std::uint32_t Find(std::uint64_t hash, const Eq& eq,
                     std::uint64_t& probes) const {
    if (slots_.empty()) return kNone;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (true) {
      ++probes;
      const Slot& slot = slots_[i];
      if (slot.id == kNone) return kNone;
      if (slot.hash == hash && eq(slot.id)) return slot.id;
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kNone;  // kNone marks an empty slot
  };

  bool NeedsGrowth() const {
    // Grow at 3/4 load — linear probing stays short-chained below that.
    return slots_.empty() ||
           (hashes_.size() + 1) * 4 > slots_.size() * 3;
  }
  void Grow();
  void Redistribute(std::size_t new_capacity);

  std::vector<Slot> slots_;
  std::vector<std::uint64_t> hashes_;  // dense: id -> stored hash
};

// Set-semantics dedup over caller-side elements named by 32-bit refs
// (typically row indices). Refs of the distinct elements are kept in
// insertion order, which is exactly first-occurrence order.
class FlatTupleSet {
 public:
  void Reserve(std::size_t n) {
    table_.Reserve(n);
    refs_.reserve(n);
  }
  std::size_t size() const { return refs_.size(); }

  // Inserts `ref` unless an equal element is present; `eq(stored_ref)`
  // compares the probe element against a previously inserted one.
  // Returns true when `ref` was new.
  template <typename Eq>
  bool Insert(std::uint32_t ref, std::uint64_t hash, const Eq& eq,
              std::uint64_t& probes) {
    auto [id, inserted] =
        table_.Upsert(hash, [&](std::uint32_t i) { return eq(refs_[i]); },
                      probes);
    if (inserted) refs_.push_back(ref);
    return inserted;
  }

  template <typename Eq>
  bool Contains(std::uint64_t hash, const Eq& eq,
                std::uint64_t& probes) const {
    return table_.Find(hash, [&](std::uint32_t i) { return eq(refs_[i]); },
                       probes) != FlatIdTable::kNone;
  }

  // Refs of the distinct elements, first-occurrence order.
  const std::vector<std::uint32_t>& refs() const { return refs_; }

 private:
  FlatIdTable table_;
  std::vector<std::uint32_t> refs_;
};

// Group key -> dense group id (0..group_count-1 in first-occurrence
// order), remembering one representative ref per group. Accumulators
// live with the caller in a plain vector indexed by group id.
class FlatGroupTable {
 public:
  void Reserve(std::size_t n) {
    table_.Reserve(n);
    refs_.reserve(n);
  }
  std::size_t size() const { return refs_.size(); }

  // Returns {group id, inserted}; on insert, `ref` becomes the group's
  // representative. `eq(stored_ref)` compares group keys.
  template <typename Eq>
  std::pair<std::uint32_t, bool> Upsert(std::uint32_t ref,
                                        std::uint64_t hash, const Eq& eq,
                                        std::uint64_t& probes) {
    auto result =
        table_.Upsert(hash, [&](std::uint32_t i) { return eq(refs_[i]); },
                      probes);
    if (result.second) refs_.push_back(ref);
    return result;
  }

  template <typename Eq>
  std::uint32_t Find(std::uint64_t hash, const Eq& eq,
                     std::uint64_t& probes) const {
    return table_.Find(hash, [&](std::uint32_t i) { return eq(refs_[i]); },
                       probes);
  }

  std::uint32_t ref_at(std::uint32_t group) const { return refs_[group]; }
  std::uint64_t hash_at(std::uint32_t group) const {
    return table_.hash_at(group);
  }

 private:
  FlatIdTable table_;
  std::vector<std::uint32_t> refs_;
};

// Hash-join build side: key -> the row ids carrying that key, as a
// contiguous span in build-insertion order. Build protocol:
//   index.Reserve(n);
//   for each row r: index.AddRow(r, hash, eq, probes);
//   index.Finalize();
// after which Probe() is read-only and safe to share across threads.
class FlatKeyIndex {
 public:
  struct Span {
    const std::uint32_t* begin = nullptr;
    const std::uint32_t* end = nullptr;
    std::size_t size() const { return static_cast<std::size_t>(end - begin); }
    bool empty() const { return begin == end; }
  };

  void Reserve(std::size_t n);

  // `eq(stored_row)` compares the key of `row` against the key of a
  // previously added row.
  template <typename Eq>
  void AddRow(std::uint32_t row, std::uint64_t hash, const Eq& eq,
              std::uint64_t& probes) {
    auto [group, inserted] = groups_.Upsert(row, hash, eq, probes);
    if (inserted) {
      counts_.push_back(1);
    } else {
      ++counts_[group];
    }
    added_rows_.push_back(row);
    group_of_row_.push_back(group);
  }

  // Converts the per-group chains into contiguous spans. Must be called
  // once, after the last AddRow and before the first Probe.
  void Finalize();

  // Rows whose key matches the probe key (empty span when none).
  // `eq(stored_row)` compares the probe key against a build row's key —
  // this is the heterogeneous hook: hash/compare the probe row's key
  // columns in place.
  template <typename Eq>
  Span Probe(std::uint64_t hash, const Eq& eq, std::uint64_t& probes) const {
    std::uint32_t group = groups_.Find(hash, eq, probes);
    if (group == FlatIdTable::kNone) return Span{};
    const std::uint32_t* base = rows_.data();
    return Span{base + offsets_[group], base + offsets_[group + 1]};
  }

  std::size_t group_count() const { return groups_.size(); }
  // Valid before and after Finalize (exactly one of the vectors is live).
  std::size_t row_count() const { return added_rows_.size() + rows_.size(); }

 private:
  FlatGroupTable groups_;
  std::vector<std::uint32_t> counts_;        // rows per group (build phase)
  std::vector<std::uint32_t> added_rows_;    // rows in AddRow order
  std::vector<std::uint32_t> group_of_row_;  // group of each added row
  std::vector<std::uint32_t> offsets_;       // group -> rows_ offset
  std::vector<std::uint32_t> rows_;          // row ids, grouped, build order
};

}  // namespace qf

#endif  // QF_COMMON_FLAT_HASH_H_
