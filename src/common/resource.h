// Engine-wide resource governor: a QueryContext carries a wall-clock
// deadline, a cooperative cancellation token, and an atomic memory
// accountant with a hard budget. It is threaded through every relational
// operator, the CQ/flock evaluators, the plan executor, the dynamic
// evaluator, a-priori counting, and the morsel-parallel thread pool.
//
// Design notes:
//   * Like OpMetrics, governance is *opt-in per call*: entry points take a
//     nullable QueryContext pointer (usually via their options struct).
//     The ungoverned path is a null check — no clock reads, no atomic
//     traffic — so production runs without limits pay nothing.
//   * The first observed failure (deadline, cancel, budget, fault
//     injection) *latches*: an atomic error code is set once and every
//     subsequent Poll()/Check() fails fast. Parallel morsel workers test
//     the latch at morsel granularity and unwind cleanly; serial operator
//     loops poll every kPollStride rows. Operators themselves keep
//     returning plain Relations — on a tripped context they bail early
//     with truncated output, and the Result<>-returning evaluator layers
//     call Check() after each operator and surface the typed Status. The
//     truncated intermediate is discarded with everything else when the
//     evaluator unwinds, so nothing leaks and no partially built flat-hash
//     table escapes.
//   * Memory accounting is approximate and charge/release-symmetric:
//     operators charge their *output* rows via ApproxTupleBytes (heap
//     footprint of a Tuple, ignoring interned string bytes and hash-table
//     overhead), and evaluator layers release an intermediate's bytes when
//     they drop it. Charges use relaxed atomics; `peak` is maintained with
//     a CAS loop. Because governance only decides abort-or-not and never
//     reorders work, a governed run that completes is bit-identical to an
//     ungoverned run at every thread count (the determinism contract).
//   * Fault injection: set_fail_after_charges(n) trips a synthetic
//     RESOURCE_EXHAUSTED on the nth Charge() call. Differential tests
//     sweep n to prove every abort point unwinds without corruption.
#ifndef QF_COMMON_RESOURCE_H_
#define QF_COMMON_RESOURCE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace qf {

// Approximate heap bytes held by one materialized tuple of the given
// arity: the row vector's element array plus the vector bookkeeping that
// lives inside the containing rows vector. Interned string payloads are
// shared process-wide and not attributed to any query. Operators and
// evaluators must use this one formula for both charge and release so the
// accountant nets to zero when intermediates are dropped.
std::size_t ApproxTupleBytes(std::size_t arity);

// Out-of-core spill environment (defined in relational/spill.h): where and
// how a governed statement may spill intermediates to disk. Carried here as
// an opaque pointer so the governor stays free of storage dependencies.
struct SpillEnv;

// Shared governor state for one query execution. Thread-safe: many morsel
// workers poll and charge concurrently. Create one per RUN statement (or
// per test), pass it by pointer through the options structs; nullptr means
// ungoverned.
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- configuration (set before the query starts) ---

  // Absolute wall-clock deadline. Checked on every Poll().
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  // Convenience: deadline = now + timeout_ms.
  void set_timeout_ms(std::int64_t timeout_ms) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(timeout_ms));
  }
  // Hard budget for accounted bytes; 0 means unlimited.
  void set_memory_budget(std::uint64_t bytes) { budget_bytes_ = bytes; }
  // External cancellation flag to watch (e.g. the shell's SIGINT flag).
  // The pointee must outlive the query. May be nullptr.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  // Fault injection: the nth subsequent Charge() trips a synthetic
  // RESOURCE_EXHAUSTED ("fault injection"). 0 disables.
  void set_fail_after_charges(std::uint64_t n) {
    fault_countdown_.store(n, std::memory_order_relaxed);
  }
  // Grants the statement permission to spill: operators that would breach
  // the budget may partition to disk through `env` instead of aborting.
  // nullptr (the default) keeps the PR 4 behavior — a hard
  // RESOURCE_EXHAUSTED. The pointee must outlive the query.
  void set_spill_env(SpillEnv* env) { spill_env_ = env; }
  SpillEnv* spill_env() const { return spill_env_; }

  // --- cooperative cancellation ---

  // Requests cancellation (safe from any thread, e.g. a signal-watching
  // thread or another session).
  void RequestCancel() { LatchError(StatusCode::kCancelled); }

  // --- polling API (hot paths) ---

  // True while no failure has latched. The cheapest test — one relaxed
  // load — for per-morsel checks.
  bool ok() const {
    return error_code_.load(std::memory_order_relaxed) ==
           static_cast<int>(StatusCode::kOk);
  }

  // Full poll: latch check + external cancel flag + deadline. Operators
  // call this every kPollStride rows (and once per morsel). Returns false
  // once any failure has latched; callers then bail out early.
  bool Poll() {
    if (!ok()) return false;
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      LatchError(StatusCode::kCancelled);
      return false;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      LatchError(StatusCode::kDeadlineExceeded);
      return false;
    }
    return true;
  }

  // Charges `bytes` to the accountant, updates the peak, and trips the
  // budget (or the fault injector) when exceeded. Returns false once any
  // failure has latched. Charging is not undone on failure: the caller is
  // unwinding and will Release() what it drops.
  bool Charge(std::uint64_t bytes);

  // Returns accounted bytes to the pool (an intermediate was dropped).
  void Release(std::uint64_t bytes) {
    used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // --- inspection ---

  std::uint64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t budget_bytes() const { return budget_bytes_; }

  // OK while no failure has latched; afterwards the typed error
  // (CANCELLED / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED). Evaluator layers
  // call this after each operator and propagate it through Result<>.
  Status Check() const;

  // Serial operator loops poll every this many rows — frequent enough
  // that a 1 ms deadline overshoots by well under 50 ms even on slow
  // hardware, rare enough that the clock read is amortized to noise.
  static constexpr std::size_t kPollStride = 1024;

 private:
  void LatchError(StatusCode code);

  std::atomic<int> error_code_{static_cast<int>(StatusCode::kOk)};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const std::atomic<bool>* cancel_flag_ = nullptr;

  std::uint64_t budget_bytes_ = 0;  // 0 = unlimited
  SpillEnv* spill_env_ = nullptr;
  std::atomic<std::uint64_t> used_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  std::atomic<std::uint64_t> fault_countdown_{0};
};

// Per-loop charging helper for operator hot paths: batches Poll() and
// Charge() to once every QueryContext::kPollStride rows so the ungoverned
// and in-budget costs stay out of the inner loop. Stack-local, never
// shared between threads; each parallel morsel owns one.
//
//   OpGovernor gov(ctx, ApproxTupleBytes(arity));
//   for (const Tuple& t : input) {
//     if (!gov.Admit()) break;   // context tripped: bail early
//     ...emit one output row...
//   }
//   gov.Flush();                 // charge the sub-stride remainder
//
// Admit() counts one *output* row; the accumulated bytes are charged in
// stride-sized deltas. Flush() charges the remainder (and is safe to call
// multiple times). total_bytes() reports everything this governor charged,
// which callers record in OpMetrics::mem_bytes and later Release().
class OpGovernor {
 public:
  OpGovernor(QueryContext* ctx, std::size_t bytes_per_row)
      : ctx_(ctx), bytes_per_row_(bytes_per_row) {}
  ~OpGovernor() { Flush(); }

  OpGovernor(const OpGovernor&) = delete;
  OpGovernor& operator=(const OpGovernor&) = delete;

  bool Admit() {
    if (ctx_ == nullptr) return true;
    if (++pending_rows_ < QueryContext::kPollStride) {
      return ctx_->ok();
    }
    return FlushAndPoll();
  }

  // Input-side poll: counts one *input* row (no charge) and polls the
  // deadline/cancel token every kPollStride rows, so an operator that
  // scans a huge input while emitting nothing still honours deadlines.
  bool TickInput() {
    if (ctx_ == nullptr) return true;
    if (++input_rows_ % QueryContext::kPollStride != 0) {
      return ctx_->ok();
    }
    return ctx_->Poll();
  }

  // Charges rows admitted since the last flush. Returns false if the
  // context has tripped.
  bool Flush() {
    if (ctx_ == nullptr || pending_rows_ == 0) return ctx_ == nullptr || ctx_->ok();
    return FlushAndPoll();
  }

  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  bool FlushAndPoll();

  QueryContext* ctx_;
  std::size_t bytes_per_row_;
  std::size_t pending_rows_ = 0;
  std::size_t input_rows_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace qf

#endif  // QF_COMMON_RESOURCE_H_
