#include "common/rng.h"

#include "common/check.h"

namespace qf {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1u) {
  // Standard PCG32 seeding sequence.
  NextUint32();
  state_ += seed;
  NextUint32();
}

std::uint32_t Rng::NextUint32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Rng::NextBelow(std::uint32_t bound) {
  QF_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  while (true) {
    std::uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  QF_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested; compose two 32-bit draws.
    std::uint64_t r =
        (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
    return static_cast<std::int64_t>(r);
  }
  if (span <= 0xffffffffULL) {
    return lo + NextBelow(static_cast<std::uint32_t>(span));
  }
  // Wide span: rejection-sample 64-bit draws.
  std::uint64_t limit = (~0ULL / span) * span;
  while (true) {
    std::uint64_t r =
        (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
    if (r < limit) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  std::uint64_t r =
      (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

}  // namespace qf
