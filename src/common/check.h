// Invariant-checking macros. The library does not use exceptions; internal
// invariant violations terminate the process with a diagnostic.
#ifndef QF_COMMON_CHECK_H_
#define QF_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace qf::internal {

// Prints a failed-check diagnostic and aborts. Marked noinline/cold so the
// failure path stays out of hot code.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message);

}  // namespace qf::internal

// Aborts with a diagnostic if `expr` is false. Always enabled.
#define QF_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::qf::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                               \
  } while (false)

// Like QF_CHECK but with an explanatory message.
#define QF_CHECK_MSG(expr, message)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::qf::internal::CheckFailed(__FILE__, __LINE__, #expr, (message)); \
    }                                                                    \
  } while (false)

// Debug-only check; compiles away in release builds.
#ifdef NDEBUG
#define QF_DCHECK(expr) \
  do {                  \
  } while (false)
#else
#define QF_DCHECK(expr) QF_CHECK(expr)
#endif

#endif  // QF_COMMON_CHECK_H_
