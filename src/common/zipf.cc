#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qf {

ZipfSampler::ZipfSampler(std::uint32_t n, double theta)
    : n_(n), theta_(theta), cdf_(n) {
  QF_CHECK(n > 0);
  QF_CHECK(theta >= 0);
  double total = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta);
    cdf_[k] = total;
  }
  for (std::uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::uint32_t k) const {
  QF_CHECK(k < n_);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace qf
