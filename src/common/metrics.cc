#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace qf {
namespace {

// JSON string escaping for op/detail fields (quotes, backslashes,
// control characters).
void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Stable-ish id for the calling thread, for distinguishing interleaved
// spans in a trace.
std::uint64_t ThreadTag() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void AppendTreeLines(const OpMetrics& node, int depth, std::string& out) {
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += node.op;
  if (!node.detail.empty()) {
    label += ' ';
    label += node.detail;
  }
  constexpr std::size_t kLabelWidth = 40;
  if (label.size() < kLabelWidth) label.resize(kLabelWidth, ' ');
  out += label;

  char buf[192];
  if (node.rows_in_right > 0) {
    std::snprintf(buf, sizeof(buf), " in=%" PRIu64 "x%" PRIu64, node.rows_in,
                  node.rows_in_right);
  } else {
    std::snprintf(buf, sizeof(buf), " in=%" PRIu64, node.rows_in);
  }
  out += buf;
  std::snprintf(buf, sizeof(buf), " out=%" PRIu64, node.rows_out);
  out += buf;
  if (node.est_rows >= 0) {
    // Skew as actual/estimate; "inf" when the model predicted zero rows
    // but some showed up.
    if (node.est_rows > 0) {
      std::snprintf(buf, sizeof(buf), " est=%.0f (x%.2f)", node.est_rows,
                    static_cast<double>(node.rows_out) / node.est_rows);
    } else {
      std::snprintf(buf, sizeof(buf), " est=0 (%s)",
                    node.rows_out == 0 ? "exact" : "xinf");
    }
    out += buf;
  }
  if (node.tuples_probed > 0) {
    std::snprintf(buf, sizeof(buf), " probed=%" PRIu64, node.tuples_probed);
    out += buf;
  }
  if (node.morsels > 0) {
    std::snprintf(buf, sizeof(buf), " morsels=%" PRIu64, node.morsels);
    out += buf;
  }
  if (node.mem_bytes > 0) {
    std::snprintf(buf, sizeof(buf), " mem=%" PRIu64, node.mem_bytes);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " t=%.3fms",
                static_cast<double>(node.wall_ns) / 1e6);
  out += buf;
  out += '\n';
  for (const auto& child : node.children) {
    AppendTreeLines(*child, depth + 1, out);
  }
}

void AppendJson(const OpMetrics& node, std::string& out) {
  out += "{\"op\":\"";
  AppendJsonEscaped(out, node.op);
  out += "\",\"detail\":\"";
  AppendJsonEscaped(out, node.detail);
  out += '"';
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                ",\"rows_in\":%" PRIu64 ",\"rows_in_right\":%" PRIu64
                ",\"rows_out\":%" PRIu64 ",\"tuples_probed\":%" PRIu64
                ",\"morsels\":%" PRIu64 ",\"mem_bytes\":%" PRIu64
                ",\"wall_ns\":%" PRIu64,
                node.rows_in, node.rows_in_right, node.rows_out,
                node.tuples_probed, node.morsels, node.mem_bytes,
                node.wall_ns);
  out += buf;
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"est_rows\":%.17g", node.est_rows);
    out += buf;
  }
  if (!node.children.empty()) {
    out += ",\"children\":[";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out += ',';
      AppendJson(*node.children[i], out);
    }
    out += ']';
  }
  out += '}';
}

std::unique_ptr<OpMetrics> DeepCopy(const OpMetrics& node) {
  auto copy = std::make_unique<OpMetrics>(node.op, node.detail);
  copy->rows_in = node.rows_in;
  copy->rows_in_right = node.rows_in_right;
  copy->rows_out = node.rows_out;
  copy->tuples_probed = node.tuples_probed;
  copy->morsels = node.morsels;
  copy->mem_bytes = node.mem_bytes;
  copy->wall_ns = node.wall_ns;
  copy->est_rows = node.est_rows;
  for (const auto& child : node.children) {
    copy->children.push_back(DeepCopy(*child));
  }
  return copy;
}

}  // namespace

std::uint64_t MetricsNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

OpMetrics* OpMetrics::AddChild(std::string op_name, std::string detail_text) {
  children.push_back(
      std::make_unique<OpMetrics>(std::move(op_name), std::move(detail_text)));
  return children.back().get();
}

std::vector<OpMetrics*> OpMetrics::AddChildren(
    std::size_t n, const std::string& op_name,
    const std::string& detail_prefix) {
  std::vector<OpMetrics*> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(AddChild(op_name, detail_prefix + std::to_string(i)));
  }
  return out;
}

void OpMetrics::MergeFrom(const OpMetrics& other) {
  rows_in += other.rows_in;
  rows_in_right += other.rows_in_right;
  rows_out += other.rows_out;
  tuples_probed += other.tuples_probed;
  morsels += other.morsels;
  mem_bytes += other.mem_bytes;
  wall_ns += other.wall_ns;
  if (est_rows < 0) est_rows = other.est_rows;
  std::size_t shared = std::min(children.size(), other.children.size());
  for (std::size_t i = 0; i < shared; ++i) {
    children[i]->MergeFrom(*other.children[i]);
  }
  for (std::size_t i = shared; i < other.children.size(); ++i) {
    children.push_back(DeepCopy(*other.children[i]));
  }
}

std::size_t OpMetrics::NodeCount() const {
  std::size_t n = 1;
  for (const auto& child : children) n += child->NodeCount();
  return n;
}

const OpMetrics* OpMetrics::Find(std::string_view op_name) const {
  if (op == op_name) return this;
  for (const auto& child : children) {
    if (const OpMetrics* found = child->Find(op_name)) return found;
  }
  return nullptr;
}

std::string OpMetrics::ToString() const {
  std::string out;
  AppendTreeLines(*this, 0, out);
  return out;
}

std::string OpMetrics::ToJson() const {
  std::string out;
  AppendJson(*this, out);
  return out;
}

std::string FormatTraceEvent(char phase, std::string_view op,
                             std::string_view detail, std::uint64_t t_ns,
                             std::uint64_t rows_out) {
  std::string out = "{\"ev\":\"";
  out += phase;
  out += "\",\"op\":\"";
  AppendJsonEscaped(out, op);
  out += "\",\"detail\":\"";
  AppendJsonEscaped(out, detail);
  out += '"';
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"t_ns\":%" PRIu64 ",\"tid\":\"%" PRIx64
                                  "\"",
                t_ns, ThreadTag());
  out += buf;
  if (phase == 'E') {
    std::snprintf(buf, sizeof(buf), ",\"rows_out\":%" PRIu64, rows_out);
    out += buf;
  }
  out += '}';
  return out;
}

void MemoryTraceSink::BeginSpan(std::string_view op, std::string_view detail,
                                std::uint64_t t_ns) {
  std::string line = FormatTraceEvent('B', op, detail, t_ns, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

void MemoryTraceSink::EndSpan(std::string_view op, std::string_view detail,
                              std::uint64_t t_ns, std::uint64_t rows_out) {
  std::string line = FormatTraceEvent('E', op, detail, t_ns, rows_out);
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(std::move(line));
}

std::vector<std::string> MemoryTraceSink::Lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::size_t MemoryTraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

void MemoryTraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
}

JsonLinesTraceSink::JsonLinesTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

JsonLinesTraceSink::~JsonLinesTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t JsonLinesTraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void JsonLinesTraceSink::Write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++events_;
}

void JsonLinesTraceSink::BeginSpan(std::string_view op,
                                   std::string_view detail,
                                   std::uint64_t t_ns) {
  Write(FormatTraceEvent('B', op, detail, t_ns, 0));
}

void JsonLinesTraceSink::EndSpan(std::string_view op, std::string_view detail,
                                 std::uint64_t t_ns, std::uint64_t rows_out) {
  Write(FormatTraceEvent('E', op, detail, t_ns, rows_out));
}

ScopedOp::ScopedOp(OpMetrics* metrics, TraceSink* sink)
    : metrics_(metrics), sink_(metrics == nullptr ? nullptr : sink) {
  if (metrics_ == nullptr) return;
  start_ns_ = MetricsNowNs();
  if (sink_ != nullptr) {
    sink_->BeginSpan(metrics_->op, metrics_->detail, start_ns_);
  }
}

ScopedOp::~ScopedOp() {
  if (metrics_ == nullptr) return;
  std::uint64_t end_ns = MetricsNowNs();
  metrics_->wall_ns += end_ns - start_ns_;
  if (sink_ != nullptr) {
    sink_->EndSpan(metrics_->op, metrics_->detail, end_ns,
                   metrics_->rows_out);
  }
}

}  // namespace qf
