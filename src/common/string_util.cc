#include "common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace qf {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<std::int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty integer literal");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return OutOfRangeError("integer literal overflows int64: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("bad integer literal: " + buf);
  }
  return static_cast<std::int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty float literal");
  // strtod accepts spellings the engine's Value model cannot tolerate:
  // "inf"/"nan" (non-finite Values break equality, dedup, and join
  // invariants) and C99 hex floats. Reject those up front; only decimal
  // digit/sign/dot/exponent characters may appear.
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E')) {
      return InvalidArgumentError("bad float literal: " + std::string(text));
    }
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError("bad float literal: " + buf);
  }
  // ERANGE overflow ("1e999") yields ±HUGE_VAL — reject; gradual
  // underflow to a denormal or zero is an acceptable rounding.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return OutOfRangeError("float literal overflows double: " + buf);
  }
  if (!std::isfinite(v)) {
    return InvalidArgumentError("non-finite float literal: " + buf);
  }
  return v;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace qf
