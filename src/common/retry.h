// Retry-with-backoff for transient failures (EINTR/EAGAIN in PosixVfs,
// and any caller-classified retryable Status). Capped exponential backoff
// with *deterministic* jitter: the jitter stream comes from a caller-owned
// Rng (common/rng.h), so a fixed seed reproduces the exact delay sequence
// — tests assert delays, not sleep side effects.
//
// The loop is governor-aware: between attempts (and while sleeping, in
// 1 ms slices) it polls the QueryContext, so a SIGINT or deadline aborts
// a retry storm early with the governor's typed status instead of
// sleeping through the full budget.
#ifndef QF_COMMON_RETRY_H_
#define QF_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/resource.h"
#include "common/rng.h"
#include "common/status.h"

namespace qf {

struct RetryPolicy {
  // Total tries including the first; RetryWithBackoff never invokes the
  // operation more than this many times.
  int max_attempts = 5;
  // Delay before retry k (0-based) is base_delay_us << k, capped at
  // max_delay_us, plus uniform jitter in [0, base_delay_us).
  std::int64_t base_delay_us = 100;
  std::int64_t max_delay_us = 10'000;
};

// Backoff before retry `attempt` (0-based: the delay between the first
// failure and the second try). Exposed so tests can pin the schedule.
inline std::int64_t BackoffDelayUs(const RetryPolicy& policy, int attempt,
                                   Rng& rng) {
  std::int64_t base = std::max<std::int64_t>(policy.base_delay_us, 0);
  std::int64_t delay = base;
  for (int k = 0; k < attempt && delay < policy.max_delay_us; ++k) {
    delay *= 2;
  }
  delay = std::min(delay, policy.max_delay_us);
  if (base > 0) {
    delay += static_cast<std::int64_t>(
        rng.NextBelow(static_cast<std::uint32_t>(std::min<std::int64_t>(
            base, 0xffffffffll))));
  }
  return delay;
}

// Sleeps ~delay_us, polling `ctx` every millisecond so cancellation and
// deadlines cut the sleep short. Returns false once the context tripped.
inline bool InterruptibleSleepUs(std::int64_t delay_us, QueryContext* ctx) {
  while (delay_us > 0) {
    if (ctx != nullptr && !ctx->Poll()) return false;
    std::int64_t slice = std::min<std::int64_t>(delay_us, 1000);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    delay_us -= slice;
  }
  return ctx == nullptr || ctx->Poll();
}

// Runs `op` (a callable returning Status) until it succeeds, fails with a
// non-retryable status, exhausts policy.max_attempts, or the governor
// trips. `retryable` classifies failures (e.g. "errno was EINTR/EAGAIN").
// Returns the final status: OK, the last non-retryable / exhausted error,
// or the governor's typed CANCELLED/DEADLINE_EXCEEDED.
template <typename Op, typename RetryablePred>
Status RetryWithBackoff(const RetryPolicy& policy, Rng& rng, Op&& op,
                        RetryablePred&& retryable,
                        QueryContext* ctx = nullptr) {
  Status last = InternalError("retry loop made no attempts");
  int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (ctx != nullptr && !ctx->Poll()) return ctx->Check();
    last = op();
    if (last.ok() || !retryable(last)) return last;
    if (attempt + 1 == attempts) break;  // out of budget: report the error
    if (!InterruptibleSleepUs(BackoffDelayUs(policy, attempt, rng), ctx)) {
      return ctx->Check();
    }
  }
  return last;
}

}  // namespace qf

#endif  // QF_COMMON_RETRY_H_
