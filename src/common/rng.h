// Deterministic pseudo-random number generation for workload synthesis.
// A small PCG32 implementation: reproducible across platforms (unlike
// std::default_random_engine) and fast enough for generating millions of
// tuples.
#ifndef QF_COMMON_RNG_H_
#define QF_COMMON_RNG_H_

#include <cstdint>

namespace qf {

// PCG32 (O'Neill). Deterministic for a given (seed, stream) pair.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Returns the next 32 uniformly distributed bits.
  std::uint32_t NextUint32();

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  // Uses rejection sampling, so the result is exactly uniform.
  std::uint32_t NextBelow(std::uint32_t bound);

  // Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Returns a uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace qf

#endif  // QF_COMMON_RNG_H_
