#include "common/check.h"

namespace qf::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* message) {
  if (message != nullptr && message[0] != '\0') {
    std::fprintf(stderr, "QF_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 expr, message);
  } else {
    std::fprintf(stderr, "QF_CHECK failed at %s:%d: %s\n", file, line, expr);
  }
  std::abort();
}

}  // namespace qf::internal
