#include "common/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/retry.h"
#include "common/string_util.h"

namespace qf {

std::string VfsDirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(Vfs& vfs, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  auto fail = [&](Status s) {
    vfs.Remove(tmp);  // best-effort; the destination is untouched
    return s;
  };
  Result<std::unique_ptr<WritableFile>> file = vfs.OpenTrunc(tmp);
  if (!file.ok()) return file.status();
  if (Status s = (*file)->Append(data); !s.ok()) return fail(s);
  if (Status s = (*file)->Sync(); !s.ok()) return fail(s);
  if (Status s = (*file)->Close(); !s.ok()) return fail(s);
  if (Status s = vfs.Rename(tmp, path); !s.ok()) return fail(s);
  return vfs.SyncDir(VfsDirName(path));
}

Result<std::string> Vfs::ReadAt(const std::string& path, std::uint64_t offset,
                                std::size_t length) {
  Result<std::string> all = ReadFile(path);
  if (!all.ok()) return all.status();
  if (offset >= all->size()) return std::string();
  return all->substr(offset, length);
}

Vfs& DefaultVfs() {
  static PosixVfs vfs;
  return vfs;
}

// ---------------------------------------------------------------------
// PosixVfs

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  std::string message = std::string(op) + " " + path + ": " +
                        std::strerror(err);
  if (err == ENOENT) return NotFoundError(std::move(message));
  return IoError(std::move(message));
}

// Retry schedule for transient syscall failures. EINTR wants an immediate
// retry; a tiny base delay keeps EAGAIN storms polite without making the
// worst case (5 attempts) observable.
const RetryPolicy& PosixRetryPolicy() {
  static const RetryPolicy policy{/*max_attempts=*/5, /*base_delay_us=*/50,
                                  /*max_delay_us=*/2'000};
  return policy;
}

// Jitter streams must not be shared across threads (Rng is not
// thread-safe); successive loops draw distinct deterministic seeds.
Rng RetryRng() {
  static std::atomic<std::uint64_t> counter{0};
  return Rng(0x9E3779B97F4A7C15ull,
             counter.fetch_add(1, std::memory_order_relaxed));
}

bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

// One retried syscall: `call` returns >= 0 on success and sets errno
// otherwise; the result lands in *out.
template <typename Call>
Status RetrySyscall(const char* op, const std::string& path, Call&& call,
                    long* out = nullptr) {
  int last_errno = 0;
  Rng rng = RetryRng();
  return RetryWithBackoff(
      PosixRetryPolicy(), rng,
      [&]() -> Status {
        long r = call();
        if (r >= 0) {
          if (out != nullptr) *out = r;
          return Status::Ok();
        }
        last_errno = errno;
        return ErrnoStatus(op, path, last_errno);
      },
      [&](const Status&) { return IsTransientErrno(last_errno); });
}

class PosixFile : public WritableFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return IoError("append to closed file: " + path_);
    const char* p = data.data();
    std::size_t n = data.size();
    while (n > 0) {
      long written = 0;
      Status s = RetrySyscall(
          "write", path_, [&]() { return static_cast<long>(::write(fd_, p, n)); },
          &written);
      if (!s.ok()) return s;
      p += written;
      n -= static_cast<std::size_t>(written);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return IoError("sync of closed file: " + path_);
    return RetrySyscall("fsync", path_, [&]() { return ::fsync(fd_); });
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    // POSIX leaves the fd state unspecified after EINTR from close;
    // retrying risks closing a recycled descriptor, so close once.
    if (::close(fd) != 0 && errno != EINTR) {
      return ErrnoStatus("close", path_, errno);
    }
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixVfs::Open(const std::string& path,
                                                     int flags) {
  long fd = -1;
  Status s = RetrySyscall(
      "open", path,
      [&]() { return static_cast<long>(::open(path.c_str(), flags, 0644)); },
      &fd);
  if (!s.ok()) return s;
  return std::unique_ptr<WritableFile>(
      new PosixFile(static_cast<int>(fd), path));
}

Result<std::unique_ptr<WritableFile>> PosixVfs::OpenAppend(
    const std::string& path) {
  return Open(path, O_WRONLY | O_CREAT | O_APPEND);
}

Result<std::unique_ptr<WritableFile>> PosixVfs::OpenTrunc(
    const std::string& path) {
  return Open(path, O_WRONLY | O_CREAT | O_TRUNC);
}

Result<std::string> PosixVfs::ReadFile(const std::string& path) {
  long fd = -1;
  Status s = RetrySyscall(
      "open", path,
      [&]() { return static_cast<long>(::open(path.c_str(), O_RDONLY)); },
      &fd);
  if (!s.ok()) return s;
  std::string out;
  char buf[1 << 16];
  for (;;) {
    long n = 0;
    s = RetrySyscall(
        "read", path,
        [&]() { return static_cast<long>(::read(fd, buf, sizeof(buf))); },
        &n);
    if (!s.ok()) {
      ::close(static_cast<int>(fd));
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(static_cast<int>(fd));
  return out;
}

Result<std::string> PosixVfs::ReadAt(const std::string& path,
                                     std::uint64_t offset,
                                     std::size_t length) {
  long fd = -1;
  Status s = RetrySyscall(
      "open", path,
      [&]() { return static_cast<long>(::open(path.c_str(), O_RDONLY)); },
      &fd);
  if (!s.ok()) return s;
  std::string out;
  out.resize(length);
  std::size_t got = 0;
  while (got < length) {
    long n = 0;
    s = RetrySyscall(
        "pread", path,
        [&]() {
          return static_cast<long>(
              ::pread(static_cast<int>(fd), out.data() + got, length - got,
                      static_cast<off_t>(offset + got)));
        },
        &n);
    if (!s.ok()) {
      ::close(static_cast<int>(fd));
      return s;
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  ::close(static_cast<int>(fd));
  out.resize(got);
  return out;
}

Result<std::vector<std::string>> PosixVfs::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return names;
    return IoError("readdir " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && !ec) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::uint64_t> PosixVfs::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("stat", path, errno);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

Status PosixVfs::Rename(const std::string& from, const std::string& to) {
  return RetrySyscall("rename", from + " -> " + to,
                      [&]() { return ::rename(from.c_str(), to.c_str()); });
}

Status PosixVfs::Remove(const std::string& path) {
  return RetrySyscall("unlink", path,
                      [&]() { return ::unlink(path.c_str()); });
}

Status PosixVfs::SyncDir(const std::string& dir) {
  long fd = -1;
  Status s = RetrySyscall(
      "open", dir,
      [&]() { return static_cast<long>(::open(dir.c_str(), O_RDONLY)); },
      &fd);
  if (!s.ok()) return s;
  s = RetrySyscall("fsync", dir,
                   [&]() { return ::fsync(static_cast<int>(fd)); });
  ::close(static_cast<int>(fd));
  return s;
}

bool PosixVfs::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status PosixVfs::CreateDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return IoError("mkdir " + dir + ": " + ec.message());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// MemVfs

class MemVfs::MemFile : public WritableFile {
 public:
  MemFile(MemVfs* vfs, std::shared_ptr<Inode> inode, std::uint64_t epoch,
          std::string path)
      : vfs_(vfs), inode_(std::move(inode)), epoch_(epoch),
        path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(vfs_->mutex_);
    if (epoch_ != vfs_->epoch_) {
      return IoError("write after crash: " + path_);
    }
    inode_->data.append(data);
    return Status::Ok();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(vfs_->mutex_);
    if (epoch_ != vfs_->epoch_) {
      return IoError("sync after crash: " + path_);
    }
    inode_->synced = inode_->data.size();
    return Status::Ok();
  }

  Status Close() override { return Status::Ok(); }

 private:
  MemVfs* vfs_;
  std::shared_ptr<Inode> inode_;
  std::uint64_t epoch_;
  std::string path_;
};

Result<std::string> MemVfs::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(path);
  if (it == live_.end()) return NotFoundError("open " + path);
  return it->second->data;
}

Result<std::vector<std::string>> MemVfs::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [path, inode] : live_) {  // map order: already sorted
    if (VfsDirName(path) == dir) {
      names.push_back(path.substr(path.find_last_of('/') + 1));
    }
  }
  return names;
}

Result<std::uint64_t> MemVfs::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(path);
  if (it == live_.end()) return NotFoundError("stat " + path);
  return static_cast<std::uint64_t>(it->second->data.size());
}

Result<std::unique_ptr<WritableFile>> MemVfs::OpenAppend(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirs_.contains(VfsDirName(path))) {
    return NotFoundError("open " + path + ": no such directory");
  }
  auto it = live_.find(path);
  std::shared_ptr<Inode> inode;
  if (it != live_.end()) {
    inode = it->second;
  } else {
    inode = std::make_shared<Inode>();
    live_[path] = inode;
  }
  return std::unique_ptr<WritableFile>(
      new MemFile(this, std::move(inode), epoch_, path));
}

Result<std::unique_ptr<WritableFile>> MemVfs::OpenTrunc(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirs_.contains(VfsDirName(path))) {
    return NotFoundError("open " + path + ": no such directory");
  }
  auto inode = std::make_shared<Inode>();
  live_[path] = inode;
  // POSIX gives no ordering between an O_TRUNC reaching stable storage
  // and the rewritten bytes doing so: the size change may land at once.
  // The adversarial model therefore makes an in-place truncation of a
  // durably existing file durable immediately — a crash before the new
  // content syncs recovers an *empty* file, never the old bytes. (The
  // new content itself still needs Sync; a brand-new file's directory
  // entry still needs SyncDir. Rename-style rewrites are unaffected:
  // they truncate only their temp file.)
  if (auto it = durable_.find(path); it != durable_.end()) {
    it->second = inode;
  }
  return std::unique_ptr<WritableFile>(
      new MemFile(this, std::move(inode), epoch_, path));
}

Status MemVfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(from);
  if (it == live_.end()) return IoError("rename " + from + ": not found");
  live_[to] = it->second;
  live_.erase(it);
  return Status::Ok();
}

Status MemVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(path);
  if (it == live_.end()) return IoError("unlink " + path + ": not found");
  live_.erase(it);
  return Status::Ok();
}

Status MemVfs::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirs_.contains(dir)) {
    return IoError("fsync dir " + dir + ": not found");
  }
  // The durable view of this directory becomes the live view: creations,
  // renames, and removals inside it are now crash-proof.
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (VfsDirName(it->first) == dir && !live_.contains(it->first)) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (VfsDirName(path) == dir) durable_[path] = inode;
  }
  return Status::Ok();
}

bool MemVfs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.contains(path) || dirs_.contains(path);
}

Status MemVfs::CreateDirs(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Directory creation is modeled as immediately durable; entry-level
  // durability (the interesting part) is per-file via SyncDir.
  std::string prefix = dir.starts_with('/') ? "/" : "";
  for (std::string_view part : Split(std::string_view(dir), '/')) {
    if (part.empty()) continue;
    if (!prefix.empty() && prefix != "/") prefix += '/';
    prefix += part;
    dirs_.insert(prefix);
  }
  return Status::Ok();
}

void MemVfs::Crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  // Unsynced content vanishes; unsynced directory operations roll back.
  for (auto& [path, inode] : live_) {
    if (inode->synced < inode->data.size()) inode->data.resize(inode->synced);
  }
  for (auto& [path, inode] : durable_) {
    if (inode->synced < inode->data.size()) inode->data.resize(inode->synced);
  }
  live_ = durable_;
}

// ---------------------------------------------------------------------
// FaultVfs

class FaultVfs::FaultFile : public WritableFile {
 public:
  FaultFile(FaultVfs* vfs, std::unique_ptr<WritableFile> base)
      : vfs_(vfs), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    bool torn = false;
    if (Status s = vfs_->Gate(&torn); !s.ok()) {
      if (torn) {
        std::size_t keep =
            std::min<std::size_t>(vfs_->plan_.torn_write_bytes, data.size());
        base_->Append(data.substr(0, keep));  // the torn sector lands
      }
      return s;
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (Status s = vfs_->Gate(nullptr); !s.ok()) return s;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultVfs* vfs_;
  std::unique_ptr<WritableFile> base_;
};

Status FaultVfs::Gate(bool* torn) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  ++ops_;
  if (plan_.crash_at_op != 0 && ops_ == plan_.crash_at_op) {
    crashed_ = true;
    if (torn != nullptr) *torn = true;
    return IoError("simulated crash during I/O");
  }
  if (plan_.fail_at_op != 0 && ops_ == plan_.fail_at_op) {
    return IoError(plan_.fail_enospc
                       ? "injected fault: No space left on device"
                       : "injected fault: Input/output error");
  }
  return Status::Ok();
}

Result<std::string> FaultVfs::ReadFile(const std::string& path) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  return base_.ReadFile(path);
}

Result<std::string> FaultVfs::ReadAt(const std::string& path,
                                     std::uint64_t offset,
                                     std::size_t length) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  return base_.ReadAt(path, offset, length);
}

Result<std::vector<std::string>> FaultVfs::ListDir(const std::string& dir) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  return base_.ListDir(dir);
}

Result<std::uint64_t> FaultVfs::FileSize(const std::string& path) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  return base_.FileSize(path);
}

Result<std::unique_ptr<WritableFile>> FaultVfs::OpenAppend(
    const std::string& path) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  Result<std::unique_ptr<WritableFile>> base = base_.OpenAppend(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(*base)));
}

Result<std::unique_ptr<WritableFile>> FaultVfs::OpenTrunc(
    const std::string& path) {
  // Truncation destroys data: it counts as a mutating op, so the sweep
  // can crash "between" the truncate and the first write of a rewrite.
  if (Status s = Gate(nullptr); !s.ok()) return s;
  Result<std::unique_ptr<WritableFile>> base = base_.OpenTrunc(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(*base)));
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  if (Status s = Gate(nullptr); !s.ok()) return s;
  return base_.Rename(from, to);
}

Status FaultVfs::Remove(const std::string& path) {
  if (Status s = Gate(nullptr); !s.ok()) return s;
  return base_.Remove(path);
}

Status FaultVfs::SyncDir(const std::string& dir) {
  if (Status s = Gate(nullptr); !s.ok()) return s;
  return base_.SyncDir(dir);
}

bool FaultVfs::Exists(const std::string& path) {
  return !crashed_ && base_.Exists(path);
}

Status FaultVfs::CreateDirs(const std::string& dir) {
  if (crashed_) return IoError("simulated crash: filesystem is gone");
  return base_.CreateDirs(dir);
}

}  // namespace qf
