// Engine-wide observability: a per-operator metrics tree and a structured
// trace sink, threaded through the whole evaluation stack (relational
// operators, conjunctive-query evaluation, flock evaluation, plan
// execution, a-priori counting) and surfaced by the shell's
// EXPLAIN ANALYZE and TRACE statements.
//
// Design notes:
//   * Metrics are *opt-in per call*: every evaluation entry point takes a
//     nullable OpMetrics pointer (usually via its options struct). The
//     disabled path is a null check — no clock reads, no allocations — so
//     production runs pay nothing (bench_micro pins this).
//   * Counters live in plain (non-atomic) fields. Thread safety comes from
//     structure, mirroring the engine's determinism contract: parallel
//     regions pre-allocate one child node per independent unit (disjunct,
//     plan step) *before* fanning out, each worker writes only its own
//     subtree, and per-morsel counters are accumulated in locals and
//     stored once after the ParallelFor joins — exactly how the morsel
//     count tables merge. Node pointers are stable (children are held by
//     unique_ptr), so pre-allocated subtrees survive later AddChild calls.
//   * Ops fill row counters only; wall time is measured by the *caller*
//     via ScopedOp, which also emits begin/end trace spans. One timing
//     source, no double counting.
//   * TraceSink implementations must be thread-safe: spans from parallel
//     disjuncts and plan-step waves interleave. Events are JSON lines
//     ({"ev":"B"|"E",...}), cheap to grep and to load into trace viewers.
#ifndef QF_COMMON_METRICS_H_
#define QF_COMMON_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qf {

// Monotonic wall clock in nanoseconds (steady_clock under the hood).
std::uint64_t MetricsNowNs();

// One node of the execution-metrics tree: an operator (or a grouping
// region such as a disjunct or plan step) with its observed counters.
struct OpMetrics {
  // Operator kind: "scan", "join", "select", "anti_join", "semi_join",
  // "union", "group_by", "filter", "project", "disjunct", "flock",
  // "step", "plan", "count_level", ... Callers name the node; the ops
  // only fill counters.
  std::string op;
  // Free-form context: predicate name, step result name, columns, level.
  std::string detail;

  // Rows entering the operator: primary (probe/left/only) input, and the
  // secondary (build/right) input for binary operators.
  std::uint64_t rows_in = 0;
  std::uint64_t rows_in_right = 0;
  // Rows produced. For joins and aggregates this is the exact result
  // cardinality (the metrics-invariant tests pin this).
  std::uint64_t rows_out = 0;
  // Hash-table work: index lookups issued (join probes, semi/anti-join
  // key tests) plus table upserts (group accumulation, dedup inserts).
  std::uint64_t tuples_probed = 0;
  // Morsels the operator was decomposed into (0 when it ran as one piece).
  // Depends only on the input size, never on the thread count.
  std::uint64_t morsels = 0;
  // Bytes this operator charged to the query's resource accountant
  // (ApproxTupleBytes per output row; see common/resource.h). 0 when the
  // run was ungoverned. Rendered by EXPLAIN ANALYZE as "mem=".
  std::uint64_t mem_bytes = 0;
  // Wall time attributed to this node (exclusive of nothing: parents
  // include their children's time). Filled by ScopedOp.
  std::uint64_t wall_ns = 0;
  // Optimizer's estimated output rows, when a model produced one for this
  // node; negative means "no estimate". EXPLAIN ANALYZE renders the
  // estimate-vs-actual skew from this.
  double est_rows = -1.0;

  std::vector<std::unique_ptr<OpMetrics>> children;

  OpMetrics() = default;
  explicit OpMetrics(std::string op_name, std::string detail_text = "")
      : op(std::move(op_name)), detail(std::move(detail_text)) {}

  // Appends a child and returns a pointer that stays valid as more
  // children are added (children are individually heap-allocated).
  OpMetrics* AddChild(std::string op_name, std::string detail_text = "");

  // Pre-allocates `n` children named `op_name` (details "<prefix>0"...),
  // returning stable pointers — the setup step of every parallel region:
  // allocate before fanning out, then each worker owns one subtree.
  std::vector<OpMetrics*> AddChildren(std::size_t n, const std::string& op_name,
                                      const std::string& detail_prefix = "");

  // Adds `other`'s counters into this node and recursively merges
  // children positionally (extra children of `other` are deep-copied).
  // wall_ns adds; est_rows keeps the first known estimate. Used to
  // aggregate repeated runs (benches) and per-thread trees of identical
  // shape — the tree analog of merging per-morsel count tables.
  void MergeFrom(const OpMetrics& other);

  // Total nodes in the subtree (including this one).
  std::size_t NodeCount() const;

  // First node (pre-order) whose op equals `op_name`, or nullptr.
  const OpMetrics* Find(std::string_view op_name) const;

  // Indented tree, one node per line with aligned counters, e.g.
  //   join baskets            in=812 (x140) out=1220 probed=812 t=0.31ms
  // Estimates render as "est=N (skew xK)" next to rows_out when present.
  std::string ToString() const;

  // Nested JSON object {"op":...,"rows_out":...,"children":[...]} —
  // machine-readable, BENCH_*.json-compatible (see bench/README note in
  // DESIGN.md "Observability").
  std::string ToJson() const;
};

// Structured trace sink: receives span begin/end events. Implementations
// MUST be thread-safe; spans from concurrent workers interleave and are
// distinguished by the `tid` field of each event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void BeginSpan(std::string_view op, std::string_view detail,
                         std::uint64_t t_ns) = 0;
  virtual void EndSpan(std::string_view op, std::string_view detail,
                       std::uint64_t t_ns, std::uint64_t rows_out) = 0;
};

// Formats one JSON-lines trace event; shared by the sinks so files and
// in-memory buffers hold byte-identical records.
//   {"ev":"B","op":"join","detail":"baskets","t_ns":123,"tid":"0x..."}
//   {"ev":"E","op":"join","detail":"baskets","t_ns":456,"tid":"0x...","rows_out":7}
std::string FormatTraceEvent(char phase, std::string_view op,
                             std::string_view detail, std::uint64_t t_ns,
                             std::uint64_t rows_out);

// Buffers trace events in memory (the shell's TRACE ON target; tests read
// the lines back). Thread-safe.
class MemoryTraceSink : public TraceSink {
 public:
  void BeginSpan(std::string_view op, std::string_view detail,
                 std::uint64_t t_ns) override;
  void EndSpan(std::string_view op, std::string_view detail,
               std::uint64_t t_ns, std::uint64_t rows_out) override;

  // Snapshot of the buffered JSON lines.
  std::vector<std::string> Lines() const;
  std::size_t event_count() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

// Appends JSON-lines events to a file (the shell's TRACE TO <path>
// target). Thread-safe; lines are written whole under one lock, so
// concurrent spans never interleave within a line.
class JsonLinesTraceSink : public TraceSink {
 public:
  // Truncates/creates `path`. ok() is false when the file cannot be
  // opened (the shell reports this as a statement error).
  explicit JsonLinesTraceSink(const std::string& path);
  ~JsonLinesTraceSink() override;

  bool ok() const { return file_ != nullptr; }
  std::size_t event_count() const;

  void BeginSpan(std::string_view op, std::string_view detail,
                 std::uint64_t t_ns) override;
  void EndSpan(std::string_view op, std::string_view detail,
               std::uint64_t t_ns, std::uint64_t rows_out) override;

 private:
  void Write(const std::string& line);

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::size_t events_ = 0;
};

// RAII region timer: on construction records the start time and emits a
// begin span; on destruction adds the elapsed time to metrics->wall_ns
// and emits the end span (with metrics->rows_out, which the region body
// has filled by then). With metrics == nullptr the whole object is inert
// — no clock read, no allocation — which is the disabled fast path.
// The sink, if any, describes the span with the node's op/detail, so a
// non-null sink requires a non-null metrics node.
class ScopedOp {
 public:
  ScopedOp(OpMetrics* metrics, TraceSink* sink = nullptr);
  ~ScopedOp();

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  OpMetrics* metrics_;
  TraceSink* sink_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace qf

#endif  // QF_COMMON_METRICS_H_
